#!/usr/bin/env python3
"""Checkpoint / restart / migration of an MPI rank — the paper's
fault-tolerance scenario (§3, §4.1).

An iterative computation runs on two ranks.  Rank 1 checkpoints its
application state and leaves cleanly after a few iterations: its PTL
finalization **drains all pending DMA descriptors** before the context is
released (the paper's "leftover DMA descriptor might regenerate its traffic
indefinitely" hazard), and its VPID is retired forever.  A replacement
incarnation of rank 1 then starts **on a different node**, claims a fresh
context/VPID, re-registers with the RTE under the same rank (epoch bump),
and the pair finishes the computation from the checkpoint.

Run:  python examples/fault_tolerant_restart.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.mpi.world import mpi_stack_factory
from repro.rte.checkpoint import CheckpointImage, restart_rank
from repro.rte.environment import RteJob

TOTAL_ITERS = 10
CHECKPOINT_AT = 4


def make_rank0(log):
    def rank0(mpi):
        """The long-lived rank: survives its partner's restart."""
        acc = 0.0
        for it in range(TOTAL_ITERS):
            if it == CHECKPOINT_AT:
                # the RTE informs survivors that rank 1 was restarted (here
                # simplified to the known checkpoint iteration): poll the
                # registry until the new incarnation appears, then re-wire
                from repro.mpi import MpiError

                while True:
                    try:
                        epoch = yield from mpi.refresh_peer(1)
                    except MpiError:  # departed, not yet re-registered
                        epoch = 0
                    if epoch > 0:
                        break
                    yield from mpi.thread.sleep(50.0)
                log.append(("rank0-refreshed", epoch))
            # receive rank 1's contribution for this iteration
            data, st = yield from mpi.comm_world.recv(source=1, tag=it, nbytes=8)
            acc += float(np.frombuffer(data.tobytes())[0])
            yield from mpi.comm_world.send(b"ack", dest=1, tag=1000 + it)
        log.append(("rank0-done", mpi.now, acc))
        return acc

    return rank0


def make_rank1(log, start_iter, state):
    def rank1(mpi):
        vpid = mpi.stack.pml.modules[0].ctx.vpid
        node = mpi.process.node.node_id
        epoch = mpi.process.epoch
        if epoch > 0:
            # a restarted incarnation: reconnect to the surviving world
            yield from mpi.rejoin_world()
        log.append(("rank1-up", start_iter, vpid, node, epoch))
        print(f"rank 1 incarnation (epoch {epoch}) on node {node}, "
              f"VPID {vpid}, resuming at iteration {start_iter}")
        counter = state["counter"]
        for it in range(start_iter, TOTAL_ITERS):
            if it == CHECKPOINT_AT and epoch == 0:
                # checkpoint and leave; the RTE will drain and release
                print(f"rank 1 checkpointing at iteration {it} "
                      f"({mpi.now:.0f} us) and leaving")
                return CheckpointImage(1, {"counter": counter, "iter": it})
            contribution = np.array([float(counter)])
            yield from mpi.comm_world.send(contribution.tobytes(), dest=0, tag=it)
            yield from mpi.comm_world.recv(source=0, tag=1000 + it, nbytes=8)
            counter += 1
        return counter

    return rank1


def main():
    cluster = Cluster(nodes=4)
    log = []
    job = RteJob(cluster, stack_factory=mpi_stack_factory)

    # generation 1
    job.launch(0, make_rank0(log), group="world", group_count=2, node_id=0)
    proc1 = job.launch(1, make_rank1(log, 0, {"counter": 0}), group="world",
                       group_count=2, node_id=1)

    def restarted(mpi):
        img = mpi.process.restart_image
        return (yield from make_rank1(log, img.app_state["iter"],
                                      {"counter": img.app_state["counter"]})(mpi))

    def supervisor():
        """The restart manager: waits for rank 1's clean departure, checks
        the drain happened, and relaunches it on another node."""
        yield proc1.main_thread.join_event()
        image = proc1.result
        assert isinstance(image, CheckpointImage), "rank 1 should checkpoint"
        old_vpid = [e for e in log if e[0] == "rank1-up"][0][2]
        assert not cluster.capability.is_live(old_vpid), "old VPID retired"
        print(f"supervisor: rank 1 left cleanly (VPID {old_vpid} retired); "
              "restarting on node 3")
        restart_rank(job, image, restarted, node_id=3, group="gen2",
                     group_count=1)

    cluster.sim.spawn(supervisor())
    results = job.wait()

    ups = [e for e in log if e[0] == "rank1-up"]
    assert len(ups) == 2
    assert ups[0][2] != ups[1][2], "VPIDs must differ across incarnations"
    assert ups[0][3] != ups[1][3], "rank 1 migrated to a different node"
    assert ups[1][4] == 1, "registry epoch must have bumped"

    acc = results[0]
    expected = sum(float(c) for c in range(TOTAL_ITERS))
    print(f"rank 0 accumulated {acc} (expected {expected}) — "
          f"the restart was transparent to the computation")
    assert acc == expected
    cluster.assert_no_drops()


if __name__ == "__main__":
    main()
