#!/usr/bin/env python3
"""A deterministic fault campaign against a live two-rail MPI transfer.

A 16-node, two-rail cluster streams messages between ranks in different
quads of the fat tree while a seeded campaign injects two faults mid
stream:

* the plane-0 root switch dies — the fabric reroutes through the
  redundant plane with no protocol involvement (same hop count);
* rail 1's entire fabric goes down — the PML fails the in-flight traffic
  over to rail 0, replaying unacknowledged fragments and re-running open
  rendezvous on the survivor.

Every message still arrives intact, and because the simulator and the
campaign are both seeded, replaying the script reproduces the exact same
event trace — print the recovery statistics twice and diff them.

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.core.ptl.elan4.module import Elan4PtlOptions
from repro.faults import FaultInjector, FaultPlan
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import RteJob

N = 32 * 1024
ITERS = 8
RAILS = ("elan4", "elan4:1")


def run_campaign(seed):
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, N, dtype=np.uint8) for _ in range(ITERS)]

    def sender(mpi):
        yield from mpi.thread.sleep(2000.0)
        reqs = []
        for i in range(ITERS):
            buf = mpi.alloc(N)
            buf.write(payloads[i])
            reqs.append((yield from mpi.comm_world.isend(buf, dest=1, tag=i)))
        yield from mpi.waitall(reqs)
        return "sent"

    def receiver(mpi):
        ok = True
        for i in range(ITERS):
            data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=N)
            ok = ok and np.array_equal(data, payloads[i])
        return ok

    cluster = Cluster(nodes=16, rails=2, seed=seed)
    options = Elan4PtlOptions(reliability=True, chained_fin=False)
    job = RteJob(
        cluster, stack_factory=make_mpi_stack_factory(elan4_options=options)
    )
    job.launch(0, sender, group="world", group_count=2, transports=RAILS)
    job.launch(1, receiver, node_id=5, group="world", group_count=2,
               transports=RAILS)

    plan = (
        FaultPlan("demo", seed=seed)
        .switch_death(2450.0, "sw1.0", rail=0, duration_us=300.0)
        .rail_down(2550.0, rail=1)
    )
    injector = FaultInjector(cluster, plan, job=job)
    injector.arm()
    results = job.wait()
    return results, injector, cluster.sim.now


def main():
    (res1, inj1, end1) = run_campaign(seed=7)
    print(f"all {ITERS} messages intact: {res1[1]}")
    print("fault trace:")
    for at, kind, desc in inj1.trace:
        print(f"  t={at:9.1f} us  {desc}")
    stats = inj1.stats()
    for key in ("reroutes", "failovers", "retransmissions",
                "duplicates_dropped", "dead_peers"):
        print(f"  {key:20s} {stats[key]}")

    (res2, inj2, end2) = run_campaign(seed=7)
    identical = (
        inj1.trace == inj2.trace
        and inj1.stats() == inj2.stats()
        and end1 == end2
    )
    print(f"replay with the same seed is identical: {identical}")


if __name__ == "__main__":
    main()
