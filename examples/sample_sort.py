#!/usr/bin/env python3
"""Parallel sample sort on the reproduced MPI stack.

The app itself lives in :mod:`repro.apps.samplesort` (the scheduler's
job library instantiates the same code as a fleet tenant); this script
is the thin CLI wrapper that runs it on an 8-node cluster.

Exercises what the point-to-point benchmarks don't: many simultaneous
variable-size messages per rank, collective + p2p interleaving, and
eager/rendezvous mixtures chosen per message by size.

Run:  python examples/sample_sort.py
"""

from repro.apps.samplesort import sample_sort_app
from repro.cluster import Cluster

KEYS_PER_RANK = 4096


def main():
    cluster = Cluster(nodes=8)
    results = cluster.run_mpi(sample_sort_app(KEYS_PER_RANK, verbose=True))
    assert sum(results.values()) == 8 * KEYS_PER_RANK
    cluster.assert_no_drops()


if __name__ == "__main__":
    main()
