#!/usr/bin/env python3
"""Parallel sample sort on the reproduced MPI stack.

A classic irregular-communication workload: every rank holds random keys,
splitters are agreed via gather+bcast, and an all-to-all personalized
exchange (with per-pair payload sizes unknown in advance) redistributes the
keys so rank i ends up with the i-th quantile, locally sorted.  Verifies
against a serial sort of the same data.

Exercises what the point-to-point benchmarks don't: many simultaneous
variable-size messages per rank, collective + p2p interleaving, and eager/
rendezvous mixtures chosen per message by size.

Run:  python examples/sample_sort.py
"""

import numpy as np

from repro.cluster import Cluster

KEYS_PER_RANK = 4096


def app(mpi):
    n = mpi.size
    rng = np.random.default_rng(1000 + mpi.rank)
    keys = rng.integers(0, 1 << 30, KEYS_PER_RANK, dtype=np.int64)
    t0 = mpi.now

    # 1. sample local keys; gather samples; root picks splitters
    local_sample = np.sort(rng.choice(keys, size=n, replace=False))
    samples = yield from mpi.comm_world.gather(local_sample.tobytes(), root=0)
    if mpi.rank == 0:
        pool = np.sort(np.concatenate([np.frombuffer(s, dtype=np.int64) for s in samples]))
        splitters = pool[n - 1 :: n][: n - 1]
        payload = splitters.tobytes()
    else:
        payload = None
    payload = yield from mpi.comm_world.bcast(payload, root=0)
    splitters = np.frombuffer(payload, dtype=np.int64)

    # 2. partition local keys by splitter, exchange all-to-all
    buckets = np.searchsorted(splitters, keys, side="right")
    chunks = [keys[buckets == dst].tobytes() for dst in range(n)]
    received = yield from mpi.comm_world.alltoall(chunks)

    # 3. local sort of my quantile
    mine = np.sort(np.concatenate([np.frombuffer(r, dtype=np.int64) for r in received]))
    elapsed = mpi.now - t0

    # 4. verification: gather everything back at root
    parts = yield from mpi.comm_world.gather(mine.tobytes(), root=0)
    if mpi.rank == 0:
        sorted_parallel = np.concatenate([np.frombuffer(p, dtype=np.int64) for p in parts])
        all_keys = np.concatenate(
            [np.random.default_rng(1000 + r).integers(0, 1 << 30, KEYS_PER_RANK, dtype=np.int64)
             for r in range(n)]
        )
        reference = np.sort(all_keys)
        assert np.array_equal(sorted_parallel, reference)
        sizes = [len(p) // 8 for p in parts]
        print(f"sorted {n * KEYS_PER_RANK} keys on {n} ranks "
              f"in {elapsed:.0f} simulated us")
        print(f"bucket sizes: {sizes} "
              f"(imbalance {max(sizes) / (sum(sizes) / n):.2f}x)")
        print("parallel result matches serial sort")
    return int(mine.size)


def main():
    cluster = Cluster(nodes=8)
    results = cluster.run_mpi(app)
    assert sum(results.values()) == 8 * KEYS_PER_RANK
    cluster.assert_no_drops()


if __name__ == "__main__":
    main()
