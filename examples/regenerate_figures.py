#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables/figures from the command line.

Usage:
    python examples/regenerate_figures.py            # everything (slow-ish)
    python examples/regenerate_figures.py fig7       # one experiment
    python examples/regenerate_figures.py fig9 table1
    python examples/regenerate_figures.py --quick    # reduced size grids

Prints the same rows/series the paper reports, next to the paper's own
numbers where the text/plots give them.  See EXPERIMENTS.md for the
recorded paper-vs-measured comparison.
"""

import argparse
import sys
import time

from repro.bench import fig7, fig8, fig9, fig10, table1


def run_fig7(quick):
    sizes = [0, 64, 512, 2048, 4096] if quick else None
    results = fig7.run(sizes=sizes)
    print(fig7.report(results))
    fig7.check_shape(results)


def run_fig8(quick):
    sizes = [0, 2048, 4096, 16384] if quick else None
    results = fig8.run(sizes=sizes)
    print(fig8.report(results))
    fig8.check_shape(results)


def run_fig9(quick):
    sizes = [0, 64, 512, 1984] if quick else None
    results = fig9.run(sizes=sizes)
    print(fig9.report(results))
    fig9.check_shape(results)


def run_table1(quick):
    results = table1.run(iters=5 if quick else 8)
    print(table1.report(results))
    table1.check_shape(results)


def run_fig10(quick):
    lat_sizes = [0, 64, 1024, 4096, 65536, 1048576] if quick else None
    bw_sizes = [1024, 4096, 65536, 1048576] if quick else None
    latency = fig10.run_latency(sizes=lat_sizes, iters=4 if quick else 6)
    bandwidth = fig10.run_bandwidth(
        sizes=bw_sizes, messages=16 if quick else 24, window=8
    )
    print(fig10.report(latency, bandwidth))
    fig10.check_shape(latency, bandwidth)


EXPERIMENTS = {
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table1": run_table1,
    "fig10": run_fig10,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", choices=[*EXPERIMENTS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced size grids / iteration counts")
    args = parser.parse_args(argv)
    chosen = args.experiments or list(EXPERIMENTS)
    for name in chosen:
        t0 = time.time()
        print(f"\n=== {name} " + "=" * (70 - len(name)))
        EXPERIMENTS[name](args.quick)
        print(f"--- {name}: shape checks passed "
              f"({time.time() - t0:.1f} s wall) ---")
    print(f"\nregenerated: {', '.join(chosen)}")


if __name__ == "__main__":
    main()
