#!/usr/bin/env python3
"""1-D heat diffusion with halo exchange — a classic HPC workload on the
reproduced stack.

Each rank owns a slab of a 1-D rod and iterates the explicit heat stencil
``u[i] += alpha * (u[i-1] - 2 u[i] + u[i+1])``, exchanging one-cell halos
with its neighbours every step over PTL/Elan4 (``sendrecv`` keeps the
exchange deadlock-free).  A final gather assembles the rod at rank 0 and
checks conservation of energy against a serial reference.

This is the kind of tightly coupled, latency-sensitive communication the
paper's low-latency transport exists for: every step costs two small
messages per rank boundary.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro.cluster import Cluster

CELLS_PER_RANK = 64
STEPS = 50
ALPHA = 0.1


def serial_reference(total_cells: int) -> np.ndarray:
    u = np.zeros(total_cells)
    u[total_cells // 2] = 1000.0  # hot spot in the middle
    for _ in range(STEPS):
        left = np.roll(u, 1)
        right = np.roll(u, -1)
        left[0] = u[0]
        right[-1] = u[-1]
        u = u + ALPHA * (left - 2 * u + right)
    return u


def app(mpi):
    n = CELLS_PER_RANK
    total = n * mpi.size
    u = np.zeros(n)
    hot = total // 2
    if hot // n == mpi.rank:
        u[hot % n] = 1000.0

    left = mpi.rank - 1 if mpi.rank > 0 else None
    right = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None
    t0 = mpi.now

    for _step in range(STEPS):
        halo_left = u[0]
        halo_right = u[-1]
        ghost_left = u[0]  # boundary: mirror (insulated rod)
        ghost_right = u[-1]
        # exchange with the right neighbour (send my last cell, get theirs)
        if right is not None:
            data, _ = yield from mpi.comm_world.sendrecv(
                np.array([halo_right]).tobytes(), right,
                recvnbytes=8, source=right, sendtag=1, recvtag=2,
            )
            ghost_right = np.frombuffer(data.tobytes())[0]
        if left is not None:
            data, _ = yield from mpi.comm_world.sendrecv(
                np.array([halo_left]).tobytes(), left,
                recvnbytes=8, source=left, sendtag=2, recvtag=1,
            )
            ghost_left = np.frombuffer(data.tobytes())[0]
        padded = np.concatenate(([ghost_left], u, [ghost_right]))
        u = u + ALPHA * (padded[:-2] - 2 * u + padded[2:])

    elapsed = mpi.now - t0
    slabs = yield from mpi.comm_world.gather(u.tobytes(), root=0)
    if mpi.rank == 0:
        result = np.concatenate([np.frombuffer(s) for s in slabs])
        reference = serial_reference(total)
        err = np.abs(result - reference).max()
        print(f"{mpi.size} ranks x {n} cells, {STEPS} steps "
              f"in {elapsed:.0f} simulated us "
              f"({elapsed / STEPS:.2f} us/step)")
        print(f"energy: {result.sum():.6f} (conserved: "
              f"{np.isclose(result.sum(), 1000.0)})")
        print(f"max deviation from serial reference: {err:.3e}")
        assert np.isclose(result.sum(), 1000.0)
        assert err < 1e-9
        return float(err)


def main():
    cluster = Cluster(nodes=8)
    cluster.run_mpi(app)
    cluster.assert_no_drops()
    print("heat diffusion verified against the serial reference")


if __name__ == "__main__":
    main()
