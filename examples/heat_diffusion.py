#!/usr/bin/env python3
"""1-D heat diffusion with halo exchange — a classic HPC workload on the
reproduced stack.

The app itself lives in :mod:`repro.apps.heat` (the scheduler's job
library instantiates the same code as a fleet tenant); this script is
the thin CLI wrapper that runs it on the paper's 8-node testbed and
prints the verification against the serial reference.

This is the kind of tightly coupled, latency-sensitive communication the
paper's low-latency transport exists for: every step costs two small
messages per rank boundary.

Run:  python examples/heat_diffusion.py
"""

from repro.apps.heat import heat_app
from repro.cluster import Cluster

CELLS_PER_RANK = 64
STEPS = 50
ALPHA = 0.1


def main():
    cluster = Cluster(nodes=8)
    cluster.run_mpi(heat_app(CELLS_PER_RANK, STEPS, ALPHA, verbose=True))
    cluster.assert_no_drops()
    print("heat diffusion verified against the serial reference")


if __name__ == "__main__":
    main()
