#!/usr/bin/env python3
"""MPI-2 dynamic process management: an elastic master/worker farm.

This exercises the paper's headline capability (§4.1/§5): processes that
*join the Quadrics network at runtime*.  A two-rank world starts computing
a batch of numeric tasks; when the master sees the queue is deep it spawns
two extra workers mid-job with ``MPI_Comm_spawn``.  The spawned workers
claim fresh contexts/VPIDs from the system-wide capability, wire up through
the RTE, connect back with ``MPI_Comm_get_parent``, and start pulling tasks
— something the static libelan process model categorically cannot do.

Run:  python examples/dynamic_workers.py
"""

import json

import numpy as np

from repro.cluster import Cluster

TASKS = 24
TAG_TASK = 1
TAG_RESULT = 2
TAG_STOP = 3
TAG_GROW = 4  # master -> workers: join the collective spawn


def _task_payload(i):
    return json.dumps({"task": i, "x": i * 1.5}).encode()


def _solve(payload):
    spec = json.loads(bytes(payload).decode())
    return json.dumps({"task": spec["task"], "y": spec["x"] ** 2}).encode()


def spawned_worker(mpi):
    """A late joiner: finds its parents and serves tasks over the
    intercommunicator."""
    parent = yield from mpi.get_parent()
    vpid = mpi.stack.pml.modules[0].ctx.vpid
    print(f"    [spawned worker rank {mpi.rank}] joined at "
          f"{mpi.now:.0f} us with fresh VPID {vpid}")
    done = 0
    while True:
        data, status = yield from parent.recv(source=0, nbytes=256)
        if status.tag == TAG_STOP:
            break
        yield from parent.send(_solve(data), dest=0, tag=TAG_RESULT)
        done += 1
    return done


def app(mpi):
    if mpi.rank == 0:
        return (yield from master(mpi))
    return (yield from world_worker(mpi))


def world_worker(mpi):
    """Original worker, rank 1 of the initial world."""
    done = 0
    while True:
        data, status = yield from mpi.comm_world.recv(source=0, nbytes=256)
        if status.tag == TAG_STOP:
            break
        if status.tag == TAG_GROW:
            # MPI_Comm_spawn is collective over the world: participate
            # (the child programs are the root's argument)
            yield from mpi.spawn([])
            continue
        yield from mpi.comm_world.send(_solve(data), dest=0, tag=TAG_RESULT)
        done += 1
    return done


def master(mpi):
    pending = list(range(TASKS))
    results = {}
    # phase 1: just the original worker
    first_batch = TASKS // 4
    print(f"[master] {TASKS} tasks; starting with 1 worker")
    for i in pending[:first_batch]:
        yield from mpi.comm_world.send(_task_payload(i), dest=1, tag=TAG_TASK)
        data, _ = yield from mpi.comm_world.recv(source=1, tag=TAG_RESULT, nbytes=256)
        out = json.loads(bytes(data).decode())
        results[out["task"]] = out["y"]
    pending = pending[first_batch:]

    # phase 2: the queue is deep — grow the farm at runtime
    print(f"[master] {len(pending)} tasks left at {mpi.now:.0f} us: "
          "spawning 2 extra workers")
    yield from mpi.comm_world.send(b"", dest=1, tag=TAG_GROW)
    intercomm = yield from mpi.spawn([spawned_worker, spawned_worker])

    # round-robin the rest across old and new workers
    targets = [("world", 1), ("spawned", 0), ("spawned", 1)]
    inflight = []
    ti = 0
    for i in pending:
        kind, w = targets[ti % len(targets)]
        ti += 1
        if kind == "world":
            yield from mpi.comm_world.send(_task_payload(i), dest=1, tag=TAG_TASK)
        else:
            yield from intercomm.send(_task_payload(i), dest=w, tag=TAG_TASK)
        inflight.append(kind)
    for kind in inflight:
        if kind == "world":
            data, _ = yield from mpi.comm_world.recv(source=1, tag=TAG_RESULT, nbytes=256)
        else:
            data, _ = yield from intercomm.recv(tag=TAG_RESULT, nbytes=256)
        out = json.loads(bytes(data).decode())
        results[out["task"]] = out["y"]

    # shut everyone down
    yield from mpi.comm_world.send(b"", dest=1, tag=TAG_STOP)
    for w in range(intercomm.remote_size):
        yield from intercomm.send(b"", dest=w, tag=TAG_STOP)

    assert len(results) == TASKS
    assert all(np.isclose(results[i], (i * 1.5) ** 2) for i in range(TASKS))
    print(f"[master] all {TASKS} results verified at {mpi.now:.0f} us")
    return len(results)


def main():
    cluster = Cluster(nodes=4)
    results = cluster.run_mpi(app, np=2)
    worker_counts = {r: v for r, v in results.items() if r != 0}
    print(f"tasks per worker: {worker_counts}")
    assert results[0] == TASKS
    assert sum(worker_counts.values()) == TASKS


if __name__ == "__main__":
    main()
