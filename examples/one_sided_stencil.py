#!/usr/bin/env python3
"""One-sided halo exchange: the heat stencil rewritten with MPI-2 RMA.

The app itself lives in :mod:`repro.apps.stencil` (the scheduler's job
library instantiates the same code as a fleet tenant); this script is
the thin CLI wrapper.  Where ``heat_diffusion.py`` exchanges halos with
two-sided ``sendrecv``, this version lets the *neighbours* deposit the
halos with ``win.put`` — no receive calls at all, with a fence closing
each epoch.  Under the hood every put is a Quadrics RDMA write straight
into the neighbour's exposed memory through the NIC MMU (§4.2), the
communication style the paper's one-sided contemporaries [15, 16] build
on.

Run:  python examples/one_sided_stencil.py
"""

from repro.apps.stencil import one_sided_stencil_app
from repro.cluster import Cluster

CELLS_PER_RANK = 48
STEPS = 30
ALPHA = 0.1


def main():
    cluster = Cluster(nodes=8)
    cluster.run_mpi(one_sided_stencil_app(CELLS_PER_RANK, STEPS, ALPHA,
                                          verbose=True))
    cluster.assert_no_drops()
    print("one-sided stencil verified")


if __name__ == "__main__":
    main()
