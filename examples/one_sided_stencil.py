#!/usr/bin/env python3
"""One-sided halo exchange: the heat stencil rewritten with MPI-2 RMA.

Where ``heat_diffusion.py`` exchanges halos with two-sided ``sendrecv``,
this version exposes each rank's ghost cells in an RMA window and lets the
*neighbours* deposit the halos with ``win.put`` — no receive calls at all,
with a fence closing each epoch.  Under the hood every put is a Quadrics
RDMA write straight into the neighbour's exposed memory through the NIC
MMU (§4.2), the communication style the paper's one-sided contemporaries
[15, 16] build on.

Run:  python examples/one_sided_stencil.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.mpi.rma import win_create

CELLS_PER_RANK = 48
STEPS = 30
ALPHA = 0.1


def serial_reference(total):
    u = np.zeros(total)
    u[total // 2] = 500.0
    for _ in range(STEPS):
        left = np.roll(u, 1)
        right = np.roll(u, -1)
        left[0] = u[0]
        right[-1] = u[-1]
        u = u + ALPHA * (left - 2 * u + right)
    return u


def app(mpi):
    n = CELLS_PER_RANK
    total = n * mpi.size
    u = np.zeros(n)
    hot = total // 2
    if hot // n == mpi.rank:
        u[hot % n] = 500.0

    # window layout: [ghost_left (8B) | ghost_right (8B)]
    ghosts = mpi.alloc(16, label="ghost-cells")
    win = yield from win_create(mpi, ghosts)
    left = mpi.rank - 1 if mpi.rank > 0 else None
    right = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None
    t0 = mpi.now

    for _step in range(STEPS):
        # deposit my edge cells into the neighbours' ghost slots:
        # my LAST cell becomes the right neighbour's ghost_left, and
        # my FIRST cell its left neighbour's ghost_right.
        if right is not None:
            yield from win.put(np.array([u[-1]]).tobytes(), target=right, offset=0)
        if left is not None:
            yield from win.put(np.array([u[0]]).tobytes(), target=left, offset=8)
        yield from win.fence()  # everyone's halos are now in place
        raw = ghosts.read()
        ghost_left = np.frombuffer(raw[0:8].tobytes())[0] if left is not None else u[0]
        ghost_right = np.frombuffer(raw[8:16].tobytes())[0] if right is not None else u[-1]
        padded = np.concatenate(([ghost_left], u, [ghost_right]))
        u = u + ALPHA * (padded[:-2] - 2 * u + padded[2:])
        yield from win.fence()  # close the compute epoch before reuse

    elapsed = mpi.now - t0
    slabs = yield from mpi.comm_world.gather(u.tobytes(), root=0)
    if mpi.rank == 0:
        result = np.concatenate([np.frombuffer(s) for s in slabs])
        reference = serial_reference(total)
        err = np.abs(result - reference).max()
        print(f"{mpi.size} ranks, {STEPS} steps of one-sided halo exchange "
              f"in {elapsed:.0f} simulated us ({win.puts} puts by rank 0)")
        print(f"energy {result.sum():.6f}, max error vs serial {err:.3e}")
        assert np.isclose(result.sum(), 500.0)
        assert err < 1e-9
    yield from win.free()


def main():
    cluster = Cluster(nodes=8)
    cluster.run_mpi(app)
    cluster.assert_no_drops()
    print("one-sided stencil verified")


if __name__ == "__main__":
    main()
