#!/usr/bin/env python3
"""Quickstart: a minimal MPI job on the simulated QsNetII cluster.

Launches the paper's testbed (8 dual-CPU nodes, Elan4 NICs, one QS-8A
switch), runs a small MPI program using point-to-point and collective
operations over the PTL/Elan4 transport, and prints what happened with
simulated timestamps.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Cluster


def app(mpi):
    """Each rank runs this coroutine: ring-pass a token, then allreduce."""
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size

    # --- point to point: pass an incrementing token around the ring -------
    if mpi.rank == 0:
        token = np.array([1], dtype=np.uint8)
        yield from mpi.comm_world.send(token, dest=right, tag=7)
        data, status = yield from mpi.comm_world.recv(source=left, tag=7, nbytes=1)
        print(f"[{mpi.now:9.2f} us] rank 0: token returned with value "
              f"{int(data[0])} (expected {mpi.size})")
    else:
        data, status = yield from mpi.comm_world.recv(source=left, tag=7, nbytes=1)
        token = np.array([int(data[0]) + 1], dtype=np.uint8)
        yield from mpi.comm_world.send(token, dest=right, tag=7)

    # --- collective: everyone contributes rank^2, allreduce sums it -------
    contribution = np.array([mpi.rank ** 2], dtype=np.int64)
    total = yield from mpi.comm_world.allreduce(contribution, op="sum")
    if mpi.rank == 0:
        expected = sum(r ** 2 for r in range(mpi.size))
        print(f"[{mpi.now:9.2f} us] allreduce(sum of rank^2) = {int(total[0])} "
              f"(expected {expected})")

    # --- a large message: rendezvous + RDMA read under the hood -----------
    if mpi.rank == 0:
        big = mpi.alloc(256 * 1024)
        big.view()[:] = 0xAB
        t0 = mpi.now
        yield from mpi.comm_world.send(big, dest=1, tag=8)
        print(f"[{mpi.now:9.2f} us] rank 0: 256 KB rendezvous send completed "
              f"in {mpi.now - t0:.1f} us "
              f"({256 * 1024 / (mpi.now - t0):.0f} MB/s)")
    elif mpi.rank == 1:
        data, status = yield from mpi.comm_world.recv(source=0, tag=8,
                                                      nbytes=256 * 1024)
        assert (data == 0xAB).all()

    yield from mpi.comm_world.barrier()
    return mpi.now


def main():
    cluster = Cluster(nodes=8)
    results = cluster.run_mpi(app)
    print(f"\nall {len(results)} ranks finished; "
          f"job took {max(results.values()):.1f} simulated us")
    cluster.assert_no_drops()


if __name__ == "__main__":
    main()
