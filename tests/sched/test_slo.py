"""SLO accounting units: nearest-rank percentiles and tenant stats."""

from repro.sched.slo import TenantStats, fleet_table, percentile


def test_percentile_nearest_rank():
    xs = [10.0, 20.0, 30.0, 40.0]
    assert percentile(xs, 50) == 20.0
    assert percentile(xs, 75) == 30.0
    assert percentile(xs, 95) == 40.0
    assert percentile(xs, 0) == 10.0
    assert percentile(xs, 100) == 40.0
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 99) == 7.0


def test_tenant_stats_derived_values():
    s = TenantStats("train-0", slo_step_us=50.0)
    s.submit_us = 100.0
    s.start_us = 160.0
    for v in (10.0, 60.0, 20.0, 70.0):
        s.note_step(0, v)
    s.end_us = 400.0
    assert s.queue_wait_us == 60.0
    assert s.makespan_us == 240.0
    assert s.step_pct(50) == 20.0
    assert s.slo_violation_frac == 0.5
    d = s.as_dict()
    assert d["steps"] == 4 and d["slo_violation_frac"] == 0.5


def test_no_slo_target_means_no_violations():
    s = TenantStats("x")
    s.note_step(0, 1e9)
    assert s.slo_violation_frac == 0.0


def test_fleet_table_renders_every_tenant():
    a = TenantStats("a", slo_step_us=5.0)
    a.submit_us, a.start_us, a.end_us = 0.0, 1.0, 2.0
    a.note_step(0, 10.0)
    b = TenantStats("b")
    table = fleet_table([a, b])
    assert "a" in table and "b" in table
    assert "100.0%" in table  # a's single step violates its 5µs target
