"""Placement-policy units: pure functions of the free map."""

import numpy as np
import pytest

from repro.sched.placement import (
    PackedPlacement,
    RandomPlacement,
    SpreadPlacement,
    make_policy,
    register_policy,
)

FREE = [(0, 2), (1, 2), (2, 1), (3, 0)]


def rng():
    return np.random.default_rng(42)


def test_packed_fills_in_id_order():
    assert PackedPlacement().place(4, FREE, rng()) == [0, 0, 1, 1]
    assert PackedPlacement().place(5, FREE, rng()) == [0, 0, 1, 1, 2]


def test_spread_balances_across_nodes():
    out = SpreadPlacement().place(3, FREE, rng())
    assert out == [0, 1, 2]
    # ties break toward the lowest node id
    assert SpreadPlacement().place(2, FREE, rng()) == [0, 1]


def test_insufficient_slots_returns_none():
    for policy in (PackedPlacement(), SpreadPlacement(), RandomPlacement()):
        assert policy.place(6, FREE, rng()) is None
        assert policy.place(1, [(0, 0)], rng()) is None


def test_random_is_seed_deterministic_and_capacity_respecting():
    a = RandomPlacement().place(4, FREE, rng())
    b = RandomPlacement().place(4, FREE, rng())
    assert a == b  # same seed, same draw
    counts = {nid: a.count(nid) for nid in set(a)}
    for nid, used in counts.items():
        assert used <= dict(FREE)[nid]


def test_registry_lookup_and_errors():
    assert make_policy("packed").name == "packed"
    with pytest.raises(ValueError, match="unknown placement policy"):
        make_policy("tetris")
    register_policy("packed2", PackedPlacement)
    assert isinstance(make_policy("packed2"), PackedPlacement)
