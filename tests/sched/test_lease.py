"""Cluster co-residency: leases share the fabric, isolate job state."""

import pytest

from repro.apps import heat_app, shuffle_app, training_app
from repro.cluster import Cluster
from repro.rte.environment import RteJob
from repro.tcpip.stack import IpNetwork


def _run_jobs(cluster, leases_and_apps):
    """Gang-launch one job per (lease, app) on a shared IP network and run
    the shared simulator to quiescence."""
    net = IpNetwork(cluster.sim, cluster.config)
    jobs = []
    for i, (lease, app) in enumerate(leases_and_apps):
        job = RteJob(lease, net=net, seed_port=7000 + i)
        for rank in range(lease.n_nodes):
            job.launch(rank, app, group="world", group_count=lease.n_nodes)
        jobs.append(job)
    cluster.sim.run()
    for job in jobs:
        for rank, proc in job.processes.items():
            assert proc.finished, f"rank {rank} never finished"
            assert proc.failure is None
    cluster.assert_no_drops()
    return jobs


def test_lease_validation():
    cluster = Cluster(nodes=4)
    with pytest.raises(ValueError, match="at least one node"):
        cluster.sublease([])
    with pytest.raises(ValueError, match="duplicate"):
        cluster.sublease([1, 1])
    with pytest.raises(ValueError, match="outside cluster"):
        cluster.sublease([0, 7])


def test_lease_shares_fabric_but_isolates_job_state():
    cluster = Cluster(nodes=8)
    a = cluster.sublease([0, 1, 2, 3])
    b = cluster.sublease([4, 5, 6, 7])
    # physical substrate: shared identity
    assert a.sim is b.sim is cluster.sim
    assert a.fabric is b.fabric is cluster.fabric
    assert a.capability is cluster.capability
    assert a.nics is cluster.nics
    # job-scoped state: fresh per lease
    assert a.coll_hw is not b.coll_hw
    assert a.coll_hw is not cluster.coll_hw
    # the lease's node view is the granted subset, in grant order
    assert [n.node_id for n in b.nodes] == [4, 5, 6, 7]
    assert b.n_nodes == 4
    # hw queue ids come from one cluster-wide pool (no collision on the
    # shared NICs between co-resident registries)
    qids = [a.alloc_hw_queue_id(), b.alloc_hw_queue_id(), a.alloc_hw_queue_id()]
    assert len(set(qids)) == 3


def test_lease_claims_contexts_by_global_node_id():
    cluster = Cluster(nodes=8)
    lease = cluster.sublease([5, 6])
    ctx = cluster.claim_context(5)
    ctx2 = lease.claim_context(5)
    assert ctx.nic is ctx2.nic  # same physical NIC on global node 5


def test_two_jobs_on_disjoint_leases():
    cluster = Cluster(nodes=8)
    jobs = _run_jobs(
        cluster,
        [
            (cluster.sublease([0, 1, 2, 3]), training_app(steps=4)),
            (cluster.sublease([4, 5, 6, 7]), shuffle_app(rounds=3)),
        ],
    )
    # every rank of the training job verified its allreduce sums
    assert all(r == 4 for r in (p.result for p in jobs[0].processes.values()))
    # every shuffle rank verified every incoming block
    assert all(r == 3 for r in (p.result for p in jobs[1].processes.values()))


def test_two_jobs_on_overlapping_nodes():
    """Two tenants packed onto the *same* nodes: separate Elan contexts,
    separate seed daemons, one shared NIC per node."""
    cluster = Cluster(nodes=4)
    jobs = _run_jobs(
        cluster,
        [
            (cluster.sublease([0, 1, 2, 3]), training_app(steps=3)),
            (cluster.sublease([0, 1, 2, 3]), heat_app(cells_per_rank=32, steps=10)),
        ],
    )
    assert all(p.result == 3 for p in jobs[0].processes.values())
    # heat returns rank 0's max error vs the serial reference
    err = jobs[1].processes[0].result
    assert err is not None and err < 1e-9


def test_injected_simulator_is_shared():
    from repro.sim.core import Simulator

    sim = Simulator()
    c1 = Cluster(nodes=2, sim=sim)
    c2 = Cluster(nodes=2, sim=sim)
    assert c1.sim is c2.sim is sim
