"""Fleet-level acceptance: determinism, co-residency scale, fault
campaigns, and observation-neutrality."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cluster import Cluster
from repro.obs import capture
from repro.sched import FleetRun, synthetic_fleet

REPO = Path(__file__).resolve().parents[2]

#: the ISSUE's acceptance scenario: 12 jobs from 4 families on a shared
#: 16-node fat-tree, arrivals dense enough that the queue forms, the
#: head blocks, and backfill engages
ACCEPTANCE_SEED = 7


def _acceptance_fleet():
    cluster = Cluster(nodes=16, seed=ACCEPTANCE_SEED)
    arrivals = synthetic_fleet(
        seed=ACCEPTANCE_SEED,
        n_jobs=12,
        mean_interarrival_us=40.0,
        families=("train", "shuffle", "stencil", "sort"),
        np_choices=(2, 4, 8),
        slo_step_us=2000.0,
    )
    return FleetRun(cluster, arrivals, slots_per_node=2, seed=ACCEPTANCE_SEED)


def test_acceptance_scenario_shape():
    result = _acceptance_fleet().run()
    c = result.scheduler.counters()
    assert c["completed"] == 12 and c["failed"] == 0
    # >= 8 jobs co-resident on the shared fabric at peak
    assert c["max_concurrent"] >= 8
    # backfill engaged: a later job overtook a blocked head-of-queue
    assert c["backfills"] >= 1
    assert any(r.backfilled for r in result.scheduler.runs)
    # >= 3 workload families in the mix
    families = {r.spec.family for r in result.scheduler.runs}
    assert len(families) >= 3
    # contention is real: somebody actually waited in the queue
    assert any(s.queue_wait_us > 0 for s in result.tenants)


def test_same_seed_fleet_is_bit_identical():
    """The differential determinism pin: two fresh clusters, same seed,
    byte-identical placement, arrivals, and per-tenant metrics."""
    r1 = _acceptance_fleet().run()
    r2 = _acceptance_fleet().run()
    assert [run.placement for run in r1.scheduler.runs] == [
        run.placement for run in r2.scheduler.runs
    ]
    j1 = json.dumps(r1.as_dict(), sort_keys=True)
    j2 = json.dumps(r2.as_dict(), sort_keys=True)
    assert j1 == j2


def test_synthetic_fleet_is_pure_data():
    a = synthetic_fleet(seed=5, n_jobs=6)
    b = synthetic_fleet(seed=5, n_jobs=6)
    assert a == b
    c = synthetic_fleet(seed=6, n_jobs=6)
    assert a != c


def test_fleet_survives_switch_death_campaign():
    """A spine switch dies mid-traffic; the redundant fat-tree plane
    reroutes and every tenant still completes."""
    from repro.faults import FaultPlan

    cluster = Cluster(nodes=16, seed=ACCEPTANCE_SEED)
    arrivals = synthetic_fleet(
        seed=ACCEPTANCE_SEED,
        n_jobs=12,
        mean_interarrival_us=40.0,
        families=("train", "shuffle", "stencil", "sort"),
        np_choices=(2, 4, 8),
    )
    plan = FaultPlan("fleet-switch-death", seed=1).switch_death(
        at_us=400.0, switch="sw1.0", duration_us=1500.0
    )
    result = FleetRun(
        cluster, arrivals, slots_per_node=2, seed=ACCEPTANCE_SEED, fault_plan=plan
    ).run()
    assert result.scheduler.counters()["completed"] == 12
    assert any("switch_death" in n for n in result.fault_notes)
    assert sum(t.reroutes for t in cluster.rail_topologies) > 0
    cluster.assert_no_drops()


def test_observation_neutrality():
    """The sched metrics scope is observation-only: tenant stats are
    bit-identical with the observer on and off."""
    base = _acceptance_fleet().run().as_dict()
    with capture() as cap:
        observed = _acceptance_fleet().run().as_dict()
    assert json.dumps(base, sort_keys=True) == json.dumps(observed, sort_keys=True)
    # and the observer did record the sched scope
    scopes = cap.observers[-1].snapshot()["scopes"]
    assert scopes["sched"]["jobs_started"]["value"] == 12


def test_fleet_smoke_under_sanitizers():
    """REPRO_SANITIZE=1 fleet smoke: the runtime race/leak sanitizers stay
    clean across a multi-tenant run."""
    env = dict(os.environ, REPRO_SANITIZE="1", PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.sched.demo", "--smoke"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "completed=3" in proc.stdout
