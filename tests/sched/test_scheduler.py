"""Scheduler behaviour: FIFO order, backfill, slot accounting."""

import pytest

from repro.cluster import Cluster
from repro.sched import JobScheduler, JobSpec
from repro.sched.spec import register_family


def _probe_builder(spec, on_step):
    """A compute-only tenant: sleeps through its steps, no messaging —
    keeps scheduler tests fast while exercising the full RTE start path."""
    sleep_us = float(spec.params.get("sleep_us", 100.0))

    def app(mpi):
        for _ in range(spec.steps):
            t0 = mpi.now
            yield from mpi.thread.sleep(sleep_us)
            if on_step is not None:
                on_step(mpi.rank, mpi.now - t0)
        return mpi.rank

    return app


register_family("probe", _probe_builder)


def probe(name, np_, steps=5, sleep_us=200.0):
    return JobSpec(name, "probe", np=np_, steps=steps,
                   params={"sleep_us": sleep_us})


def test_jobs_start_immediately_when_slots_free():
    cluster = Cluster(nodes=4)
    sched = JobScheduler(cluster, slots_per_node=1)
    a = sched.submit(probe("a", 2), at_us=0.0)
    b = sched.submit(probe("b", 2), at_us=5.0)
    cluster.sim.run()
    assert a.state == "done" and b.state == "done"
    assert a.stats.queue_wait_us == 0.0
    assert b.stats.queue_wait_us == 0.0
    assert sched.counters()["backfills"] == 0
    assert sched.counters()["max_concurrent"] == 2


def test_backfill_engages_when_head_blocked():
    cluster = Cluster(nodes=4)
    sched = JobScheduler(cluster, slots_per_node=1, backfill=True)
    a = sched.submit(probe("a", 2), at_us=0.0)     # takes 2 of 4 slots
    b = sched.submit(probe("b", 4), at_us=50.0)    # blocked: only 2 free
    c = sched.submit(probe("c", 2), at_us=100.0)   # fits the 2 free slots
    cluster.sim.run()
    assert [r.state for r in (a, b, c)] == ["done"] * 3
    assert c.backfilled and not a.backfilled and not b.backfilled
    assert sched.counters()["backfills"] == 1
    # c jumped the queue; b had to wait for a's slots
    assert c.stats.start_us < b.stats.start_us
    assert b.stats.start_us >= a.stats.end_us
    # b needs all 4 slots, so it starts the instant the later of a and c
    # finishes (the zero-delay dispatch event after the release)
    assert b.stats.start_us == pytest.approx(
        max(a.stats.end_us, c.stats.end_us), abs=1e-6
    )


def test_backfill_disabled_preserves_strict_fifo():
    cluster = Cluster(nodes=4)
    sched = JobScheduler(cluster, slots_per_node=1, backfill=False)
    a = sched.submit(probe("a", 2), at_us=0.0)
    b = sched.submit(probe("b", 4), at_us=50.0)
    c = sched.submit(probe("c", 2), at_us=100.0)
    cluster.sim.run()
    assert [r.state for r in (a, b, c)] == ["done"] * 3
    assert not c.backfilled and sched.counters()["backfills"] == 0
    assert b.stats.start_us >= a.stats.end_us
    assert c.stats.start_us >= b.stats.start_us


def test_oversized_job_rejected_at_submit():
    cluster = Cluster(nodes=2)
    sched = JobScheduler(cluster, slots_per_node=1)
    with pytest.raises(ValueError, match="needs 3 slots"):
        sched.submit(probe("big", 3))


def test_slots_return_to_full_after_completion():
    cluster = Cluster(nodes=4)
    sched = JobScheduler(cluster, slots_per_node=2)
    sched.submit(probe("a", 6), at_us=0.0)
    sched.submit(probe("b", 4), at_us=10.0)
    cluster.sim.run()
    assert sched._free == {0: 2, 1: 2, 2: 2, 3: 2}
    assert sched.unfinished() == []


def test_placement_respects_policy():
    cluster = Cluster(nodes=4)
    sched = JobScheduler(cluster, policy="spread", slots_per_node=2)
    a = sched.submit(probe("a", 4), at_us=0.0)
    cluster.sim.run()
    # spread puts one rank per node before doubling up
    assert a.placement == [0, 1, 2, 3]
