"""IB fault campaigns: PFC storms and HCA port deaths.

The recovery contract mirrors the Elan4 rail faults: a PFC storm only
*delays* traffic (PAUSE is lossless), and a dead IB port on a striped job
fails its traffic over to the surviving Elan4 rail with no data loss."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import default_config
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.ib.options import IbOptions
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import RteJob


# ---------------------------------------------------------------- the DSL
def test_ib_builders_chain_and_validate():
    plan = FaultPlan("ibfaults").pfc_storm(20.0, "ibsw0").ib_port_down(
        10.0, 1, duration_us=50.0
    )
    assert [e.kind for e in plan] == ["ib_port_down", "pfc_storm"]
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan()._add(FaultEvent(0.0, "ib_cable_chewed"))


def test_ib_port_down_and_restore_trace():
    cluster = Cluster(nodes=2, ib_rail=True)
    plan = FaultPlan().ib_port_down(10.0, 0, duration_us=50.0)
    inj = FaultInjector(cluster, plan)
    inj.arm()
    cluster.sim.run(until=100.0)
    assert [k for _, k, _ in inj.trace] == ["ib_port_down", "ib_port_up"]
    assert not cluster.ib_nics[0][0].down


def test_pfc_storm_requires_an_ib_rail():
    cluster = Cluster(nodes=2)  # no IB rail
    inj = FaultInjector(cluster, FaultPlan().pfc_storm(5.0, "ibsw0"))
    inj.arm()
    with pytest.raises(RuntimeError, match="no ib rail"):
        cluster.sim.run(until=10.0)


# ----------------------------------------------------------- pfc storm
def test_pfc_storm_delays_but_job_completes():
    """A forced PAUSE on every feeder of the leaf switch while a message
    stream is in flight: nothing is lost, nothing is reordered, the job
    just finishes later."""
    n, iters = 1024, 12
    payloads = [np.full(n, i + 1, dtype=np.uint8) for i in range(iters)]

    def sender(mpi):
        for i in range(iters):
            buf = mpi.alloc(n)
            buf.write(payloads[i])
            yield from mpi.comm_world.send(buf, dest=1, tag=i, nbytes=n)
        return mpi.now

    def receiver(mpi):
        got = []
        for i in range(iters):
            data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=n)
            got.append(data.copy())
        return got

    def run(storm):
        opts = IbOptions(mode="roce", pfc=True, ecn=False)
        cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
        job = RteJob(cluster, stack_factory=make_mpi_stack_factory())
        job.launch(0, sender, group="world", group_count=2, transports=("ib",))
        job.launch(1, receiver, group="world", group_count=2, transports=("ib",))
        inj = None
        if storm:
            plan = FaultPlan("storm").pfc_storm(150.0, "ibsw0", duration_us=400.0)
            inj = FaultInjector(cluster, plan)
            inj.arm()
        results = job.wait()
        cluster.assert_no_drops()
        return results, cluster, inj

    calm_results, _, _ = run(storm=False)
    storm_results, cluster, inj = run(storm=True)
    for i in range(iters):
        assert np.array_equal(storm_results[1][i], payloads[i])
    assert [k for _, k, _ in inj.trace] == ["pfc_storm"]
    assert cluster.ib_fabrics[0].stats()["pause_us"] > 0.0
    assert cluster.ib_fabrics[0].stats()["drops"] == 0
    # the storm held the fabric until t=550us: the stream cannot have
    # finished before the release, and must finish later than a calm run
    assert storm_results[0] > 550.0 > calm_results[0]


def test_pfc_storm_campaign_is_deterministic():
    def run():
        opts = IbOptions(mode="roce", pfc=True, ecn=True)
        cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts, seed=5)
        job = RteJob(cluster, stack_factory=make_mpi_stack_factory())

        def app(mpi):
            if mpi.rank == 0:
                for i in range(6):
                    yield from mpi.comm_world.send(
                        mpi.alloc(4096), dest=1, tag=i, nbytes=4096
                    )
                return mpi.now
            for i in range(6):
                yield from mpi.comm_world.recv(source=0, tag=i, nbytes=4096)
            return mpi.now

        job.launch(0, app, group="world", group_count=2, transports=("ib",))
        job.launch(1, app, group="world", group_count=2, transports=("ib",))
        inj = FaultInjector(
            cluster, FaultPlan("s", seed=5).pfc_storm(100.0, "ibsw0", duration_us=250.0)
        )
        inj.arm()
        results = job.wait()
        return results, inj.trace

    r1, t1 = run()
    r2, t2 = run()
    assert r1 == r2
    assert t1 == t2


# ------------------------------------------------------- port-down failover
def test_ib_port_down_fails_over_to_elan4():
    """A striped Elan4+IB job loses the IB port on the receiver's node
    mid-stream: the receiver's PML unhealthies the module immediately (HCA
    driver diagnosis), the sender discovers via go-back-N retry exhaustion,
    and every message still arrives intact over Elan4."""
    n, iters = 1024, 12
    rng = np.random.default_rng(2)
    payloads = [rng.integers(0, 256, n, dtype=np.uint8) for _ in range(iters)]

    def sender(mpi):
        yield from mpi.thread.sleep(1000.0)
        for i in range(iters):
            buf = mpi.alloc(n)
            buf.write(payloads[i])
            yield from mpi.comm_world.send(buf, dest=1, tag=i, nbytes=n)
            yield from mpi.thread.sleep(150.0)  # the stream spans the fault
        return "sent"

    def receiver(mpi):
        got = []
        for i in range(iters):
            data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=n)
            got.append(data.copy())
        return got

    # a tight retry budget keeps the sender's dead-QP diagnosis fast
    config = default_config().variant(ib_max_retries=3)
    cluster = Cluster(nodes=2, config=config, ib_rail=True)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())
    rails = ("elan4", "ib")
    job.launch(0, sender, group="world", group_count=2, transports=rails)
    job.launch(1, receiver, group="world", group_count=2, transports=rails)

    plan = FaultPlan("portdown").ib_port_down(1500.0, 1)  # permanent
    inj = FaultInjector(cluster, plan, job=job)
    inj.arm()
    results = job.wait()

    assert results[0] == "sent"
    for i in range(iters):
        assert np.array_equal(results[1][i], payloads[i]), f"message {i} corrupted"
    assert [k for _, k, _ in inj.trace] == ["ib_port_down"]
    # the receiver's PML took the module out of service
    pml1 = job.processes[1].stack.pml
    assert any(m.name == "ib" and not m.healthy for m in pml1.modules)
    # nobody was declared dead: the job survived on the Elan4 rail
    assert inj.stats()["dead_peers"] == 0
