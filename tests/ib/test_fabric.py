"""IB/RoCE fabric mechanics: queues, ECN marking, drops, the PFC cascade."""

import pytest

from repro.cluster import Cluster
from repro.ib.fabric import IbFabric, PRIO_CTL
from repro.ib.nic import IbPacket
from repro.ib.options import IbOptions


def _pkt(n=2048, prio=0):
    return IbPacket(src_node=0, dst_node=1, nbytes=n, kind="data", qpn=999,
                    prio=prio)


def _egress_link(cluster):
    """The leaf-switch egress port toward host 1 (where incast queues)."""
    return cluster.ib_fabrics[0].switches[0].ports["h1"]


# -------------------------------------------------------------- options
def test_options_validation_rejects_bad_thresholds():
    with pytest.raises(ValueError, match="headroom"):
        IbOptions(mode="roce", queue_depth_pkts=8).validate()
    with pytest.raises(ValueError, match="pfc_xon"):
        IbOptions(pfc_xon_pkts=30, pfc_xoff_pkts=24).validate()
    with pytest.raises(ValueError, match="unknown ib mode"):
        IbOptions(mode="ethernet").validate()


def test_lossless_property():
    assert IbOptions(mode="ib").lossless
    assert IbOptions(mode="roce", pfc=True).lossless
    assert not IbOptions(mode="roce", pfc=False).lossless


# ------------------------------------------------------------ ib mode
def test_ib_mode_queues_unbounded_never_drops_or_marks():
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=IbOptions(mode="ib"))
    link = _egress_link(cluster)
    for _ in range(100):
        link.enqueue(_pkt())
    assert link.drops == 0
    assert link.ecn_marks == 0
    assert link.max_depth >= 99  # the backlog is visible, just not lossy
    assert not link.xoff


# ---------------------------------------------------------- roce: ECN
def test_ecn_marks_above_threshold():
    opts = IbOptions(mode="roce", pfc=False, ecn=True,
                     pfc_xoff_pkts=24, pfc_xon_pkts=8)
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
    link = _egress_link(cluster)
    for _ in range(20):
        link.enqueue(_pkt())
    # the packets enqueued at depth >= 12 (the default threshold) are marked
    assert link.ecn_marks == 8
    assert cluster.ib_fabrics[0].switches[0].ecn_marks == 8
    assert link.drops == 0


# -------------------------------------------------------- roce: drops
def test_full_queue_drops_without_pfc():
    opts = IbOptions(mode="roce", pfc=False, ecn=False, queue_depth_pkts=8,
                     pfc_xoff_pkts=6, pfc_xon_pkts=2)
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
    link = _egress_link(cluster)
    for _ in range(12):
        link.enqueue(_pkt())
    assert link.drops == 4
    assert cluster.ib_fabrics[0].switches[0].drops == 4
    assert len(link._data) == 8


def test_control_priority_exempt_from_drop_and_mark():
    opts = IbOptions(mode="roce", pfc=False, ecn=True, queue_depth_pkts=8,
                     pfc_xoff_pkts=6, pfc_xon_pkts=2, ecn_threshold_pkts=4)
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
    link = _egress_link(cluster)
    for _ in range(8):
        link.enqueue(_pkt())  # data queue is now full
    drops, marks = link.drops, link.ecn_marks
    ack = _pkt(n=16, prio=PRIO_CTL)
    link.enqueue(ack)
    assert link.drops == drops and link.ecn_marks == marks
    assert not ack.ecn
    assert len(link._ctl) == 1


# ---------------------------------------------------------- roce: PFC
def test_pfc_pause_cascade_and_release():
    opts = IbOptions(mode="roce", pfc=True, ecn=False)
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
    fabric = cluster.ib_fabrics[0]
    sw = fabric.switches[0]
    link = _egress_link(cluster)
    for _ in range(30):  # crosses XOFF (24)
        link.enqueue(_pkt())
    assert link.xoff
    assert link.drops == 0  # PFC is lossless
    # crossing XOFF pauses every upstream feeder of the switch (host tx links)
    assert sw.pauses_sent == len(sw.feeders) > 0
    cluster.sim.run(until=100_000.0)
    # drained below XON: pauses released, time-under-pause accounted
    assert not link.xoff
    assert len(link._data) == 0
    for feeder in sw.feeders:
        assert not feeder.paused_prios
        assert feeder.pause_us > 0.0
    assert fabric.stats()["pause_us"] > 0.0


def test_paused_feeder_holds_data_but_not_control():
    opts = IbOptions(mode="roce", pfc=True, ecn=False)
    cluster = Cluster(nodes=2, ib_rail=True, ib_options=opts)
    nic0 = cluster.ib_nics[0][0]
    tx = nic0.tx_link
    from repro.ib.fabric import PRIO_DATA
    tx.pause(PRIO_DATA)
    tx.enqueue(_pkt())
    tx.enqueue(_pkt(n=16, prio=PRIO_CTL))
    cluster.sim.run(until=50.0)
    assert tx.packets_tx == 1  # only the control frame got through
    assert len(tx._data) == 1
    tx.resume(PRIO_DATA)
    cluster.sim.run(until=100.0)
    assert tx.packets_tx == 2
    assert tx.pause_us > 0.0


# ------------------------------------------------------------ topology
def test_leaf_spine_topology_beyond_radix():
    cluster = Cluster(nodes=2)  # just for the sim + config
    n = cluster.config.ib_switch_radix + 6
    fabric = IbFabric(cluster.sim, cluster.config, IbOptions(), n)
    names = [sw.name for sw in fabric.switches]
    assert names == ["ibsw0", "ibsw1", "ibspine"]
    assert fabric.hops(0, 1) == 1  # same leaf
    assert fabric.hops(0, n - 1) == 3  # leaf -> spine -> leaf


def test_single_leaf_within_radix():
    cluster = Cluster(nodes=2)
    fabric = IbFabric(cluster.sim, cluster.config, IbOptions(), 8)
    assert [sw.name for sw in fabric.switches] == ["ibsw0"]
    assert fabric.hops(0, 7) == 1
