"""RC transport at the verbs level: delivery, go-back-N, DCQCN."""

import numpy as np

from repro.cluster import Cluster
from repro.ib.nic import IbPacket
from repro.ib.options import IbOptions
from repro.ib.verbs import WorkRequest


def _connected_pair(options=None, config=None):
    """Two HCAs with one RC QP each, connected to each other."""
    cluster = Cluster(nodes=2, ib_rail=True, config=config,
                      ib_options=options or IbOptions())
    nic_a, nic_b = cluster.ib_nics[0]
    cq_a, cq_b = nic_a.create_cq(), nic_b.create_cq()
    qp_a, qp_b = nic_a.create_qp(cq_a), nic_b.create_qp(cq_b)
    qp_a.connect(1, qp_b.qpn)
    qp_b.connect(0, qp_a.qpn)
    return cluster, (nic_a, qp_a, cq_a), (nic_b, qp_b, cq_b)


def test_send_segments_at_mtu_and_reassembles():
    cluster, (nic_a, qp_a, cq_a), (nic_b, qp_b, cq_b) = _connected_pair()
    n = 5000  # 3 MTU packets at 2048
    data = np.arange(n, dtype=np.uint8) % 251
    nic_a.post_send(qp_a, WorkRequest(wr_id=1, opcode="send", nbytes=n, data=data))
    cluster.sim.run(until=10_000.0)
    cqe = cq_b.poll()
    assert cqe is not None and cqe.kind == "recv"
    assert cqe.nbytes == n
    assert np.array_equal(cqe.data, data)
    done = cq_a.poll()  # requester completion after the end-to-end ack
    assert done is not None and done.kind == "send" and done.wr_id == 1
    assert qp_a.packets_tx == 3
    assert not qp_a.unacked


def test_nak_triggers_go_back_n():
    """A dropped mid-stream packet: the gap NAKs, the window replays, the
    message still reassembles byte-exact."""
    cluster, (nic_a, qp_a, _), (_, _, cq_b) = _connected_pair()
    link = cluster.ib_fabrics[0].switches[0].ports["h1"]
    orig, state = link.deliver, {"dropped": False}

    def lossy(pkt):
        if pkt.kind == "data" and pkt.psn == 0 and not state["dropped"]:
            state["dropped"] = True  # eat the first packet exactly once
            return
        orig(pkt)

    link.deliver = lossy
    n = 5000
    data = np.arange(n, dtype=np.uint8) % 199
    nic_a.post_send(qp_a, WorkRequest(wr_id=7, opcode="send", nbytes=n, data=data))
    cluster.sim.run(until=50_000.0)
    assert state["dropped"]
    assert qp_a.retransmitted >= 1
    cqe = cq_b.poll()
    assert cqe is not None and np.array_equal(cqe.data, data)
    assert not qp_a.unacked


def test_tail_loss_recovered_by_retransmit_timer():
    """Losing the *last* packet leaves no gap to NAK — only the sender's
    retransmit timer can recover it."""
    cluster, (nic_a, qp_a, cq_a), (nic_b, _, cq_b) = _connected_pair()
    link = cluster.ib_fabrics[0].switches[0].ports["h1"]
    orig, state = link.deliver, {"dropped": False}

    def lossy(pkt):
        if pkt.kind == "data" and pkt.psn == 2 and not state["dropped"]:
            state["dropped"] = True
            return
        orig(pkt)

    link.deliver = lossy
    n = 5000
    data = np.full(n, 0x3C, dtype=np.uint8)
    nic_a.post_send(qp_a, WorkRequest(wr_id=9, opcode="send", nbytes=n, data=data))
    # well past ib_retransmit_us so the timer fires and the tail replays
    cluster.sim.run(until=20 * cluster.config.ib_retransmit_us)
    assert state["dropped"]
    assert qp_a.retransmitted >= 1
    assert nic_b.naks_tx == 0  # no gap ever became visible to the responder
    cqe = cq_b.poll()
    assert cqe is not None and np.array_equal(cqe.data, data)
    done = cq_a.poll()
    assert done is not None and done.kind == "send"


def test_retry_exhaustion_fails_the_qp():
    from repro.config import default_config

    cluster, (nic_a, qp_a, _), _ = _connected_pair(
        config=default_config().variant(ib_max_retries=2)
    )
    nic_b = cluster.ib_nics[0][1]
    nic_b.set_port_down(True)  # the peer hears nothing, forever
    errors = []
    qp_a.on_error = lambda qp, reason: errors.append(reason)
    nic_a.post_send(qp_a, WorkRequest(wr_id=1, opcode="send", nbytes=64,
                                      data=np.zeros(64, dtype=np.uint8)))
    cluster.sim.run(until=100 * cluster.config.ib_retransmit_us)
    assert qp_a.state == "error"
    assert errors and "retry limit" in errors[0]
    assert not qp_a.unacked and not qp_a.send_queue  # flushed


def test_rdma_write_lands_in_registered_mr():
    cluster, (nic_a, qp_a, cq_a), (nic_b, _, cq_b) = _connected_pair()
    n = 4096
    target = cluster.nodes[1].new_address_space("ibtest").alloc(n)
    mr = nic_b.reg_mr(target)
    data = np.arange(n, dtype=np.uint8) % 241
    nic_a.post_send(qp_a, WorkRequest(
        wr_id=3, opcode="write", nbytes=n, data=data, rkey=mr.rkey,
        remote_offset=0, imm=("done", 3),
    ))
    cluster.sim.run(until=10_000.0)
    assert np.array_equal(target.read(), data)  # one-sided: memory, not CQE
    imm = cq_b.poll()
    assert imm is not None and imm.kind == "imm" and imm.imm == ("done", 3)
    done = cq_a.poll()
    assert done is not None and done.kind == "write"


# ----------------------------------------------------------------- DCQCN
def test_cnp_cuts_rate_and_recovery_restores_it():
    cluster, (nic_a, qp_a, _), _ = _connected_pair()
    assert qp_a.rate == 1.0

    def cnp():
        return IbPacket(src_node=1, dst_node=0, nbytes=16, kind="cnp",
                        qpn=qp_a.qpn)

    nic_a.receive(cnp())
    # alpha pumped to 1, so the first cut halves the rate
    assert qp_a.rate == 0.5
    # a second CNP inside the reaction interval is ignored
    nic_a.receive(cnp())
    assert qp_a.rate == 0.5
    # quiet recovery periods add the rate back to line rate
    cluster.sim.run(until=5_000.0)
    assert qp_a.rate == 1.0
    assert qp_a.alpha < 1.0


def test_repeated_cnps_respect_min_rate_floor():
    opts = IbOptions(dcqcn_min_rate=0.25)
    cluster, (nic_a, qp_a, _), _ = _connected_pair(options=opts)
    for i in range(20):
        nic_a.receive(IbPacket(src_node=1, dst_node=0, nbytes=16, kind="cnp",
                               qpn=qp_a.qpn))
        # step past the reaction interval so every CNP is acted on
        cluster.sim.run(until=cluster.sim.now + opts.dcqcn_cnp_interval_us + 1)
    assert qp_a.rate == 0.25
