"""Cross-backend equivalence: the payload an application receives must be
byte-identical whether it rode Elan4, IB, or a heterogeneous stripe of
both — and any backend must be bit-reproducible under the same seed."""

import numpy as np

from repro.cluster import Cluster
from repro.ib.options import IbOptions
from tests.conftest import run_mpi_app

#: spans the eager fast path (<= 1984 on ib), the boundary, and rendezvous
SIZES = [1, 1024, 1984, 2048, 32768, 262144]


def _pattern(n):
    return (np.arange(n, dtype=np.uint32) * 31 + n).astype(np.uint8)


def _transfer(transports, ib=False, seed=3, ib_options=None):
    """Rank 0 streams one message per size at rank 1; returns
    ``(received bytes by size, sender finish time, cluster)``."""

    def app(mpi):
        if mpi.rank == 0:
            for i, n in enumerate(SIZES):
                buf = mpi.alloc(n)
                buf.write(_pattern(n))
                yield from mpi.comm_world.send(buf, dest=1, tag=i, nbytes=n)
            return mpi.now
        got = {}
        for i, n in enumerate(SIZES):
            data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=n)
            got[n] = data.tobytes()
        return got

    cluster = Cluster(nodes=2, seed=seed, ib_rail=ib, ib_options=ib_options)
    results, cluster = run_mpi_app(app, transports=transports, cluster=cluster)
    cluster.assert_no_drops()
    return results[1], results[0], cluster


def test_cross_backend_byte_equivalence():
    elan, _, _ = _transfer(("elan4",))
    ib, _, _ = _transfer(("ib",), ib=True)
    striped, _, _ = _transfer(("elan4", "ib"), ib=True)
    expected = {n: _pattern(n).tobytes() for n in SIZES}
    assert elan == expected
    assert ib == expected
    assert striped == expected


def test_roce_modes_deliver_identical_bytes():
    expected = {n: _pattern(n).tobytes() for n in SIZES}
    for opts in (
        IbOptions(mode="roce", pfc=True, ecn=True),
        IbOptions(mode="roce", pfc=False, ecn=False),
    ):
        got, _, _ = _transfer(("ib",), ib=True, ib_options=opts)
        assert got == expected


def test_striped_rerun_same_seed_is_bit_identical():
    got1, t1, _ = _transfer(("elan4", "ib"), ib=True, seed=11)
    got2, t2, _ = _transfer(("elan4", "ib"), ib=True, seed=11)
    assert got1 == got2
    assert t1 == t2  # same modelled finish time, to the bit


def test_ib_only_rerun_same_seed_is_bit_identical():
    got1, t1, c1 = _transfer(("ib",), ib=True, seed=4)
    got2, t2, c2 = _transfer(("ib",), ib=True, seed=4)
    assert got1 == got2 and t1 == t2
    assert c1.ib_fabrics[0].stats() == c2.ib_fabrics[0].stats()


def test_striping_actually_uses_both_rails():
    _, _, cluster = _transfer(("elan4", "ib"), ib=True)
    ib_stats = cluster.ib_fabrics[0].stats()
    assert ib_stats["packets_tx"] > 0  # traffic really rode the IB rail
    assert cluster.rail_fabrics[0].packets_delivered > 0  # ... and Elan4
