"""Shared helpers for the sanitizer tests.

These tests must work whether or not ``REPRO_SANITIZE=1`` is set: when it
is, the simulator auto-attaches a sanitizer at construction; when it is
not, the helpers attach one explicitly (and register the NICs the auto
path would have registered).
"""

from repro.analysis.sanitize import Sanitizer, attach
from repro.cluster import Cluster
from repro.sim.core import Simulator


def sanitized_sim() -> tuple:
    """A fresh simulator with a sanitizer attached (env-independent)."""
    sim = Simulator()
    san = sim.sanitizer if sim.sanitizer is not None else attach(sim)
    assert isinstance(san, Sanitizer)
    return sim, san


def sanitized_cluster(**kwargs) -> tuple:
    """A fresh cluster with a sanitizer attached and NICs registered."""
    cluster = Cluster(**kwargs)
    san = cluster.sim.sanitizer
    if san is None:
        san = attach(cluster.sim)
        for nic in cluster.nics:
            san.on_nic(nic)
    return cluster, san
