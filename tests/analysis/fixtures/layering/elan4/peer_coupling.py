"""Interconnect models are peers; coupling them is a sideways violation."""

import repro.tcpip.socket  # VIOLATION: elan4 (3) -> tcpip (3), sideways


def poke():
    return repro.tcpip.socket
