"""A deferred import hides from the import graph but not from the pass."""


def run_benchmark():
    from repro.bench import harness  # VIOLATION: core (4) -> bench (9)

    return harness


def undeclared():
    from repro.newpkg import thing  # VIOLATION: 'newpkg' not in the lattice

    return thing
