"""Negative cases: downward imports, TYPE_CHECKING, and same-package."""

from typing import TYPE_CHECKING

from repro.elan4 import nic  # downward: coll (7) -> elan4 (3), fine
from repro.coll import registry  # same package, fine

if TYPE_CHECKING:  # never executes: exempt even though it points upward
    from repro.cluster import Cluster


def poke():
    return nic, registry
