"""The kernel reaching up into a service layer — the classic inversion."""

from repro.coll import framework  # VIOLATION: sim (1) -> coll (7)


def poke():
    return framework
