"""Negative case: an intentional inversion with a reasoned suppression."""


def attach_debug_hook():
    from repro.analysis import sanitize  # repro-lint: allow[layering] -- fixture: opt-in debug hook

    return sanitize
