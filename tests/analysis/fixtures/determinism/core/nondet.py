"""Positive determinism cases (migrated PR 3 rules on the engine)."""

import random  # VIOLATION: the global random module itself
import time

import numpy as np


def stamp():
    return time.time()  # VIOLATION: wallclock


def jitter():
    return np.random.rand()  # VIOLATION: numpy's global legacy RNG


def drain(items):
    for item in set(items):  # VIOLATION: set iteration order
        yield item
