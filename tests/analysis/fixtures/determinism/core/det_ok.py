"""Negative determinism cases: modelled time and sorted iteration."""


def stamp(sim):
    return sim.now


def drain(items):
    for item in sorted(set(items)):
        yield item
