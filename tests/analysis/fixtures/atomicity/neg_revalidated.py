"""Negative atomicity cases: crossings that revalidate (or never cross)."""


class Engine:
    def revalidated(self):
        """Re-reading after the resume clears the staleness."""
        n = self.engine.pending
        yield self.sim.timeout(1)
        n = self.engine.pending  # fresh read: the write below is fine
        self.engine.pending = n - 1

    def same_side(self):
        """Read and write both happen before the suspension."""
        n = self.engine.pending
        self.engine.pending = n - 1
        yield self.sim.timeout(1)

    def compare_and_set(self):
        """The writing statement itself re-reads the location."""
        n = self.engine.pending
        yield self.sim.timeout(1)
        self.engine.pending = self.engine.pending - min(n, 1)
