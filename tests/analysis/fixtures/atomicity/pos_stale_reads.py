"""Positive atomicity cases: state read before a yield, used after.

The violation markers sit on the *write* statements — the pass anchors
its finding where the stale value is written back, and points at the
read line in the message.
"""


class Engine:
    def count_reset(self):
        """Fig. 5c/5d shape: read-modify-write spanning a suspension."""
        pending = self.engine.pending
        yield self.sim.timeout(1)
        self.engine.pending = pending - 1  # VIOLATION: stale write-back

    def stale_guard(self):
        """The stale value only guards the write — still a lost update."""
        armed = self.timer.armed
        yield self.sim.timeout(1)
        if armed:
            self.timer.armed = False  # VIOLATION: stale guard

    def stale_dict_get(self, key):
        """Reads through ``.get`` count too (per-peer sequence tables)."""
        seq = self.seqs.get(key, 0)
        yield self.sim.timeout(1)
        self.seqs[key] = seq + 1  # VIOLATION: table may have moved
