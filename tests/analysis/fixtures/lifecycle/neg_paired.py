"""Negative lifecycle cases: released, or ownership provably left."""

from repro.annotations import acquires, releases


class Pool:
    @acquires("send-buffer")
    def take(self):
        return object()

    @releases("send-buffer")
    def give_back(self, buf):
        del buf


def safe_finally(pool, codec):
    buf = pool.take()
    try:
        size = codec.frame_size()
    finally:
        pool.give_back(buf)
    return size


def transfer_by_return(pool):
    buf = pool.take()
    return buf  # caller owns it now


def transfer_by_store(pool, table, key):
    buf = pool.take()
    table[key] = buf  # the table owns it now
    return key
