"""Positive lifecycle cases: obligations that reach an exit alive."""

from repro.annotations import acquires, releases


class Pool:
    @acquires("send-buffer")
    def take(self):
        return object()

    @releases("send-buffer")
    def give_back(self, buf):
        del buf


class Nic:
    @acquires("pending-op")
    def track(self):
        pass

    @releases("pending-op")
    def untrack(self):
        pass


def leak_on_early_return(pool, flag):
    buf = pool.take()  # VIOLATION: the early return skips give_back
    if flag:
        return None
    pool.give_back(buf)
    return None


def leak_on_exception(pool, codec):
    buf = pool.take()  # VIOLATION: frame_size() raising strands buf
    size = codec.frame_size()
    pool.give_back(buf)
    return size


def counted_leak(nic, ok):
    nic.track()  # VIOLATION: the else path never untracks
    if ok:
        nic.untrack()
