"""Fixture-driven tests for the four engine passes.

Every fixture file marks the lines a pass must flag with a trailing
``# VIOLATION`` comment; files without markers are negative cases and
must produce no findings.  One generic harness drives all four passes so
a fixture can never silently drift out of sync with its expectations.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.passes import PASS_RUNNERS
from repro.analysis.engine.project import Project

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture directory name -> pass id it exercises
PASS_DIRS = {
    "atomicity": "atomicity",
    "lifecycle": "lifecycle",
    "layering": "layering",
    "determinism": "determinism",
}


def _marker_lines(path: Path) -> set:
    return {
        lineno
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if "# VIOLATION" in text
    }


def _run_pass_on_fixture_dir(dirname: str, pass_id: str):
    root = FIXTURES / dirname
    project = Project.load([root])
    findings = PASS_RUNNERS[pass_id](project)
    flagged = {}
    for f in findings:
        flagged.setdefault(f.path, set()).add(f.line)
    expected = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        expected[rel] = _marker_lines(path)
    return flagged, expected, findings


@pytest.mark.parametrize("dirname,pass_id", sorted(PASS_DIRS.items()))
def test_fixture_markers_match_findings(dirname, pass_id):
    flagged, expected, findings = _run_pass_on_fixture_dir(dirname, pass_id)
    for rel, want in sorted(expected.items()):
        got = flagged.get(rel, set())
        assert got == want, (
            f"{dirname}/{rel}: pass {pass_id!r} flagged lines {sorted(got)}, "
            f"fixture markers say {sorted(want)}; findings:\n"
            + "\n".join(f.format() for f in findings)
        )
    stray = set(flagged) - set(expected)
    assert not stray, f"findings outside the fixture tree: {stray}"


@pytest.mark.parametrize("dirname", sorted(PASS_DIRS))
def test_fixture_corpus_density(dirname):
    """ISSUE floor: >= 3 positive and >= 2 negative cases per pass."""
    root = FIXTURES / dirname
    positives = 0
    negative_files = 0
    for path in sorted(root.rglob("*.py")):
        markers = _marker_lines(path)
        if markers:
            positives += len(markers)
        else:
            negative_files += 1
    assert positives >= 3, f"{dirname}: only {positives} positive case(s)"
    assert negative_files >= 1, f"{dirname}: no negative fixture file"


def test_negative_cases_total():
    """Across each pass's corpus there are at least 2 distinct negative
    functions/sites (several live together in one neg file)."""
    for dirname in PASS_DIRS:
        root = FIXTURES / dirname
        clean_defs = 0
        for path in sorted(root.rglob("*.py")):
            if _marker_lines(path):
                continue
            text = path.read_text(encoding="utf-8")
            clean_defs += text.count("def ") + text.count("import ")
        assert clean_defs >= 2, f"{dirname}: fewer than 2 negative cases"


def test_atomicity_message_names_the_read():
    _, _, findings = _run_pass_on_fixture_dir("atomicity", "atomicity")
    assert any("suspension point" in f.message for f in findings)
    # the Fig. 5c/5d shape: the message points back at the stale read
    fig5 = [f for f in findings if "self.engine.pending" in f.message]
    assert fig5, "count-reset finding should name the stale location"
    assert all("read at line" in f.message for f in findings)


def test_lifecycle_reports_both_exit_routes():
    _, _, findings = _run_pass_on_fixture_dir("lifecycle", "lifecycle")
    msgs = " | ".join(f.message for f in findings)
    assert "via return" in msgs
    assert "via an exception" in msgs


def test_layering_unknown_package_is_its_own_error():
    _, _, findings = _run_pass_on_fixture_dir("layering", "layering")
    assert any("newpkg" in f.message for f in findings)
