"""The check CLI end to end: self-check, baseline workflow, exit codes,
suppression audit, and SARIF 2.1.0 emission."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine.check import main, run_analysis
from repro.analysis.engine.model import AnalysisFinding, Baseline, Severity
from repro.analysis.engine.project import Project
from repro.analysis.engine.sarif import (
    RULE_DESCRIPTIONS,
    SARIF_SUBSET_SCHEMA,
    to_sarif,
    validate,
)

REPO = Path(__file__).resolve().parents[2]
TREE = REPO / "src" / "repro"

LEAKY = """
    from repro.annotations import acquires, releases

    @acquires("send-buffer")
    def take(pool):
        return object()

    @releases("send-buffer")
    def give_back(pool, buf):
        pass

    def leaky(pool):
        buf = take(pool)
        return None
"""


def _write(tmp_path: Path, name: str, src: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(src), encoding="utf-8")
    return path


# -- the tentpole acceptance bar ---------------------------------------------
def test_shipped_tree_is_clean():
    """The committed tree passes its own analysis with zero findings and
    an empty baseline — the ISSUE's acceptance criterion."""
    project = Project.load([TREE])
    findings = run_analysis(project)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_shipped_baseline_is_empty():
    baseline = Baseline.load(REPO / "analysis-baseline.json")
    assert baseline.entries == {}


def test_shipped_suppressions_all_have_reasons():
    project = Project.load([TREE])
    for module in project.modules:
        assert module.suppressions.reasonless() == [], module.rel_path


# -- CLI exit codes -----------------------------------------------------------
def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    _write(tmp_path, "fine.py", "def f(sim):\n    return sim.now\n")
    assert main([str(tmp_path), "--baseline", str(tmp_path / "nope.json")]) == 2
    # a --baseline that doesn't exist is a usage error; without it: clean
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "clean: 0 findings" in out


def test_cli_findings_exit_one(tmp_path, capsys):
    _write(tmp_path, "leak.py", LEAKY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "lifecycle" in out
    assert "leak.py" in out


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_unknown_pass_exits_two(tmp_path, capsys):
    _write(tmp_path, "fine.py", "x = 1\n")
    assert main([str(tmp_path), "--passes", "frobnicate"]) == 2
    assert "unknown pass" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_DESCRIPTIONS:
        assert rule in out


# -- baseline workflow --------------------------------------------------------
def test_write_baseline_then_clean(tmp_path, capsys):
    _write(tmp_path, "leak.py", LEAKY)
    baseline = tmp_path / "baseline.json"
    assert main([str(tmp_path)]) == 1
    capsys.readouterr()

    assert (
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    data = json.loads(baseline.read_text())
    assert data["version"] == 1
    assert data["entries"], "baseline should carry the leak's fingerprint"
    capsys.readouterr()

    # baselined findings no longer fail the gate, and are counted
    assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_baseline_expires_when_code_changes(tmp_path):
    leak = _write(tmp_path, "leak.py", LEAKY)
    baseline = tmp_path / "baseline.json"
    main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
    # the offending line changes: the content-addressed fingerprint moves
    leak.write_text(
        leak.read_text().replace("buf = take(pool)", "buf2 = take(pool)")
    )
    assert main([str(tmp_path), "--baseline", str(baseline)]) == 1


def test_bad_baseline_version_exits_two(tmp_path, capsys):
    _write(tmp_path, "fine.py", "x = 1\n")
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "entries": {}}')
    assert main([str(tmp_path), "--baseline", str(bad)]) == 2
    assert "unsupported baseline version" in capsys.readouterr().err


# -- suppression audit --------------------------------------------------------
def test_reasonless_suppression_is_a_finding(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """
        import time

        def stamp():
            return time.time()  # repro-lint: allow[wallclock]
        """,
    )
    findings = run_analysis(Project.load([tmp_path]))
    rules = {f.rule for f in findings}
    # the reasonless directive suppresses nothing AND is itself reported
    assert "wallclock" in rules
    assert "suppression" in rules


def test_reasoned_suppression_silences_the_rule(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """
        import time

        def stamp():
            return time.time()  # repro-lint: allow[wallclock] -- speed harness
        """,
    )
    assert run_analysis(Project.load([tmp_path])) == []


# -- SARIF --------------------------------------------------------------------
def _finding(**kw):
    base = dict(
        pass_id="lifecycle",
        rule="lifecycle",
        path="src/repro/elan4/nic.py",
        line=10,
        col=4,
        message="leak",
        snippet="buf = take(pool)",
        severity=Severity.ERROR,
        function="f",
    )
    base.update(kw)
    return AnalysisFinding(**base)


def test_sarif_document_validates_against_schema():
    jsonschema = pytest.importorskip("jsonschema")
    doc = to_sarif([_finding(), _finding(rule="atomicity", line=0, col=0)], "1.0")
    jsonschema.validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)
    validate(doc)  # the library entry point agrees


def test_sarif_shape():
    finding = _finding()
    doc = to_sarif([finding], "1.2.3", baselined_fingerprints=[finding.fingerprint])
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(RULE_DESCRIPTIONS)
    result = run["results"][0]
    assert result["ruleId"] == "lifecycle"
    assert result["level"] == "error"
    assert result["properties"]["baselined"] is True
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/elan4/nic.py"
    assert loc["region"] == {"startLine": 10, "startColumn": 5}
    assert result["partialFingerprints"]["reproAnalysis/v1"] == finding.fingerprint


def test_cli_emits_sarif(tmp_path):
    _write(tmp_path, "leak.py", LEAKY)
    sarif_path = tmp_path / "out.sarif"
    assert main([str(tmp_path), "--sarif", str(sarif_path)]) == 1
    doc = json.loads(sarif_path.read_text())
    validate(doc)
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "lifecycle" for r in results)


def test_empty_sarif_still_validates():
    doc = to_sarif([], "1.0")
    validate(doc)
    assert doc["runs"][0]["results"] == []
