"""The event-race detector: a fire landing inside the host's non-atomic
count-reset window (Fig. 5c/5d) is reported; the safe orderings are not."""

import pytest

from tests.analysis.conftest import sanitized_cluster


def _armed_event(cluster):
    ctx = cluster.claim_context(0)
    ev = ctx.make_event(count=1)
    ev.attach_host_word()
    ev.fire()
    cluster.run()
    assert ev.triggers == 1
    return ev


@pytest.mark.sanitizer_expected
def test_racy_count_reset_caught():
    cluster, san = sanitized_cluster(nodes=2)
    ev = _armed_event(cluster)
    cfg = cluster.config
    t0 = cluster.sim.now
    window_open = t0 + cfg.context_switch_us + cfg.pio_write_us

    def host(t):
        yield from ev.host_reset_count(t, 1)

    cluster.nodes[0].spawn_thread(host)
    cluster.sim.schedule(window_open - t0 + 0.4 * cfg.pio_write_us, ev.fire)
    cluster.run()
    assert ev.lost_fires == 1  # the model lost the completion...
    races = [f for f in san.findings if f.detector == "race"]
    assert len(races) == 1  # ...and the sanitizer saw exactly that
    assert races[0].kind == "count-reset"
    assert "reset window" in races[0].message
    assert f"lost_fires={ev.lost_fires}" in races[0].message


def test_fire_outside_reset_window_is_clean():
    cluster, san = sanitized_cluster(nodes=2)
    ev = _armed_event(cluster)

    def host(t):
        yield from ev.host_reset_count(t, 1)

    cluster.nodes[0].spawn_thread(host)
    cluster.run()  # reset completes first
    ev.fire()
    cluster.run()
    assert ev.lost_fires == 0
    assert [f for f in san.findings if f.detector == "race"] == []
