"""Unit tests for the engine substrate: CFG, dataflow, registry, call graph."""

import ast
import textwrap

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.cfg import build_cfg, contains_yield
from repro.analysis.engine.dataflow import solve_forward
from repro.analysis.engine.project import Project
from repro.analysis.engine.registry import ResourceRegistry, call_method_and_tail


def _fn(src: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(src))
    assert isinstance(tree.body[0], ast.FunctionDef)
    return tree.body[0]


def _project_from_source(tmp_path, name, src):
    (tmp_path / name).write_text(textwrap.dedent(src))
    return Project.load([tmp_path])


# -- CFG ----------------------------------------------------------------------
def test_cfg_linear_reaches_exit():
    cfg = build_cfg(_fn("""
        def f(a):
            b = a + 1
            return b
    """))
    # return statement wired to EXIT, nothing to RAISE_EXIT except the BinOp
    ret = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Return)]
    assert len(ret) == 1
    assert cfg.exit in ret[0].succ


def test_cfg_exception_edge_to_raise_exit():
    cfg = build_cfg(_fn("""
        def f(codec):
            x = codec.parse()
            return x
    """))
    call = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Assign)][0]
    assert call.can_raise
    assert cfg.raise_exit in call.exc_succ


def test_cfg_catch_all_handler_absorbs_raises():
    cfg = build_cfg(_fn("""
        def f(codec):
            try:
                x = codec.parse()
            except Exception:
                x = None
            return x
    """))
    call = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Assign)][0]
    handler_entries = [n for n in cfg.nodes if n.kind == "except"]
    assert handler_entries and handler_entries[0] in call.exc_succ
    assert cfg.raise_exit not in call.exc_succ


def test_cfg_narrow_handler_still_unwinds():
    cfg = build_cfg(_fn("""
        def f(codec):
            try:
                x = codec.parse()
            except KeyError:
                x = None
            return x
    """))
    call = [
        n
        for n in cfg.stmt_nodes()
        if isinstance(n.stmt, ast.Assign) and n.can_raise
    ][0]
    # a KeyError handler might not catch: both routes must exist
    assert any(n.kind == "except" for n in call.exc_succ)
    assert cfg.raise_exit in call.exc_succ


def test_cfg_finally_on_both_routes():
    cfg = build_cfg(_fn("""
        def f(pool, codec):
            buf = pool.take()
            try:
                x = codec.parse()
            finally:
                pool.give_back(buf)
            return x
    """))
    parse = [
        n
        for n in cfg.stmt_nodes()
        if isinstance(n.stmt, ast.Assign) and "parse" in ast.unparse(n.stmt)
    ][0]
    finals = [
        n
        for n in cfg.nodes
        if n.stmt is not None and "give_back" in ast.unparse(n.stmt)
    ]
    assert finals, "finally body missing from the graph"
    assert any(f in parse.exc_succ for f in finals)


def test_cfg_yield_marks_node():
    fn = _fn("""
        def f(self):
            n = self.count
            yield self.sim.timeout(1)
            return n
    """)
    assert contains_yield(fn)
    cfg = build_cfg(fn)
    yields = [n for n in cfg.stmt_nodes() if n.is_yield]
    assert len(yields) == 1


def test_cfg_while_loop_back_edge():
    cfg = build_cfg(_fn("""
        def f(q):
            while q.pending:
                q.step()
            return q
    """))
    header = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.While)][0]
    body = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Expr)][0]
    assert header in body.succ  # back edge


# -- dataflow -----------------------------------------------------------------
def test_solver_union_join_over_branches():
    cfg = build_cfg(_fn("""
        def f(a):
            if a:
                x = 1
            else:
                y = 2
            return a
    """))

    def flow(node, facts):
        if node.stmt is not None and isinstance(node.stmt, ast.Assign):
            target = node.stmt.targets[0]
            assert isinstance(target, ast.Name)
            return frozenset(facts | {target.id})
        return facts

    facts_in = solve_forward(cfg, flow)
    # both branch facts meet at the return: may-analysis unions them
    ret = [n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Return)][0]
    assert facts_in[ret.index] == frozenset({"x", "y"})


def test_solver_exceptional_transfer_is_separate():
    cfg = build_cfg(_fn("""
        def f(codec):
            x = codec.parse()
            return x
    """))

    def flow(node, facts):
        if node.stmt is not None and isinstance(node.stmt, ast.Assign):
            return frozenset(facts | {"acquired"})
        return facts

    def flow_exc(node, facts):
        return facts  # the raise happened before the acquire completed

    facts_in = solve_forward(cfg, flow, flow_exc=flow_exc)
    assert "acquired" not in facts_in[cfg.raise_exit.index]
    assert "acquired" in facts_in[cfg.exit.index]


# -- registry -----------------------------------------------------------------
def test_call_method_and_tail_shapes():
    def call(src):
        node = ast.parse(src, mode="eval").body
        assert isinstance(node, ast.Call)
        return node

    assert call_method_and_tail(call("f()")) == ("f", None)
    assert call_method_and_tail(call("obj.m()")) == ("m", "obj")
    assert call_method_and_tail(call("self._send_bufs.get()")) == (
        "get",
        "_send_bufs",
    )
    assert call_method_and_tail(call("(a or b).m()")) == ("m", None)


def test_registry_unambiguous_name_matches(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        from repro.annotations import acquires, releases

        @acquires("qslot")
        def take_slot(q):
            return q

        @releases("qslot")
        def free_slot(q):
            pass
        """,
    )
    registry = ResourceRegistry.from_project(project)
    call = ast.parse("take_slot(q)", mode="eval").body
    assert registry.acquired_kinds(call) == ["qslot"]


def test_registry_ambiguous_name_vetoed(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        from repro.annotations import releases

        @releases("tracer-span")
        def span_end(key):
            pass

        def span_end(key):  # noqa: F811 - deliberate shadow
            pass
        """,
    )
    registry = ResourceRegistry.from_project(project)
    call = ast.parse("t.span_end(k)", mode="eval").body
    assert registry.effects_of_call(call) == []


def test_registry_generic_name_needs_pattern(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        from repro.annotations import acquires

        class Store:
            @acquires("send-buffer")
            def get(self):
                return object()
        """,
    )
    registry = ResourceRegistry.from_project(project)
    # bare generic name: no effect...
    plain = ast.parse("store.get()", mode="eval").body
    assert registry.effects_of_call(plain) == []
    # ...but the declared _send_bufs pattern matches by receiver tail
    tailed = ast.parse("self._send_bufs.get()", mode="eval").body
    assert registry.acquired_kinds(tailed) == ["send-buffer"]
    # and a dict .get with another receiver stays a dict read
    dicty = ast.parse("self._pending.get(ctx, 0)", mode="eval").body
    assert registry.effects_of_call(dicty) == []


# -- call graph ---------------------------------------------------------------
def test_callgraph_transitive_may_release(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        from repro.annotations import releases

        @releases("send-buffer")
        def recycle(buf):
            pass

        def helper(buf):
            recycle(buf)

        def outer(buf):
            helper(buf)
        """,
    )
    registry = ResourceRegistry.from_project(project)
    graph = CallGraph(project, registry)
    outer = project.functions_by_name["outer"][0]
    assert "send-buffer" in graph.may_release(outer)


def test_callgraph_cycle_terminates(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        from repro.annotations import releases

        @releases("qslot")
        def drop(q):
            pass

        def ping(q):
            pong(q)
            drop(q)

        def pong(q):
            ping(q)
        """,
    )
    registry = ResourceRegistry.from_project(project)
    graph = CallGraph(project, registry)
    pong = project.functions_by_name["pong"][0]
    assert "qslot" in graph.may_release(pong)


def test_callgraph_external_call_is_unresolved(tmp_path):
    project = _project_from_source(
        tmp_path,
        "mod.py",
        """
        def f(buf):
            return len(buf)
        """,
    )
    registry = ResourceRegistry.from_project(project)
    graph = CallGraph(project, registry)
    fn = project.functions_by_name["f"][0]
    call = [n for n in ast.walk(fn.node) if isinstance(n, ast.Call)][0]
    assert graph.call_may_release(call, "send-buffer") is None
