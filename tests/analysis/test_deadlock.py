"""The deadlock detector: join cycles and forever-blocked processes are
reported when the event queue drains; daemons and healthy runs are not."""

import pytest

from repro.sim.events import SimEvent

from tests.analysis.conftest import sanitized_sim


@pytest.mark.sanitizer_expected
def test_two_process_join_cycle_detected():
    sim, san = sanitized_sim()
    procs = {}

    def a_body():
        yield procs["b"]

    def b_body():
        yield procs["a"]

    procs["a"] = sim.spawn(a_body(), name="proc-a")
    procs["b"] = sim.spawn(b_body(), name="proc-b")
    sim.run()
    cycles = [f for f in san.findings if f.detector == "deadlock"]
    assert len(cycles) == 1
    assert cycles[0].kind == "wait-cycle"
    assert "[CYCLE]" in cycles[0].message
    assert "proc-a" in cycles[0].message and "proc-b" in cycles[0].message


@pytest.mark.sanitizer_expected
def test_blocked_on_never_fired_event_detected():
    sim, san = sanitized_sim()
    ev = SimEvent(sim, name="never")

    def waiter():
        yield ev

    sim.spawn(waiter(), name="stuck")
    sim.run()
    found = [f for f in san.findings if f.detector == "deadlock"]
    assert len(found) == 1
    assert found[0].kind == "blocked-at-drain"
    assert "stuck" in found[0].message and "never" in found[0].message


@pytest.mark.sanitizer_expected
def test_repeated_drains_report_once_per_blocked_set():
    sim, san = sanitized_sim()
    ev = SimEvent(sim, name="never")

    def waiter():
        yield ev

    sim.spawn(waiter(), name="stuck")
    sim.run()
    sim.schedule(1.0, lambda: None)  # unrelated activity, then drain again
    sim.run()
    assert len([f for f in san.findings if f.detector == "deadlock"]) == 1


def test_daemon_process_excluded():
    sim, san = sanitized_sim()
    ev = SimEvent(sim, name="external-input")

    def server():
        yield ev

    sim.spawn(server(), name="accept-loop", daemon=True)
    sim.run()
    assert san.findings == []


def test_clean_run_no_findings():
    sim, san = sanitized_sim()
    done = []

    def worker():
        yield sim.timeout(5.0)
        done.append(sim.now)

    sim.spawn(worker(), name="worker")
    sim.run()
    assert done == [5.0]
    assert san.findings == []
    assert san.teardown() == []
