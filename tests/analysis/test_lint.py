"""The determinism linter: each rule fires on its fixture, suppressions
require a justification, exempt modules stay exempt, and the real tree
under ``src/repro`` lints clean."""

from pathlib import Path

from repro.analysis.lint import RULES, lint_paths, lint_source, main

REPO = Path(__file__).resolve().parents[2]

#: a path that is neither the kernel nor the RNG home
MODEL_PATH = "src/repro/core/example.py"


def rules_of(source: str, path: str = MODEL_PATH):
    return [f.rule for f in lint_source(source, path)]


# ------------------------------------------------------------- wallclock
def test_time_time_flagged():
    assert rules_of("import time\nt = time.time()\n") == ["wallclock"]


def test_perf_counter_from_import_flagged():
    src = "from time import perf_counter\nx = perf_counter()\n"
    assert rules_of(src) == ["wallclock"]


def test_datetime_now_flagged():
    src = "import datetime\nd = datetime.datetime.now()\n"
    assert rules_of(src) == ["wallclock"]


def test_datetime_class_alias_flagged():
    src = "from datetime import datetime as dt\nd = dt.utcnow()\n"
    assert rules_of(src) == ["wallclock"]


def test_sim_now_is_fine():
    assert rules_of("t = sim.now\n") == []


def test_late_import_inside_function_still_binds():
    src = "def f():\n    import time\n    return time.monotonic()\n"
    assert rules_of(src) == ["wallclock"]


# ------------------------------------------------------------- random
def test_stdlib_random_import_flagged():
    assert rules_of("import random\n") == ["random"]


def test_random_import_ok_in_rng_home():
    assert rules_of("import random\n", path="src/repro/sim/rng.py") == []


def test_np_global_rng_flagged():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules_of(src) == ["random"]


def test_np_random_seed_flagged():
    src = "import numpy as np\nnp.random.seed(0)\n"
    assert rules_of(src) == ["random"]


def test_np_default_rng_unseeded_flagged_seeded_ok():
    bad = "import numpy as np\nr = np.random.default_rng()\n"
    good = "import numpy as np\nr = np.random.default_rng(42)\n"
    assert rules_of(bad) == ["random"]
    assert rules_of(good) == []


# ------------------------------------------------------------- set-iter
def test_for_over_set_literal_flagged():
    assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["set-iter"]


def test_for_over_set_union_flagged():
    assert rules_of("for x in a & {1, 2}:\n    pass\n") == ["set-iter"]


def test_comprehension_over_set_call_flagged():
    assert rules_of("ys = [x for x in set(items)]\n") == ["set-iter"]


def test_sorted_set_is_fine():
    assert rules_of("for x in sorted({1, 2, 3}):\n    pass\n") == []


# ------------------------------------------------------------- id-order
def test_id_call_flagged():
    assert rules_of("key = id(obj)\n") == ["id-order"]


# ------------------------------------------------------------- pool-escape
def test_pool_handle_consumed_flagged():
    assert rules_of("h = sim.schedule_pooled(0.0, fn, ())\n") == ["pool-escape"]


def test_pool_handle_discarded_ok():
    assert rules_of("sim.schedule_pooled(0.0, fn, ())\n") == []


def test_pool_handle_ok_inside_kernel():
    src = "h = self.schedule_pooled(0.0, fn, ())\n"
    assert rules_of(src, path="src/repro/sim/core.py") == []


# ------------------------------------------------------------- suppressions
def test_suppression_with_reason_honoured():
    src = (
        "import time\n"
        "t = time.time()  # repro-lint: allow[wallclock] -- harness timing\n"
    )
    assert rules_of(src) == []


def test_suppression_without_reason_rejected():
    src = "import time\nt = time.time()  # repro-lint: allow[wallclock]\n"
    assert rules_of(src) == ["wallclock"]


def test_suppression_only_covers_named_rule():
    src = "for x in {1}:\n    pass  # noqa\n"
    allow_wrong = (
        "for x in {1}:  # repro-lint: allow[wallclock] -- wrong rule\n"
        "    pass\n"
    )
    assert rules_of(src) == ["set-iter"]
    assert rules_of(allow_wrong) == ["set-iter"]


# ------------------------------------------------------------- whole tree
def test_src_repro_lints_clean():
    findings = lint_paths([str(REPO / "src" / "repro")])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main([str(bad)]) == 1
    assert "wallclock" in capsys.readouterr().out
    assert main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
