"""The resource-leak tracker: stranded QSLOTS, surviving MMU registrations
of a released context, and clean teardown after a proper finalize."""

import numpy as np
import pytest

from tests.analysis.conftest import sanitized_cluster


@pytest.mark.sanitizer_expected
def test_leaked_mmu_registration_caught():
    """Release a context's VPID without tearing down its translations —
    the §4.1 stale-descriptor hazard — and the probe reports it."""
    cluster, san = sanitized_cluster(nodes=2)
    ctx = cluster.claim_context(0)
    buf = ctx.space.alloc(4096)
    ctx.map_buffer(buf)
    cluster.run()
    cluster.capability.release(ctx.vpid)  # forgot mmu.unmap_context
    findings = san.teardown()
    leaks = [f for f in findings if f.kind == "mmu-registration"]
    assert len(leaks) == 1
    assert f"{ctx.ctx:#x}" in leaks[0].message


def test_finalized_context_is_clean():
    cluster, san = sanitized_cluster(nodes=2)
    ctx = cluster.claim_context(0)
    buf = ctx.space.alloc(4096)
    ctx.map_buffer(buf)
    ctx.create_queue(3, nslots=8)

    def body(t):
        yield from ctx.finalize(t)

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert san.teardown() == []


@pytest.mark.sanitizer_expected
def test_stranded_qslot_caught():
    """A delivery path that takes a slot and never frees it (the bug the
    qdma abort-path fix removed) violates the slot invariant."""
    cluster, san = sanitized_cluster(nodes=2)
    ctx = cluster.claim_context(0)
    q = ctx.create_queue(5, nslots=8)
    cluster.run()
    q.free_slots -= 1  # simulate an abort path that forgot its slot
    findings = san.teardown()
    leaks = [f for f in findings if f.kind == "qslot"]
    assert len(leaks) == 1
    assert "1 QSLOT(s) taken" in leaks[0].message


def test_queue_destroyed_mid_delivery_leaks_nothing():
    """Regression for the qdma abort-path fix: destroying the destination
    queue while a delivery is in flight must strand neither the slot nor
    the in-flight count."""
    cluster, san = sanitized_cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    q = b.create_queue(3, nslots=4)

    def sender(t):
        yield from a.qdma_send(t, b.vpid, 3, np.zeros(64, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    # destroy while the message is crossing (after issue, before enqueue)
    cluster.sim.schedule(cluster.config.pio_write_us + 1.0, q.destroy)
    cluster.run()
    assert q.destroyed
    leaks = [f for f in san.teardown() if f.detector == "leak"]
    assert leaks == [], "\n".join(f.format() for f in leaks)


def test_normal_qdma_traffic_is_clean():
    cluster, san = sanitized_cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    q = b.create_queue(3, nslots=4)
    got = []

    def sender(t):
        yield from a.qdma_send(t, b.vpid, 3, np.arange(16, dtype=np.uint8))

    def receiver(t):
        yield from t.block_on(q.host_event)
        while (m := q.poll()) is not None:
            got.append(m)

    cluster.nodes[0].spawn_thread(sender)
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()
    assert len(got) == 1
    assert san.teardown() == []
