"""Tests for MPI-2 dynamic process management over the full stack (§4.1).

These are the paper's headline capability claims: processes join the
Quadrics network at runtime with fresh contexts/VPIDs, communicate with
long-running peers, and ranks survive restarts while VPIDs do not —
none of which static libelan jobs can do.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import RteJob

FACTORY = make_mpi_stack_factory()


def run_world(cluster, parent_app, np_=2):
    job = RteJob(cluster, stack_factory=FACTORY)
    for r in range(np_):
        job.launch(r, parent_app, group="world", group_count=np_)
    return job.wait()


def test_spawn_and_exchange_with_children():
    cluster = Cluster(nodes=4)

    def child(mpi):
        parent = yield from mpi.get_parent()
        assert parent is not None
        data, st = yield from parent.recv(source=0, tag=1, nbytes=64)
        reply = bytes([mpi.rank * 10 + 1])
        yield from parent.send(reply, dest=st.source, tag=2)
        return ("child", mpi.rank, bytes(data))

    def parent(mpi):
        intercomm = yield from mpi.spawn([child, child])
        assert intercomm.remote_size == 2
        if mpi.rank == 0:
            for c in range(2):
                yield from intercomm.send(b"hi-child", dest=c, tag=1)
            replies = []
            for _ in range(2):
                data, st = yield from intercomm.recv(tag=2)
                replies.append((st.source, bytes(data)))
            return sorted(replies)
        return "parent-done"

    results = run_world(cluster, parent)
    assert results[1] == "parent-done"
    assert results[0] == [(0, bytes([21])), (1, bytes([31]))]
    assert results[2][0] == "child" and results[2][2] == b"hi-child"


def test_children_have_fresh_vpids_and_own_world():
    cluster = Cluster(nodes=4)
    info = {}

    def child(mpi):
        # children's comm_world is their spawn group
        info[("child", mpi.rank)] = (mpi.comm_world.size, mpi.comm_world.rank)
        yield from mpi.comm_world.barrier()
        parent = yield from mpi.get_parent()
        yield from parent.send(b"done", dest=0, tag=3)

    def parent(mpi):
        if mpi.rank == 0:
            pass
        intercomm = yield from mpi.spawn([child, child, child])
        if mpi.rank == 0:
            for _ in range(3):
                yield from intercomm.recv(tag=3)
        return mpi.comm_world.size

    results = run_world(cluster, parent)
    assert results[0] == 2  # parents' world unchanged
    child_worlds = [v for k, v in info.items() if k[0] == "child"]
    assert all(size == 3 for size, _ in child_worlds)
    assert sorted(r for _, r in child_worlds) == [0, 1, 2]


def test_get_parent_is_none_for_world_processes():
    cluster = Cluster(nodes=2)

    def app(mpi):
        parent = yield from mpi.get_parent()
        return parent is None

    results = run_world(cluster, app)
    assert all(results.values())


def test_spawned_process_claims_new_context():
    cluster = Cluster(nodes=2)
    vpids = []

    def child(mpi):
        vpids.append(("child", mpi.stack.pml.modules[0].ctx.vpid))
        parent = yield from mpi.get_parent()
        yield from parent.send(b"x", dest=0, tag=9)

    def parent(mpi):
        vpids.append(("parent", mpi.stack.pml.modules[0].ctx.vpid))
        intercomm = yield from mpi.spawn([child])
        if mpi.rank == 0:
            yield from intercomm.recv(tag=9)

    run_world(cluster, parent, np_=1)
    parent_vpids = {v for k, v in vpids if k == "parent"}
    child_vpids = {v for k, v in vpids if k == "child"}
    assert parent_vpids.isdisjoint(child_vpids)


def test_restarted_rank_communicates_with_new_vpid():
    """Full-stack restart: rank 1 leaves (drained), restarts, and talks to
    rank 0 again — through a different VPID, same rank."""
    cluster = Cluster(nodes=2)
    vpids = {}

    def long_lived(mpi):
        # first incarnation's message
        d1, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=8)
        return int(d1[0])

    def sender_v1(mpi):
        vpids["v1"] = mpi.stack.pml.modules[0].ctx.vpid
        yield from mpi.comm_world.send(bytes([1]), dest=1, tag=1)

    job = RteJob(cluster, stack_factory=FACTORY)
    job.launch(0, sender_v1, group="world", group_count=2)
    job.launch(1, long_lived, group="world", group_count=2)
    results = job.wait()
    assert results[1] == 1

    # restart BOTH as a second-generation pair under the same ranks
    def sender_v2(mpi):
        vpids["v2"] = mpi.stack.pml.modules[0].ctx.vpid
        yield from mpi.comm_world.send(bytes([2]), dest=1, tag=1)

    job.launch(0, sender_v2, group="gen2", group_count=2)
    job.launch(1, long_lived, group="gen2", group_count=2)
    results = job.wait()
    assert results[1] == 2
    assert vpids["v2"] != vpids["v1"]


def test_released_vpid_cannot_be_addressed():
    """After a clean finalize, a stale send to the dead VPID fails loudly
    (never silently lands in recycled memory)."""
    from repro.elan4.capability import CapabilityError

    cluster = Cluster(nodes=2)
    holder = {}

    def app(mpi):
        holder[mpi.rank] = mpi.stack.pml.modules[0].ctx.vpid
        yield from mpi.comm_world.barrier()

    run_world(cluster, app)
    with pytest.raises(CapabilityError):
        cluster.capability.resolve(holder[1])
