"""Tests for derived communicators and MPI datatypes."""

import numpy as np
import pytest

from repro.mpi import Contiguous, Datatype, Indexed, MPI_BYTE, MPI_DOUBLE, MPI_INT32, Vector
from tests.conftest import run_mpi_app


# ----------------------------------------------------------- communicators
def test_dup_isolates_traffic():
    """Same (source, tag) on comm_world and a dup'd comm must not cross."""

    def app(mpi):
        dup = mpi.comm_world.dup()
        assert dup.ctx_id != mpi.comm_world.ctx_id
        if mpi.rank == 0:
            a = mpi.alloc(8); a.fill(1)
            b = mpi.alloc(8); b.fill(2)
            yield from mpi.comm_world.send(a, dest=1, tag=7)
            yield from dup.send(b, dest=1, tag=7)
        else:
            # receive from the dup FIRST: must get the dup message (2)
            d_dup, _ = yield from dup.recv(source=0, tag=7, nbytes=8)
            d_w, _ = yield from mpi.comm_world.recv(source=0, tag=7, nbytes=8)
            return (int(d_dup[0]), int(d_w[0]))

    results, _ = run_mpi_app(app)
    assert results[1] == (2, 1)


def test_dup_derives_same_ctx_on_all_ranks():
    ctxs = {}

    def app(mpi):
        dup = mpi.comm_world.dup()
        ctxs[mpi.rank] = dup.ctx_id
        yield from dup.barrier()

    run_mpi_app(app, nodes=4, np_=4)
    assert len(set(ctxs.values())) == 1


def test_split_by_parity():
    def app(mpi):
        sub = yield from mpi.comm_world.split(color=mpi.rank % 2, key=mpi.rank)
        total = yield from sub.allreduce(np.array([mpi.rank], dtype=np.int64))
        return (sub.rank, sub.size, int(total[0]))

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    assert results[0] == (0, 2, 0 + 2)
    assert results[1] == (0, 2, 1 + 3)
    assert results[2] == (1, 2, 0 + 2)
    assert results[3] == (1, 2, 1 + 3)


def test_split_key_reorders_ranks():
    def app(mpi):
        # reverse order via descending keys
        sub = yield from mpi.comm_world.split(color=0, key=-mpi.rank)
        return sub.rank

    results, _ = run_mpi_app(app, nodes=3, np_=3)
    assert results == {0: 2, 1: 1, 2: 0}


def test_comm_rank_translation():
    def app(mpi):
        sub = yield from mpi.comm_world.split(color=0 if mpi.rank < 2 else 1)
        if mpi.rank >= 2:
            return None
        other = 1 - sub.rank
        if sub.rank == 0:
            yield from sub.send(b"x", dest=other, tag=1)
        else:
            data, st = yield from sub.recv(source=other, tag=1, nbytes=8)
            return st.source

    results, _ = run_mpi_app(app, nodes=3, np_=3)
    assert results[1] == 0  # communicator-local source rank


# ---------------------------------------------------------------- datatypes
def test_base_type_roundtrip():
    dt = MPI_INT32
    src = np.arange(40, dtype=np.uint8)
    packed = dt.pack(src, count=10)
    assert np.array_equal(packed, src)
    out = np.zeros(40, dtype=np.uint8)
    dt.unpack(packed, 10, out)
    assert np.array_equal(out, src)


def test_contiguous_coalesces_blocks():
    dt = Contiguous(5, MPI_DOUBLE)
    assert dt.size == 40
    assert dt.extent == 40
    assert dt.blocks() == [(0, 40)]  # one memcpy, not five


def test_vector_strided_pack_unpack():
    # a 4x4 byte matrix; pick column 0 as vector(count=4, blocklen=1, stride=4)
    dt = Vector(4, 1, 4, MPI_BYTE)
    mat = np.arange(16, dtype=np.uint8)
    packed = dt.pack(mat, count=1)
    assert list(packed) == [0, 4, 8, 12]
    out = np.zeros(16, dtype=np.uint8)
    dt.unpack(packed, 1, out)
    assert list(out[[0, 4, 8, 12]]) == [0, 4, 8, 12]
    assert out.sum() == 0 + 4 + 8 + 12  # gaps untouched


def test_vector_validation():
    with pytest.raises(ValueError):
        Vector(4, 8, 4, MPI_BYTE)  # blocklen > stride


def test_indexed_type():
    dt = Indexed([2, 1], [0, 5], MPI_BYTE)
    data = np.arange(8, dtype=np.uint8)
    packed = dt.pack(data, count=1)
    assert list(packed) == [0, 1, 5]
    assert dt.size == 3
    assert dt.extent == 6


def test_indexed_validation():
    with pytest.raises(ValueError):
        Indexed([1, 2], [0], MPI_BYTE)


def test_noncontiguous_pack_costs_more():
    from repro.config import default_config

    cfg = default_config()
    contig = Contiguous(16, MPI_BYTE)
    strided = Vector(16, 1, 2, MPI_BYTE)
    assert strided.pack_cost_us(1, cfg) > contig.pack_cost_us(1, cfg)


def test_datatype_over_the_wire():
    """Send a strided column, receive and unpack it — datatypes + transport."""
    dt = Vector(8, 1, 8, MPI_BYTE)  # column 0 of an 8x8 matrix

    def app(mpi):
        if mpi.rank == 0:
            mat = np.arange(64, dtype=np.uint8)
            packed = dt.pack(mat, count=1)
            yield from mpi.comm_world.send(packed.tobytes(), dest=1, tag=1)
        else:
            data, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=8)
            out = np.zeros(64, dtype=np.uint8)
            dt.unpack(np.frombuffer(data.tobytes(), dtype=np.uint8), 1, out)
            return [int(out[i * 8]) for i in range(8)]

    results, _ = run_mpi_app(app)
    assert results[1] == [0, 8, 16, 24, 32, 40, 48, 56]
