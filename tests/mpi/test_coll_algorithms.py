"""Cross-algorithm equivalence: every registered collective algorithm must
produce byte-identical results to the naive reference, at every comm size
and message size — including the NIC-offloaded (hw) algorithms, which run
here on healthy fabrics and therefore must not degrade.

uint8 wraparound arithmetic is exactly associative and commutative, so
reduction results are byte-comparable regardless of the combine order an
algorithm uses.
"""

import numpy as np
import pytest

from repro.coll import algorithms_for
from repro.coll import framework
from tests.conftest import run_mpi_app

COMM_SIZES = [2, 3, 4, 7, 8]
MSG_SIZES = [0, 1, 2048, 65536, 1 << 20]
#: n in-flight chunks per rank make big alltoall points disproportionately
#: slow to simulate; cap the per-destination chunk (matches the tuner)
ALLTOALL_CAP = 65536


def _rank_bytes(rank: int, size: int) -> bytes:
    """Deterministic per-rank payload, distinct across ranks."""
    if size == 0:
        return b""
    return np.arange(size, dtype=np.uint64).astype(np.uint8).tobytes()[:size][:-1] + bytes([rank + 1])


def _rank_array(rank: int, size: int) -> np.ndarray:
    rng = np.random.default_rng(1000 * rank + size)
    return rng.integers(0, 256, size, dtype=np.uint8)


@pytest.mark.parametrize("np_", COMM_SIZES)
@pytest.mark.parametrize("size", MSG_SIZES)
def test_all_algorithms_match_reference(np_, size):
    """One simulated job per (comm size, msg size) sweep point runs every
    registered algorithm of every op and checks the result against the
    numpy-computed expectation (== the naive reference's output)."""
    n = np_
    a2a_size = min(size, ALLTOALL_CAP)
    rs_elems = (size // n) * n  # reduce_scatter needs len % n == 0

    # expectations, computed once outside the sim
    arrays = [_rank_array(r, size) for r in range(n)]
    expect_allreduce = arrays[0].copy()
    for a in arrays[1:]:
        expect_allreduce = expect_allreduce + a  # uint8 wraparound
    rs_arrays = [_rank_array(r, rs_elems) for r in range(n)]
    expect_rs_full = rs_arrays[0].copy()
    for a in rs_arrays[1:]:
        expect_rs_full = expect_rs_full + a
    block = rs_elems // n
    a2a_chunks = {
        r: [bytes([r]) + _rank_bytes(dst, a2a_size)[1:] if a2a_size else b""
            for dst in range(n)]
        for r in range(n)
    }

    algs = {op: [a.name for a in algorithms_for(op)]
            for op in ("barrier", "bcast", "allreduce", "alltoall",
                       "reduce_scatter")}

    def app(mpi):
        comm = mpi.comm_world
        me = comm.rank
        failures = []
        # align ranks so wire-up is globally complete before any hw gate
        yield from framework.run_named(comm, "barrier", "dissemination")

        for name in algs["barrier"]:
            yield from framework.run_named(comm, "barrier", name)

        for name in algs["bcast"]:
            for root in (0, n - 1):
                payload = _rank_bytes(root, size)
                data = payload if me == root else None
                out = yield from framework.run_named(
                    comm, "bcast", name, data=data, root=root
                )
                if bytes(out) != payload:
                    failures.append(f"bcast/{name} root={root}")

        for name in algs["allreduce"]:
            out = yield from framework.run_named(
                comm, "allreduce", name, array=arrays[me], op="sum"
            )
            if not np.array_equal(np.asarray(out, dtype=np.uint8),
                                  expect_allreduce):
                failures.append(f"allreduce/{name}")

        for name in algs["alltoall"]:
            out = yield from framework.run_named(
                comm, "alltoall", name, chunks=a2a_chunks[me]
            )
            expect = [a2a_chunks[src][me] for src in range(n)]
            if [bytes(c) for c in out] != expect:
                failures.append(f"alltoall/{name}")

        for name in algs["reduce_scatter"]:
            out = yield from framework.run_named(
                comm, "reduce_scatter", name, array=rs_arrays[me], op="sum"
            )
            expect = expect_rs_full[me * block: (me + 1) * block]
            if not np.array_equal(np.asarray(out, dtype=np.uint8), expect):
                failures.append(f"reduce_scatter/{name}")

        return failures

    results, cluster = run_mpi_app(app, nodes=n, np_=n)
    cluster.assert_no_drops()
    all_failures = {r: f for r, f in results.items() if f}
    assert not all_failures, all_failures
    # healthy fabric + static cohort: the hw algorithms must have run as hw
    assert cluster.coll_hw.hw_fallbacks == 0
