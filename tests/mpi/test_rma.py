"""Tests for MPI-2 one-sided communication (RMA) over RDMA."""

import numpy as np
import pytest

from repro.mpi.communicator import MpiError
from repro.mpi.rma import win_create
from tests.conftest import run_mpi_app


def test_put_lands_after_fence():
    def app(mpi):
        buf = mpi.alloc(256)
        win = yield from win_create(mpi, buf)
        if mpi.rank == 0:
            payload = np.full(256, 7, dtype=np.uint8)
            yield from win.put(payload, target=1)
        yield from win.fence()
        return int(buf.read()[0])

    results, cluster = run_mpi_app(app)
    assert results[1] == 7
    assert results[0] == 0  # own window untouched
    cluster.assert_no_drops()


def test_get_pulls_remote_data():
    def app(mpi):
        buf = mpi.alloc(128)
        buf.fill(mpi.rank + 10)
        win = yield from win_create(mpi, buf)
        yield from win.fence()  # expose epoch
        out = mpi.alloc(128)
        if mpi.rank == 0:
            yield from win.get(out, target=1)
        yield from win.fence()
        return int(out.read()[0]) if mpi.rank == 0 else None

    results, _ = run_mpi_app(app)
    assert results[0] == 11


def test_put_at_offset():
    def app(mpi):
        buf = mpi.alloc(64)
        win = yield from win_create(mpi, buf)
        if mpi.rank == 0:
            yield from win.put(np.full(8, 5, dtype=np.uint8), target=1, offset=32)
        yield from win.fence()
        if mpi.rank == 1:
            data = buf.read()
            return (int(data[31]), int(data[32]), int(data[40]))

    results, _ = run_mpi_app(app)
    assert results[1] == (0, 5, 0)


def test_many_puts_one_fence():
    def app(mpi):
        buf = mpi.alloc(1024)
        win = yield from win_create(mpi, buf)
        if mpi.rank == 0:
            for i in range(8):
                yield from win.put(
                    np.full(128, i + 1, dtype=np.uint8), target=1, offset=i * 128
                )
        yield from win.fence()
        if mpi.rank == 1:
            return [int(buf.read()[i * 128]) for i in range(8)]

    results, _ = run_mpi_app(app)
    assert results[1] == [1, 2, 3, 4, 5, 6, 7, 8]


def test_all_ranks_put_concurrently():
    """Each rank writes its slot in every peer's window — a halo pattern."""

    def app(mpi):
        n = mpi.size
        buf = mpi.alloc(n)
        win = yield from win_create(mpi, buf)
        for peer in range(n):
            if peer != mpi.rank:
                yield from win.put(
                    bytes([mpi.rank + 1]), target=peer, offset=mpi.rank, nbytes=1
                )
        yield from win.fence()
        return [int(b) for b in buf.read()]

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    for rank, window in results.items():
        expected = [(r + 1 if r != rank else 0) for r in range(4)]
        assert window == expected


def test_large_put_integrity():
    n = 300_000
    payload = np.random.default_rng(5).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        buf = mpi.alloc(n)
        win = yield from win_create(mpi, buf)
        if mpi.rank == 0:
            src = mpi.alloc(n)
            src.write(payload)
            yield from win.put(src, target=1)
        yield from win.fence()
        if mpi.rank == 1:
            return bool(np.array_equal(buf.read(), payload))

    results, _ = run_mpi_app(app)
    assert results[1] is True


def test_bounds_checked():
    def app(mpi):
        buf = mpi.alloc(64)
        win = yield from win_create(mpi, buf)
        if mpi.rank == 0:
            with pytest.raises(MpiError, match="outside"):
                yield from win.put(np.zeros(32, np.uint8), target=1, offset=48)
            with pytest.raises(MpiError, match="outside"):
                yield from win.put(np.zeros(8, np.uint8), target=1, offset=-1)
        yield from win.fence()

    run_mpi_app(app)


def test_different_window_sizes_allowed():
    def app(mpi):
        buf = mpi.alloc(64 if mpi.rank == 0 else 256)
        win = yield from win_create(mpi, buf)
        assert win.target(0)["size"] == 64
        assert win.target(1)["size"] == 256
        if mpi.rank == 1:
            yield from win.put(np.full(64, 3, dtype=np.uint8), target=0)
            with pytest.raises(MpiError):
                yield from win.put(np.zeros(65, np.uint8), target=0)
        yield from win.fence()
        if mpi.rank == 0:
            return int(buf.read()[63])

    results, _ = run_mpi_app(app)
    assert results[0] == 3


def test_freed_window_rejects_use():
    def app(mpi):
        buf = mpi.alloc(16)
        win = yield from win_create(mpi, buf)
        yield from win.free()
        with pytest.raises(MpiError, match="freed"):
            yield from win.put(b"x", target=0)
        return True

    results, _ = run_mpi_app(app)
    assert all(results.values())


def test_invalid_target_rank():
    def app(mpi):
        buf = mpi.alloc(16)
        win = yield from win_create(mpi, buf)
        with pytest.raises(MpiError):
            win.target(99)
        yield from win.fence()

    run_mpi_app(app)
