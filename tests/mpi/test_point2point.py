"""MPI point-to-point semantics: wildcards, status, ordering, truncation."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.conftest import run_mpi_app


def test_status_reports_source_tag_length():
    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(10)
            yield from mpi.comm_world.send(buf, dest=1, tag=42)
        else:
            data, st = yield from mpi.comm_world.recv(
                source=ANY_SOURCE, tag=ANY_TAG, nbytes=100
            )
            return (st.source, st.tag, st.nbytes)

    results, _ = run_mpi_app(app)
    assert results[1] == (0, 42, 10)


def test_any_source_matches_first_arrival():
    def app(mpi):
        if mpi.rank == 2:
            sources = []
            for _ in range(2):
                data, st = yield from mpi.comm_world.recv(
                    source=ANY_SOURCE, tag=1, nbytes=16
                )
                sources.append(st.source)
            return sorted(sources)
        else:
            if mpi.rank == 1:
                yield from mpi.thread.sleep(100.0)
            buf = mpi.alloc(16)
            yield from mpi.comm_world.send(buf, dest=2, tag=1)

    results, _ = run_mpi_app(app, nodes=3, np_=3)
    assert results[2] == [0, 1]


def test_tag_selectivity():
    """A receive for tag B must not consume an earlier tag-A message."""

    def app(mpi):
        if mpi.rank == 0:
            a = mpi.alloc(8); a.fill(1)
            b = mpi.alloc(8); b.fill(2)
            yield from mpi.comm_world.send(a, dest=1, tag=100)
            yield from mpi.comm_world.send(b, dest=1, tag=200)
        else:
            data_b, _ = yield from mpi.comm_world.recv(source=0, tag=200, nbytes=8)
            data_a, _ = yield from mpi.comm_world.recv(source=0, tag=100, nbytes=8)
            return (int(data_a[0]), int(data_b[0]))

    results, _ = run_mpi_app(app)
    assert results[1] == (1, 2)


def test_same_tag_messages_arrive_in_send_order():
    def app(mpi):
        if mpi.rank == 0:
            for i in range(8):
                buf = mpi.alloc(8)
                buf.fill(i)
                yield from mpi.comm_world.send(buf, dest=1, tag=0)
        else:
            out = []
            for _ in range(8):
                data, _ = yield from mpi.comm_world.recv(source=0, tag=0, nbytes=8)
                out.append(int(data[0]))
            return out

    results, _ = run_mpi_app(app)
    assert results[1] == list(range(8))


def test_truncation_shorter_recv_buffer():
    """An incoming message longer than the posted buffer delivers only the
    posted length (our model truncates rather than erroring)."""

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(100)
            buf.fill(7)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
        else:
            data, st = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=40)
            return (st.nbytes, int(data[-1]))

    results, _ = run_mpi_app(app)
    assert results[1] == (40, 7)


def test_isend_irecv_overlap():
    """Both sides post nonblocking ops first, then wait — no deadlock even
    when both send large (rendezvous) messages simultaneously."""
    n = 100_000

    def app(mpi):
        other = 1 - mpi.rank
        sbuf = mpi.alloc(n)
        sbuf.fill(mpi.rank + 1)
        rreq = yield from mpi.comm_world.irecv(n, source=other, tag=0)
        sreq = yield from mpi.comm_world.isend(sbuf, dest=other, tag=0)
        yield from mpi.waitall([sreq, rreq])
        got = rreq.transport["user_buffer"].read()
        return int(got[0])

    results, _ = run_mpi_app(app)
    assert results == {0: 2, 1: 1}


def test_sends_from_bytes_and_ndarray():
    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.comm_world.send(b"hello-bytes", dest=1, tag=1)
            yield from mpi.comm_world.send(np.arange(5, dtype=np.uint8), dest=1, tag=2)
        else:
            d1, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)
            d2, _ = yield from mpi.comm_world.recv(source=0, tag=2, nbytes=64)
            return (bytes(d1), list(d2))

    results, _ = run_mpi_app(app)
    assert results[1] == (b"hello-bytes", [0, 1, 2, 3, 4])


def test_test_polls_without_blocking():
    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.thread.sleep(100.0)
            buf = mpi.alloc(8)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
        else:
            req = yield from mpi.comm_world.irecv(8, source=0, tag=1)
            polls = 0
            while not mpi.test(req):
                polls += 1
                yield from mpi.progress()
                yield from mpi.thread.sleep(10.0)
            return polls > 0

    results, _ = run_mpi_app(app)
    assert results[1] is True


def test_invalid_rank_rejected():
    from repro.mpi import MpiError

    def app(mpi):
        if mpi.rank == 0:
            with pytest.raises(MpiError):
                yield from mpi.comm_world.send(b"x", dest=99, tag=0)
        yield mpi.sim.timeout(0)

    run_mpi_app(app)
