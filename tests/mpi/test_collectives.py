"""Tests for the collective component (software algorithms over p2p)."""

import numpy as np
import pytest

from tests.conftest import run_mpi_app


@pytest.mark.parametrize("np_", [1, 2, 3, 4, 8])
def test_barrier_synchronizes(np_):
    """After a barrier, every rank has passed the point where the slowest
    rank entered it."""
    entered = {}
    exited = {}

    def app(mpi):
        yield from mpi.thread.sleep(mpi.rank * 50.0)  # staggered arrival
        entered[mpi.rank] = mpi.now
        yield from mpi.comm_world.barrier()
        exited[mpi.rank] = mpi.now

    run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    latest_entry = max(entered.values())
    for r, t in exited.items():
        assert t >= latest_entry


@pytest.mark.parametrize("np_", [2, 3, 4, 7, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_payload(np_, root):
    payload = bytes(range(256)) * 4

    def app(mpi):
        data = yield from mpi.comm_world.bcast(
            payload if mpi.rank == root else None, root=root
        )
        return data == payload

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    assert all(results.values())


def test_bcast_large_message():
    payload = np.random.default_rng(0).integers(0, 256, 300_000, dtype=np.uint8).tobytes()

    def app(mpi):
        data = yield from mpi.comm_world.bcast(payload if mpi.rank == 0 else None)
        return data == payload

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    assert all(results.values())


@pytest.mark.parametrize("op,expect", [("sum", 0 + 1 + 2 + 3), ("max", 3), ("min", 0), ("prod", 0)])
def test_reduce_ops(op, expect):
    def app(mpi):
        arr = np.full(16, mpi.rank, dtype=np.int64)
        out = yield from mpi.comm_world.reduce(arr, op=op, root=0)
        if mpi.rank == 0:
            return int(out[0])
        assert out is None

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    assert results[0] == expect


@pytest.mark.parametrize("np_", [2, 4, 8])  # powers of two: recursive doubling
def test_allreduce_power_of_two(np_):
    def app(mpi):
        arr = np.full(8, mpi.rank + 1, dtype=np.float64)
        out = yield from mpi.comm_world.allreduce(arr, op="sum")
        return float(out[0])

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    expect = sum(range(1, np_ + 1))
    assert all(v == expect for v in results.values())


def test_allreduce_non_power_of_two_falls_back():
    def app(mpi):
        arr = np.array([mpi.rank], dtype=np.int64)
        out = yield from mpi.comm_world.allreduce(arr, op="max")
        return int(out[0])

    results, _ = run_mpi_app(app, nodes=3, np_=3)
    assert all(v == 2 for v in results.values())


def test_gather_collects_in_rank_order():
    def app(mpi):
        out = yield from mpi.comm_world.gather(bytes([mpi.rank] * (mpi.rank + 1)), root=0)
        if mpi.rank == 0:
            return [list(b) for b in out]

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    assert results[0] == [[0], [1, 1], [2, 2, 2], [3, 3, 3, 3]]


def test_scatter_distributes():
    def app(mpi):
        chunks = [bytes([10 + r]) for r in range(mpi.size)] if mpi.rank == 0 else None
        mine = yield from mpi.comm_world.scatter(chunks, root=0)
        return list(mine)

    results, _ = run_mpi_app(app, nodes=4, np_=4)
    assert results == {r: [10 + r] for r in range(4)}


def test_scatter_requires_chunks_at_root():
    from repro.mpi import MpiError

    def app(mpi):
        if mpi.rank == 0:
            with pytest.raises(MpiError):
                yield from mpi.comm_world.scatter([b"x"], root=0)  # wrong count
        yield mpi.sim.timeout(0)

    run_mpi_app(app)


@pytest.mark.parametrize("np_", [2, 3, 4, 8])
def test_allgather_everyone_sees_everything(np_):
    def app(mpi):
        blocks = yield from mpi.comm_world.allgather(bytes([mpi.rank]))
        return [b[0] for b in blocks]

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    assert all(v == list(range(np_)) for v in results.values())


@pytest.mark.parametrize("np_", [2, 3, 4])
def test_alltoall_personalized_exchange(np_):
    def app(mpi):
        chunks = [bytes([mpi.rank * 10 + dst]) for dst in range(mpi.size)]
        out = yield from mpi.comm_world.alltoall(chunks)
        return [b[0] for b in out]

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    for r, got in results.items():
        assert got == [src * 10 + r for src in range(np_)]


def test_collectives_compose_with_p2p_traffic():
    """Collective tags must not collide with user tags."""

    def app(mpi):
        other = 1 - mpi.rank
        req = yield from mpi.comm_world.irecv(8, source=other, tag=5)
        sbuf = mpi.alloc(8)
        sbuf.fill(mpi.rank)
        sreq = yield from mpi.comm_world.isend(sbuf, dest=other, tag=5)
        yield from mpi.comm_world.barrier()
        yield from mpi.waitall([req, sreq])
        return int(req.transport["user_buffer"].read()[0])

    results, _ = run_mpi_app(app)
    assert results == {0: 1, 1: 0}
