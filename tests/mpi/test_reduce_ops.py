"""Every reduce operation must match NumPy on int and float arrays, both
through the naive reference reduction and through the framework-routed
allreduce algorithms."""

from functools import reduce as _functools_reduce

import numpy as np
import pytest

from repro.coll import framework
from repro.mpi.collective import _OPS
from tests.conftest import run_mpi_app

#: bitwise ops are integer-only (numpy raises on floats, as MPI forbids
#: MPI_BAND on MPI_DOUBLE)
INT_ONLY = {"band", "bor", "bxor"}

ALL_OPS = sorted(_OPS)


def _rank_values(rank: int, dtype) -> np.ndarray:
    rng = np.random.default_rng(77 + rank)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(0, 64, 16).astype(dtype)
    # floats: keep values exactly representable so any combine order
    # produces the same bits (sums of small multiples of 1/8)
    return (rng.integers(-16, 17, 16) / 8.0).astype(dtype)


def _expected(op: str, arrays):
    fn = _OPS[op]
    return _functools_reduce(fn, arrays[1:], arrays[0].copy())


@pytest.mark.parametrize("op", ALL_OPS)
@pytest.mark.parametrize("dtype", [np.int64, np.float64],
                         ids=["int64", "float64"])
def test_op_matches_numpy(op, dtype):
    if op in INT_ONLY and not np.issubdtype(dtype, np.integer):
        pytest.skip("bitwise ops are integer-only")
    n = 4
    arrays = [_rank_values(r, dtype) for r in range(n)]
    expect = _expected(op, arrays)

    def app(mpi):
        comm = mpi.comm_world
        mine = arrays[comm.rank]
        out_reduce = yield from comm.reduce(mine, op=op, root=0)
        out_all = yield from comm.allreduce(mine, op=op)
        ok = np.array_equal(out_all, expect) and out_all.dtype == expect.dtype
        if comm.rank == 0:
            ok = ok and np.array_equal(out_reduce, expect)
        return bool(ok)

    results, _ = run_mpi_app(app, nodes=n, np_=n)
    assert all(results.values()), results


@pytest.mark.parametrize("op", ALL_OPS)
def test_op_matches_numpy_via_ring_allreduce(op):
    """The ring (Rabenseifner) algorithm combines in a different order than
    recursive doubling; integer ops are exactly associative so both must
    agree with the functools reference bit-for-bit."""
    n = 3
    arrays = [_rank_values(r, np.int32) for r in range(n)]
    expect = _expected(op, arrays)

    def app(mpi):
        comm = mpi.comm_world
        out = yield from framework.run_named(
            comm, "allreduce", "ring", array=arrays[comm.rank], op=op
        )
        return bool(np.array_equal(out, expect) and out.dtype == expect.dtype)

    results, _ = run_mpi_app(app, nodes=n, np_=n)
    assert all(results.values()), results


def test_logical_ops_keep_dtype():
    """land/lor must return the operand dtype, not numpy bool."""
    a = np.array([0, 2, 0, 5], dtype=np.int64)
    b = np.array([3, 0, 0, 7], dtype=np.int64)
    assert _OPS["land"](a, b).dtype == np.int64
    assert _OPS["lor"](a, b).dtype == np.int64
    assert list(_OPS["land"](a, b)) == [0, 0, 0, 1]
    assert list(_OPS["lor"](a, b)) == [1, 1, 0, 1]


def test_unknown_op_rejected():
    from repro.mpi import MpiError
    from repro.mpi.collective import _op

    with pytest.raises(MpiError, match="unknown reduce op"):
        _op("xor")
