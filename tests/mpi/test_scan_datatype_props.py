"""Tests for scan/exscan/reduce_scatter and datatype property tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import Contiguous, Datatype, Indexed, MPI_BYTE, Vector
from repro.mpi.communicator import MpiError
from tests.conftest import run_mpi_app


# ------------------------------------------------------------------- scan
@pytest.mark.parametrize("np_", [1, 2, 3, 4, 8])
def test_scan_inclusive_prefix(np_):
    def app(mpi):
        arr = np.array([mpi.rank + 1], dtype=np.int64)
        out = yield from mpi.comm_world.scan(arr, op="sum")
        return int(out[0])

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    for r in range(np_):
        assert results[r] == sum(range(1, r + 2)), r


@pytest.mark.parametrize("np_", [2, 4, 5])
def test_exscan_exclusive_prefix(np_):
    def app(mpi):
        arr = np.array([mpi.rank + 1], dtype=np.int64)
        out = yield from mpi.comm_world.exscan(arr, op="sum")
        return None if out is None else int(out[0])

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    assert results[0] is None
    for r in range(1, np_):
        assert results[r] == sum(range(1, r + 1)), r


def test_scan_max_op():
    def app(mpi):
        vals = [3, 1, 4, 1, 5]
        arr = np.array([vals[mpi.rank]], dtype=np.int64)
        out = yield from mpi.comm_world.scan(arr, op="max")
        return int(out[0])

    results, _ = run_mpi_app(app, nodes=5, np_=5)
    assert [results[r] for r in range(5)] == [3, 3, 4, 4, 5]


@pytest.mark.parametrize("np_", [2, 4])
def test_reduce_scatter_blocks(np_):
    def app(mpi):
        n = mpi.size
        arr = np.arange(n * 4, dtype=np.int64) + mpi.rank
        out = yield from mpi.comm_world.reduce_scatter(arr, op="sum")
        return out.tolist()

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    base = np.arange(np_ * 4, dtype=np.int64)
    full = sum(base + r for r in range(np_))
    for r in range(np_):
        assert results[r] == full[r * 4 : (r + 1) * 4].tolist()


def test_reduce_scatter_validates_divisibility():
    def app(mpi):
        with pytest.raises(MpiError, match="divisible"):
            yield from mpi.comm_world.reduce_scatter(np.arange(3, dtype=np.int64))
        yield from mpi.comm_world.barrier()

    run_mpi_app(app)


# -------------------------------------------------------- datatype properties
@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(1, 6),
    blocklen=st.integers(1, 4),
    extra_stride=st.integers(0, 4),
    reps=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_property_vector_pack_unpack_roundtrip(count, blocklen, extra_stride, reps, seed):
    stride = blocklen + extra_stride
    dt = Vector(count, blocklen, stride, MPI_BYTE)
    total = dt.extent * reps
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 256, total, dtype=np.uint8)
    packed = dt.pack(src, reps)
    assert packed.nbytes == dt.size * reps
    out = np.zeros(total, dtype=np.uint8)
    dt.unpack(packed, reps, out)
    # every packed byte landed back at its source position
    repacked = dt.pack(out, reps)
    assert np.array_equal(repacked, packed)


@settings(max_examples=40, deadline=None)
@given(
    nblocks=st.integers(1, 5),
    data=st.data(),
)
def test_property_indexed_pack_selects_exactly_blocks(nblocks, data):
    # non-overlapping increasing blocks
    displs = []
    blocklens = []
    cursor = 0
    for _ in range(nblocks):
        cursor += data.draw(st.integers(0, 3))
        length = data.draw(st.integers(1, 4))
        displs.append(cursor)
        blocklens.append(length)
        cursor += length
    dt = Indexed(blocklens, displs, MPI_BYTE)
    src = np.arange(max(dt.extent, 1), dtype=np.uint8)
    packed = dt.pack(src, 1)
    expected = np.concatenate(
        [src[d : d + l] for d, l in sorted(zip(displs, blocklens))]
    )
    assert np.array_equal(packed, expected)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 64), size=st.integers(1, 8))
def test_property_contiguous_equals_base_repetition(n, size):
    base = Datatype(size, "blob")
    dt = Contiguous(n, base)
    assert dt.size == n * size
    assert dt.extent == n * size
    assert dt.blocks() == [(0, n * size)]  # always coalesces to one copy
