"""Tests for synchronous sends (Ssend/Issend), probe/iprobe, waitany."""

import numpy as np
import pytest

from repro.core.ptl.elan4.module import Elan4PtlOptions
from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.conftest import run_mpi_app


# ------------------------------------------------------------- Ssend/Issend
@pytest.mark.parametrize("scheme", ["read", "write"])
@pytest.mark.parametrize("n", [0, 4, 1024, 4096])
def test_ssend_completes_only_after_match(scheme, n):
    """MPI_Ssend must not complete while the receiver hasn't posted."""
    recv_delay = 300.0
    times = {}

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(max(n, 1))
            yield from mpi.comm_world.ssend(buf, dest=1, tag=1, nbytes=n)
            times["send_done"] = mpi.now
        else:
            yield from mpi.thread.sleep(recv_delay)
            times["posted"] = mpi.now
            yield from mpi.comm_world.recv(source=0, tag=1, nbytes=max(n, 1))

    results, cluster = run_mpi_app(
        app, elan4_options=Elan4PtlOptions(rdma_scheme=scheme)
    )
    assert times["send_done"] > times["posted"]
    cluster.assert_no_drops()


def test_regular_eager_send_completes_before_match():
    """Contrast: a standard small send completes buffered, pre-match."""
    times = {}

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(64)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
            times["send_done"] = mpi.now
        else:
            yield from mpi.thread.sleep(300.0)
            times["posted"] = mpi.now
            yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)

    run_mpi_app(app)
    assert times["send_done"] < times["posted"]


def test_ssend_data_integrity():
    n = 1500
    payload = np.random.default_rng(9).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            buf.write(payload)
            yield from mpi.comm_world.ssend(buf, dest=1, tag=1)
        else:
            data, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=n)
            return bool(np.array_equal(data, payload))

    results, _ = run_mpi_app(app)
    assert results[1] is True


def test_ssend_over_tcp():
    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.comm_world.ssend(b"sync-tcp", dest=1, tag=1)
            return "done"
        else:
            yield from mpi.thread.sleep(200.0)
            data, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)
            return bytes(data)

    results, _ = run_mpi_app(app, transports=("tcp",))
    assert results[1] == b"sync-tcp"


def test_issend_overlaps_with_work():
    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(64)
            req = yield from mpi.comm_world.issend(buf, dest=1, tag=1)
            assert not req.completed  # receiver hasn't posted yet
            yield from mpi.thread.sleep(50.0)  # overlapped "work"
            yield from mpi.wait(req)
            return req.completed
        else:
            yield from mpi.thread.sleep(100.0)
            yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)

    results, _ = run_mpi_app(app)
    assert results[0] is True


# ------------------------------------------------------------- probe/iprobe
def test_probe_reports_without_consuming():
    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(100)
            yield from mpi.comm_world.send(buf, dest=1, tag=42)
        else:
            st = yield from mpi.comm_world.probe(source=ANY_SOURCE, tag=ANY_TAG)
            assert (st.source, st.tag, st.nbytes) == (0, 42, 100)
            # still receivable afterwards
            data, st2 = yield from mpi.comm_world.recv(source=0, tag=42, nbytes=100)
            return st2.nbytes

    results, _ = run_mpi_app(app)
    assert results[1] == 100


def test_iprobe_nonblocking():
    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.thread.sleep(100.0)
            yield from mpi.comm_world.send(b"late", dest=1, tag=3)
        else:
            st = yield from mpi.comm_world.iprobe(source=0, tag=3)
            assert st is None  # nothing yet
            yield from mpi.thread.sleep(300.0)
            st = yield from mpi.comm_world.iprobe(source=0, tag=3)
            assert st is not None and st.nbytes == 4
            yield from mpi.comm_world.recv(source=0, tag=3, nbytes=8)
            return True

    results, _ = run_mpi_app(app)
    assert results[1] is True


def test_probe_then_alloc_exact_buffer():
    """The classic probe idiom: size an allocation from the status."""

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(777)
            buf.fill(1)
            yield from mpi.comm_world.send(buf, dest=1, tag=0)
        else:
            st = yield from mpi.comm_world.probe(source=0)
            data, _ = yield from mpi.comm_world.recv(
                source=0, tag=0, nbytes=st.nbytes
            )
            return len(data)

    results, _ = run_mpi_app(app)
    assert results[1] == 777


def test_probe_respects_tag_filter():
    def app(mpi):
        if mpi.rank == 0:
            a = mpi.alloc(8)
            yield from mpi.comm_world.send(a, dest=1, tag=1)
            yield from mpi.comm_world.send(a, dest=1, tag=2)
        else:
            st = yield from mpi.comm_world.probe(source=0, tag=2)
            assert st.tag == 2
            # tag-1 message still first in the unexpected queue
            d1, s1 = yield from mpi.comm_world.recv(source=0, tag=ANY_TAG, nbytes=8)
            assert s1.tag == 1
            yield from mpi.comm_world.recv(source=0, tag=2, nbytes=8)
            return True

    results, _ = run_mpi_app(app)
    assert results[1] is True


# ------------------------------------------------------------------ waitany
def test_waitany_returns_first_completion():
    def app(mpi):
        if mpi.rank == 0:
            for delay, tag in ((200.0, 1), (50.0, 2)):
                pass
            # send tag 2 quickly, tag 1 late
            buf = mpi.alloc(8)
            yield from mpi.thread.sleep(50.0)
            yield from mpi.comm_world.send(buf, dest=1, tag=2)
            yield from mpi.thread.sleep(200.0)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
        else:
            r1 = yield from mpi.comm_world.irecv(8, source=0, tag=1)
            r2 = yield from mpi.comm_world.irecv(8, source=0, tag=2)
            first = yield from mpi.comm_world.waitany([r1, r2])
            yield from mpi.waitall([r1, r2])
            return first

    results, _ = run_mpi_app(app)
    assert results[1] == 1  # index of the tag-2 request


def test_waitany_empty_list_rejected():
    from repro.core.pml.teg import PmlError

    def app(mpi):
        if mpi.rank == 0:
            with pytest.raises(PmlError):
                yield from mpi.comm_world.waitany([])
        yield mpi.sim.timeout(0)

    run_mpi_app(app)
