"""Tests for the Elite-4 switch model, fat-tree construction, and fabric."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import default_config
from repro.elan4.fattree import build_quaternary_fat_tree, leaf_name
from repro.elan4.network import Fabric, FabricError, Packet
from repro.elan4.switch import Elite4Switch


# ---------------------------------------------------------------- switches
def test_switch_port_wiring():
    sw = Elite4Switch("s")
    sw.connect(0, "nic:0")
    assert sw.port_of("nic:0") == 0
    assert sw.free_ports == 7


def test_switch_port_conflicts_rejected():
    sw = Elite4Switch("s")
    sw.connect(0, "nic:0")
    with pytest.raises(ValueError):
        sw.connect(0, "nic:1")
    with pytest.raises(ValueError):
        sw.connect(8, "nic:2")


# ---------------------------------------------------------------- topology
def test_paper_testbed_is_single_switch():
    topo = build_quaternary_fat_tree(8)
    assert len(topo.switches) == 1
    for a in range(8):
        for b in range(8):
            assert topo.hops(a, b) == (0 if a == b else 1)


def test_loopback_is_zero_hops():
    topo = build_quaternary_fat_tree(4)
    assert topo.hops(2, 2) == 0


def test_sixteen_leaves_two_tier():
    topo = build_quaternary_fat_tree(16)
    # within a quad: 1 switch; across quads: up to the next stage and down
    assert topo.hops(0, 1) == 1
    assert topo.hops(0, 5) == 3
    assert topo.n_leaves == 16
    assert topo.stages == 2


def test_topology_connected_for_various_sizes():
    import networkx as nx

    for n in (1, 2, 4, 8, 9, 16, 32, 64):
        topo = build_quaternary_fat_tree(n)
        assert nx.is_connected(topo.graph)
        assert len(topo.leaves) == n


def test_bad_leaf_count():
    with pytest.raises(ValueError):
        build_quaternary_fat_tree(0)


# ---------------------------------------------------------------- fabric
def _mini_cluster(n=2):
    return Cluster(nodes=n)


def test_fabric_delivers_packet_with_data():
    cluster = _mini_cluster()
    got = []
    cluster.nics[1]._dispatch["test"] = lambda pkt: got.append(pkt)
    payload = np.arange(64, dtype=np.uint8)
    pkt = Packet(src_node=0, dst_node=1, nbytes=64, kind="test", data=payload)
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    assert len(got) == 1
    assert np.array_equal(got[0].data, payload)
    assert cluster.fabric.packets_delivered == 1


def test_fabric_latency_model():
    cluster = _mini_cluster()
    cfg = cluster.config
    times = []
    cluster.nics[1]._dispatch["test"] = lambda pkt: times.append(cluster.sim.now)
    nbytes = 1024
    pkt = Packet(src_node=0, dst_node=1, nbytes=nbytes, kind="test")
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    expected = (nbytes + Fabric.FRAME_BYTES) * cfg.link_us_per_byte + (
        cfg.switch_hop_us + cfg.wire_prop_us
    )
    assert times[0] == pytest.approx(expected)


def test_fabric_preserves_pairwise_order():
    cluster = _mini_cluster()
    seen = []
    cluster.nics[1]._dispatch["test"] = lambda pkt: seen.append(pkt.meta["i"])

    def sender():
        for i in range(10):
            pkt = Packet(0, 1, 128, "test", meta={"i": i})
            yield from cluster.fabric.transmit(pkt)

    cluster.sim.spawn(sender())
    cluster.run()
    assert seen == list(range(10))


def test_fabric_tx_link_serializes():
    """Two packets injected simultaneously from one node serialize at the
    link; the second arrives one serialisation time later."""
    cluster = _mini_cluster()
    cfg = cluster.config
    times = {}
    cluster.nics[1]._dispatch["test"] = lambda pkt: times.setdefault(
        pkt.meta["i"], cluster.sim.now
    )
    n = 4096
    for i in range(2):
        pkt = Packet(0, 1, n, "test", meta={"i": i})
        cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    ser = (n + Fabric.FRAME_BYTES) * cfg.link_us_per_byte
    assert times[1] - times[0] == pytest.approx(ser)


def test_fabric_rejects_unattached_nodes():
    cluster = _mini_cluster()
    pkt = Packet(0, 7, 10, "test")
    gen = cluster.fabric.transmit(pkt)
    with pytest.raises(FabricError):
        next(gen)


def test_fabric_counts_switch_traffic():
    cluster = _mini_cluster(4)
    cluster.nics[1]._dispatch["test"] = lambda pkt: None
    pkt = Packet(0, 1, 16, "test")
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    assert sum(sw.packets_routed for sw in cluster.topology.switches.values()) == 1


def test_double_attach_rejected():
    cluster = _mini_cluster()
    with pytest.raises(FabricError):
        cluster.fabric.attach(cluster.nics[0])


def test_unknown_packet_kind_is_dropped_not_fatal():
    cluster = _mini_cluster()
    pkt = Packet(0, 1, 16, "bogus")
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    assert len(cluster.nics[1].dropped) == 1
    with pytest.raises(AssertionError):
        cluster.assert_no_drops()


# ---------------------------------------------------------- fault domains
def test_plane_redundant_wiring():
    """Above the leaf stage the tree is duplicated per plane: a 16-leaf
    tree carries its root switch twice (sw1.0 and sw1.0p1)."""
    topo = build_quaternary_fat_tree(16)
    assert {"sw1.0", "sw1.0p1"} <= set(topo.switches)
    # both planes give the same hop count: reroute never changes latency
    r = topo.route(0, 5)
    assert len(r) == 3 and r[1] in ("sw1.0", "sw1.0p1")


def test_reroute_around_dead_root_switch():
    """Killing the plane-0 root reroutes cross-quad traffic through the
    redundant plane — same hop count, traffic still delivered."""
    cluster = _mini_cluster(16)
    topo = cluster.topology
    assert topo.route(0, 5) == ["sw0.0", "sw1.0", "sw0.1"]
    topo.fail_switch("sw1.0")
    assert topo.route(0, 5) == ["sw0.0", "sw1.0p1", "sw0.1"]
    assert topo.reroutes == 1
    got = []
    cluster.nics[5]._dispatch["test"] = lambda pkt: got.append(pkt)
    cluster.sim.spawn(cluster.fabric.transmit(Packet(0, 5, 64, "test")))
    cluster.run()
    assert len(got) == 1
    assert cluster.fabric.packets_delivered == 1


def test_reroute_around_dead_link():
    cluster = _mini_cluster(16)
    topo = cluster.topology
    topo.fail_link("sw0.0", "sw1.0")
    got = []
    cluster.nics[5]._dispatch["test"] = lambda pkt: got.append(pkt)
    cluster.sim.spawn(cluster.fabric.transmit(Packet(0, 5, 64, "test")))
    cluster.run()
    assert len(got) == 1
    assert topo.route(0, 5)[1] == "sw1.0p1"


def test_restore_switch_heals_topology():
    topo = build_quaternary_fat_tree(16)
    topo.fail_switch("sw1.0")
    topo.fail_switch("sw1.0p1")
    assert topo.route(0, 5) is None  # both planes dead: partitioned
    topo.restore_switch("sw1.0")
    assert topo.route(0, 5) is not None
    assert not build_quaternary_fat_tree(16).faulty
    assert topo.faulty  # sw1.0p1 still down


def test_fail_unknown_link_rejected():
    topo = build_quaternary_fat_tree(16)
    with pytest.raises(KeyError):
        topo.fail_link(leaf_name(0), leaf_name(1))


def test_partition_raises_for_tracked_traffic():
    """A truly partitioned destination is a loud FabricError for traffic
    with no recovery story (neither droppable nor watchdog-covered)."""
    cluster = _mini_cluster(16)
    cluster.topology.fail_leaf(5)
    cluster.sim.spawn(cluster.fabric.transmit(Packet(0, 5, 64, "test")))
    with pytest.raises(FabricError, match="partitioned"):
        cluster.run()


def test_partition_silently_drops_recoverable_traffic():
    """Reliability-tracked (droppable) fragments vanish quietly when the
    fabric partitions — the §3 retransmission layer owns their recovery."""
    cluster = _mini_cluster(16)
    cluster.topology.fail_leaf(5)
    pkt = Packet(0, 5, 64, "test", meta={"droppable": True})
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    assert cluster.fabric.packets_unroutable == 1
    assert cluster.fabric.packets_delivered == 0


# ---------------------------------------------------------- route caching
def test_route_fast_memoizes_per_epoch():
    topo = build_quaternary_fat_tree(16)
    info = topo.route_fast(0, 5)
    assert info is topo.route_fast(0, 5)  # cached object, no recompute
    hops, switches = info
    assert hops == 3 == topo.hops(0, 5)
    assert [sw.name for sw in switches] == topo.route(0, 5)


def test_route_fast_invalidated_by_fault_and_repair():
    topo = build_quaternary_fat_tree(16)
    hops, switches = topo.route_fast(0, 5)
    middle = switches[1]  # the upper-stage switch on the route
    topo.fail_switch(middle.name)
    hops2, switches2 = topo.route_fast(0, 5)
    assert hops2 == hops  # redundant plane: same length
    assert middle not in switches2
    topo.restore_switch(middle.name)
    hops3, switches3 = topo.route_fast(0, 5)
    assert hops3 == hops
    assert middle.name not in {s.name for s in switches3} or True  # healthy again
    assert all(s.alive for s in switches3)


def test_route_fast_is_directional_but_consistent():
    topo = build_quaternary_fat_tree(16)
    _, fwd = topo.route_fast(0, 5)
    _, rev = topo.route_fast(5, 0)
    assert [s.name for s in rev] == [s.name for s in reversed(fwd)]


def test_route_fast_reports_partition_as_none():
    topo = build_quaternary_fat_tree(8)  # single QS-8A: no redundancy
    assert topo.route_fast(0, 1) is not None
    topo.fail_switch("sw0.0")
    assert topo.route_fast(0, 1) is None
