"""Tests for Elan hardware broadcast and the §4.1 global-address-space
restriction on dynamically joined processes."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.hwbcast import HWBCAST_QID, HwBcastError, make_group


def static_cluster(n=4):
    cluster = Cluster(nodes=n)
    ctxs = [cluster.claim_context(i) for i in range(n)]
    cluster.capability.seal_static_cohort()
    return cluster, ctxs


def drain_recv(cluster, queue, expected_total):
    """Poll a broadcast queue until ``expected_total`` payload bytes landed."""
    chunks = {}
    got = 0
    while got < expected_total:
        cluster.run()
        msg = queue.poll()
        if msg is None:
            continue
        chunks[msg.meta["offset"]] = msg.data
        got += msg.nbytes
    return np.concatenate([chunks[k] for k in sorted(chunks)])


def test_hwbcast_delivers_to_all_members():
    cluster, ctxs = static_cluster(4)
    group = make_group(ctxs)
    payload = np.random.default_rng(0).integers(0, 256, 512, dtype=np.uint8)

    def root(thread):
        yield from group.bcast(thread, ctxs[0], payload)

    cluster.nodes[0].spawn_thread(root)
    cluster.run()
    for ctx in ctxs:
        msg = group.queue_of(ctx).poll()
        assert msg is not None
        assert np.array_equal(msg.data, payload)
        assert msg.src_vpid == ctxs[0].vpid
    cluster.assert_no_drops()


def test_hwbcast_fragments_large_payload():
    cluster, ctxs = static_cluster(2)
    group = make_group(ctxs)
    n = 5000  # > 2 QSLOTS
    payload = np.random.default_rng(1).integers(0, 256, n, dtype=np.uint8)

    def root(thread):
        yield from group.bcast(thread, ctxs[0], payload)

    cluster.nodes[0].spawn_thread(root)
    cluster.run()
    for ctx in ctxs:
        data = drain_recv(cluster, group.queue_of(ctx), n)
        assert np.array_equal(data, payload)


def test_hwbcast_single_injection():
    """The hardware win: one injection regardless of group size."""
    cluster, ctxs = static_cluster(8)
    group = make_group(ctxs)

    def root(thread):
        yield from group.bcast(thread, ctxs[0], np.zeros(256, np.uint8))

    before = cluster.fabric.packets_delivered
    cluster.nodes[0].spawn_thread(root)
    cluster.run()
    # eight deliveries...
    assert cluster.fabric.packets_delivered - before == 8
    # ...from ONE source-link serialisation: all copies arrive together
    # (within a hop latency — the root's loopback copy skips the switch)
    arrivals = [group.queue_of(c).poll().arrived_at for c in ctxs]
    assert max(arrivals) - min(arrivals) < 0.2


def test_hwbcast_beats_software_tree():
    """Hardware broadcast latency is flat in group size; the software
    binomial tree grows with log2(n)."""
    import repro.bench  # noqa: F401  (ensures harness importable)

    def hw_latency(n):
        cluster, ctxs = static_cluster(n)
        group = make_group(ctxs)
        done = {}

        def root(thread):
            t0 = cluster.sim.now
            yield from group.bcast(thread, ctxs[0], np.zeros(1024, np.uint8))

        cluster.nodes[0].spawn_thread(root)
        cluster.run()
        return max(group.queue_of(c).poll().arrived_at for c in ctxs)

    assert hw_latency(8) < 1.3 * hw_latency(2)


def test_dynamic_joiner_refused():
    """§4.1: a process that joins after the cohort sealed has no global
    virtual address space — hardware broadcast must refuse it."""
    cluster, ctxs = static_cluster(2)
    late = cluster.claim_context(1)  # dynamic joiner
    with pytest.raises(HwBcastError, match="dynamically"):
        make_group(ctxs + [late])


def test_restarted_member_refused():
    """A restarted process has a fresh VPID outside the cohort, even though
    its rank survived — it cannot rejoin the hardware broadcast group."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    cluster.capability.seal_static_cohort()

    def leave(thread):
        yield from b.finalize(thread)

    cluster.nodes[1].spawn_thread(leave)
    cluster.run()
    b2 = cluster.claim_context(1)  # the restart: same node, new vpid
    with pytest.raises(HwBcastError):
        make_group([a, b2])


def test_cohort_seal_is_once():
    from repro.elan4.capability import CapabilityError

    cluster, _ = static_cluster(2)
    with pytest.raises(CapabilityError):
        cluster.capability.seal_static_cohort()


def test_group_validation():
    cluster, ctxs = static_cluster(2)
    with pytest.raises(HwBcastError, match="empty"):
        make_group([])
    group = make_group(ctxs)
    outsider = cluster.claim_context(0)

    def bad_root(thread):
        with pytest.raises(HwBcastError, match="not a group member"):
            yield from group.bcast(thread, outsider, b"x")

    cluster.nodes[0].spawn_thread(bad_root)
    cluster.run()


def test_groups_on_different_rails_rejected():
    cluster = Cluster(nodes=2, rails=2)
    a = cluster.claim_context(0, rail=0)
    b = cluster.claim_context(1, rail=1)
    cluster.rail_capabilities[0].seal_static_cohort()
    cluster.rail_capabilities[1].seal_static_cohort()
    with pytest.raises(HwBcastError, match="one rail"):
        make_group([a, b])
