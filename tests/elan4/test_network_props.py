"""Property tests for the fabric: FIFO per pair, conservation, loss bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.elan4.network import Packet


@settings(max_examples=30, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 4096)),
        min_size=1,
        max_size=25,
    )
)
def test_property_pairwise_fifo_under_any_schedule(schedule):
    """Whatever the interleaving of senders/sizes, each (src, dst) pair
    observes its packets in injection order."""
    cluster = Cluster(nodes=4)
    seen = {}
    for nic in cluster.nics:
        nic._dispatch["probe"] = lambda pkt, nic=nic: seen.setdefault(
            (pkt.src_node, nic.node_id), []
        ).append(pkt.meta["i"])
    expected = {}
    for i, (src, dst, size) in enumerate(schedule):
        if src == dst:
            continue
        expected.setdefault((src, dst), []).append(i)
        pkt = Packet(src, dst, size, "probe", meta={"i": i})
        cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    for pair, order in expected.items():
        assert seen.get(pair, []) == order
    delivered = sum(len(v) for v in seen.values())
    assert delivered == sum(len(v) for v in expected.values())


@settings(max_examples=20, deadline=None)
@given(
    n_packets=st.integers(5, 60),
    loss=st.floats(0.05, 0.6),
    seed=st.integers(0, 99),
)
def test_property_loss_conserves_packets(n_packets, loss, seed):
    """delivered + lost == sent, and only droppable packets are lost."""
    cluster = Cluster(nodes=2)
    cluster.fabric.set_loss(loss, seed=seed)
    got = []
    cluster.nics[1]._dispatch["probe"] = lambda pkt: got.append(pkt.meta["d"])

    def sender():
        for i in range(n_packets):
            droppable = i % 2 == 0
            pkt = Packet(0, 1, 64, "probe", meta={"d": droppable,
                                                  "droppable": droppable})
            yield from cluster.fabric.transmit(pkt)

    cluster.sim.spawn(sender())
    cluster.run()
    assert len(got) + cluster.fabric.packets_lost == n_packets
    # every non-droppable packet arrived (odd indices: n // 2 of them)
    assert sum(1 for d in got if not d) == n_packets // 2


def test_loss_rate_validation():
    from repro.elan4.network import FabricError

    cluster = Cluster(nodes=2)
    with pytest.raises(FabricError):
        cluster.fabric.set_loss(1.0)
    with pytest.raises(FabricError):
        cluster.fabric.set_loss(-0.1)
    cluster.fabric.set_loss(0.0)  # boundary: allowed


def test_loss_is_deterministic_per_seed():
    def run(seed):
        cluster = Cluster(nodes=2)
        cluster.fabric.set_loss(0.5, seed=seed)
        got = []
        cluster.nics[1]._dispatch["probe"] = lambda pkt: got.append(pkt.meta["i"])

        def sender():
            for i in range(40):
                pkt = Packet(0, 1, 16, "probe", meta={"i": i, "droppable": True})
                yield from cluster.fabric.transmit(pkt)

        cluster.sim.spawn(sender())
        cluster.run()
        return got

    assert run(7) == run(7)
    assert run(7) != run(8)


@settings(max_examples=15, deadline=None)
@given(dsts=st.sets(st.integers(0, 5), min_size=1, max_size=6))
def test_property_broadcast_reaches_exactly_the_listed_nodes(dsts):
    cluster = Cluster(nodes=6)
    got = set()
    for nic in cluster.nics:
        nic._dispatch["probe"] = lambda pkt, nic=nic: got.add(nic.node_id)

    def src():
        yield from cluster.fabric.broadcast(
            Packet(0, -1, 128, "probe"), sorted(dsts)
        )

    cluster.sim.spawn(src())
    cluster.run()
    assert got == set(dsts)
