"""Tests for the Elan4 NIC facade and context lifecycle details."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.capability import CapabilityError
from repro.elan4.network import Packet
from repro.elan4.nic import NicError
from repro.elan4.rdma import RdmaDescriptor


def test_context_node_mismatch_rejected():
    from repro.elan4.nic import Elan4Context

    cluster = Cluster(nodes=2)
    entry = cluster.capability.claim(0)
    with pytest.raises(NicError, match="cannot attach"):
        Elan4Context(cluster.nics[1], entry, cluster.nodes[1].new_address_space("x"))


def test_finalized_context_refuses_use():
    cluster = Cluster(nodes=2)
    ctx = cluster.claim_context(0)
    done = []

    def body(t):
        yield from ctx.finalize(t)
        done.append(True)
        with pytest.raises(NicError, match="finalized"):
            ctx.create_queue(0)
        with pytest.raises(NicError, match="finalized"):
            ctx.map_buffer(ctx.space.alloc(16))

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert done == [True]


def test_double_finalize_rejected():
    cluster = Cluster(nodes=2)
    ctx = cluster.claim_context(0)

    def body(t):
        yield from ctx.finalize(t)
        with pytest.raises(NicError):
            yield from ctx.finalize(t)

    cluster.nodes[0].spawn_thread(body)
    cluster.run()


def test_pending_underflow_guarded():
    cluster = Cluster(nodes=1)
    nic = cluster.nics[0]
    with pytest.raises(NicError, match="underflow"):
        nic.untrack_pending(0x400)


def test_drain_event_immediate_when_idle():
    cluster = Cluster(nodes=1)
    ev = cluster.nics[0].drain_event(0x400)
    assert ev.triggered


def test_chain_counter():
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    b.create_queue(0)
    src = a.space.alloc(8192)
    dst = b.space.alloc(8192)
    e4a, e4b = a.map_buffer(src), b.map_buffer(dst)

    def body(t):
        desc = RdmaDescriptor(op="write", local=e4a, remote=e4b, nbytes=8192,
                              remote_vpid=b.vpid, done=a.make_event())
        desc.done.chain(a.chained_qdma(b.vpid, 0, np.zeros(4, np.uint8)))
        yield from a.rdma_issue(t, desc)

    before = cluster.nics[0].chains_run
    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert cluster.nics[0].chains_run == before + 1


def test_broadcast_and_unicast_interleave_in_order():
    """A unicast injected before a broadcast from the same source must be
    delivered first at the shared destination (FIFO injection link)."""
    cluster = Cluster(nodes=3)
    order = []
    for nic in cluster.nics:
        nic._dispatch["probe"] = lambda pkt, nic=nic: order.append(
            (nic.node_id, pkt.meta["k"])
        )

    def src():
        yield from cluster.fabric.transmit(
            Packet(0, 1, 4096, "probe", meta={"k": "uni"})
        )
        yield from cluster.fabric.broadcast(
            Packet(0, -1, 64, "probe", meta={"k": "bc"}), [1, 2]
        )

    cluster.sim.spawn(src(), name="src")
    cluster.run()
    at_node1 = [k for n, k in order if n == 1]
    assert at_node1 == ["uni", "bc"]
    assert ("2", "bc") not in order  # node 2 got only the broadcast
    assert [k for n, k in order if n == 2] == ["bc"]


def test_cluster_rails_views_consistent():
    cluster = Cluster(nodes=2, rails=3)
    assert cluster.n_rails == 3
    assert cluster.fabric is cluster.rail_fabrics[0]
    assert cluster.nics == cluster.rail_nics[0]
    assert len({id(f) for f in cluster.rail_fabrics}) == 3
    # device keys: rail 0 plain, higher rails suffixed
    assert "elan4" in cluster.nodes[0].devices
    assert "elan4:1" in cluster.nodes[0].devices
    assert "elan4:2" in cluster.nodes[0].devices


def test_each_nic_has_its_own_pci_bridge():
    cluster = Cluster(nodes=1, rails=2)
    nic0 = cluster.rail_nics[0][0]
    nic1 = cluster.rail_nics[1][0]
    assert nic0.pci is not nic1.pci
    assert nic0.pci is not cluster.nodes[0].pci
