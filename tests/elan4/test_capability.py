"""Tests for the system-wide capability: dynamic claim/release of contexts
and the rank/VPID decoupling the paper's §4.1 requires."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elan4.capability import CapabilityError, ElanCapability


def test_claim_allocates_vpid_and_context():
    cap = ElanCapability(nodes=2, contexts_per_node=4)
    e = cap.claim(0)
    assert e.vpid == 0
    assert e.node_id == 0
    assert cap.resolve(0) == e
    assert cap.vpid_of(0, e.ctx) == 0


def test_vpids_monotone_across_nodes():
    cap = ElanCapability(nodes=3)
    vpids = [cap.claim(i % 3).vpid for i in range(6)]
    assert vpids == list(range(6))


def test_claim_specific_context():
    cap = ElanCapability(nodes=1, contexts_per_node=8, ctx_base=0x400)
    e = cap.claim(0, ctx=0x403)
    assert e.ctx == 0x403
    with pytest.raises(CapabilityError):
        cap.claim(0, ctx=0x403)  # already taken


def test_context_exhaustion():
    cap = ElanCapability(nodes=1, contexts_per_node=2)
    cap.claim(0)
    cap.claim(0)
    with pytest.raises(CapabilityError):
        cap.claim(0)


def test_release_recycles_context_not_vpid():
    """The heart of dynamic rejoin: the hardware context is reusable, the
    VPID never is — a restarted process gets a *new* network address."""
    cap = ElanCapability(nodes=1, contexts_per_node=1)
    e1 = cap.claim(0)
    cap.release(e1.vpid)
    e2 = cap.claim(0)
    assert e2.ctx == e1.ctx  # context recycled
    assert e2.vpid != e1.vpid  # vpid fresh
    with pytest.raises(CapabilityError, match="released"):
        cap.resolve(e1.vpid)


def test_double_release_rejected():
    cap = ElanCapability(nodes=1)
    e = cap.claim(0)
    cap.release(e.vpid)
    with pytest.raises(CapabilityError):
        cap.release(e.vpid)


def test_resolve_unknown_vpid():
    cap = ElanCapability(nodes=1)
    with pytest.raises(CapabilityError, match="unknown"):
        cap.resolve(99)


def test_claim_bad_node():
    cap = ElanCapability(nodes=2)
    with pytest.raises(CapabilityError):
        cap.claim(5)


def test_live_vpids_and_free_counts():
    cap = ElanCapability(nodes=1, contexts_per_node=4)
    a = cap.claim(0)
    b = cap.claim(0)
    assert cap.live_vpids == [a.vpid, b.vpid]
    assert cap.free_contexts(0) == 2
    cap.release(a.vpid)
    assert cap.live_vpids == [b.vpid]
    assert cap.free_contexts(0) == 3
    assert cap.is_live(b.vpid) and not cap.is_live(a.vpid)


def test_constructor_validation():
    with pytest.raises(CapabilityError):
        ElanCapability(nodes=0)
    with pytest.raises(CapabilityError):
        ElanCapability(nodes=1, contexts_per_node=0)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["claim", "release"]), st.integers(0, 2)), max_size=60))
def test_property_capability_invariants(ops):
    """Under any claim/release sequence: live VPIDs resolve consistently,
    released VPIDs never resolve, and free counts stay within bounds."""
    cap = ElanCapability(nodes=3, contexts_per_node=4)
    live = {}
    dead = []
    for op, node in ops:
        if op == "claim":
            try:
                e = cap.claim(node)
            except CapabilityError:
                assert cap.free_contexts(node) == 0
                continue
            live[e.vpid] = e
        elif live:
            vpid = sorted(live)[node % len(live)]
            cap.release(vpid)
            dead.append(vpid)
            del live[vpid]
    for vpid, e in live.items():
        assert cap.resolve(vpid) == e
    for vpid in dead:
        if vpid not in live:
            with pytest.raises(CapabilityError):
                cap.resolve(vpid)
    for n in range(3):
        assert 0 <= cap.free_contexts(n) <= 4
