"""Tests for queue-based DMA (QDMA)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.qdma import QdmaError


def pair():
    cluster = Cluster(nodes=2)
    src = cluster.claim_context(0)
    dst = cluster.claim_context(1)
    return cluster, src, dst


def test_qdma_delivers_payload():
    cluster, src, dst = pair()
    q = dst.create_queue(0, nslots=4)
    payload = np.arange(256, dtype=np.uint8)

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 0, payload)

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    cluster.assert_no_drops()
    msg = q.poll()
    assert msg is not None
    assert msg.src_vpid == src.vpid
    assert msg.nbytes == 256
    assert np.array_equal(msg.data, payload)
    assert q.poll() is None


def test_qdma_host_event_set_on_arrival_cleared_when_empty():
    cluster, src, dst = pair()
    q = dst.create_queue(0, nslots=4)

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 0, np.zeros(8, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert q.host_event.poll()
    assert q.poll() is not None
    assert not q.host_event.poll()


def test_qdma_rejects_oversized_message():
    cluster, src, dst = pair()
    dst.create_queue(0)
    big = np.zeros(cluster.config.qslot_bytes + 1, np.uint8)

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 0, big)

    cluster.nodes[0].spawn_thread(sender)
    with pytest.raises(QdmaError, match="QSLOT limit"):
        cluster.run()


def test_qdma_2kb_boundary_accepted():
    cluster, src, dst = pair()
    q = dst.create_queue(0)
    exact = np.full(cluster.config.qslot_bytes, 7, np.uint8)

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 0, exact)

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert q.poll().nbytes == cluster.config.qslot_bytes


def test_qdma_fifo_across_many_messages():
    cluster, src, dst = pair()
    q = dst.create_queue(0, nslots=64)

    def sender(t):
        for i in range(20):
            yield from src.qdma_send(t, dst.vpid, 0, np.full(16, i, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    got = []
    while (m := q.poll()) is not None:
        got.append(int(m.data[0]))
    assert got == list(range(20))


def test_qdma_overflow_buffered_until_slot_freed():
    """More in-flight messages than QSLOTS: extras wait in the NIC and are
    delivered as the host drains the queue — no loss."""
    cluster, src, dst = pair()
    q = dst.create_queue(0, nslots=2)

    def sender(t):
        for i in range(5):
            yield from src.qdma_send(t, dst.vpid, 0, np.full(16, i, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert q.pending() == 2  # only two slots' worth visible
    got = [int(q.poll().data[0]), int(q.poll().data[0])]
    cluster.run()  # freed slots admit the overflow
    while (m := q.poll()) is not None:
        got.append(int(m.data[0]))
        cluster.run()
    assert got == list(range(5))
    cluster.assert_no_drops()


def test_qdma_send_completion_event_fires():
    cluster, src, dst = pair()
    dst.create_queue(0)
    fired = []

    def sender(t):
        ev = yield from src.qdma_send(t, dst.vpid, 0, np.zeros(64, np.uint8))
        word = ev.attach_host_word()
        yield from t.block_on(word)
        fired.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert fired and fired[0] > 0


def test_qdma_to_unknown_queue_dropped():
    cluster, src, dst = pair()

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 9, np.zeros(8, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert len(cluster.nics[1].dropped) == 1


def test_qdma_meta_round_trips():
    cluster, src, dst = pair()
    q = dst.create_queue(0)

    def sender(t):
        yield from src.qdma_send(
            t, dst.vpid, 0, np.zeros(8, np.uint8), meta={"kind": "FIN", "msg": 42}
        )

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    msg = q.poll()
    assert msg.meta == {"kind": "FIN", "msg": 42}


def test_qdma_loopback_same_node():
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(0)  # second process on the same node
    q = b.create_queue(0)

    def sender(t):
        yield from a.qdma_send(t, b.vpid, 0, np.full(32, 9, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    msg = q.poll()
    assert msg is not None and (msg.data == 9).all()


def test_qdma_blocking_receive_with_interrupt():
    cluster, src, dst = pair()
    cfg = cluster.config
    q = dst.create_queue(0)
    q.arm_interrupt()
    recv_times = []

    def receiver(t):
        yield from t.block_on(q.host_event)
        recv_times.append(cluster.sim.now)
        assert q.poll() is not None

    def sender(t):
        yield from t.sleep(50.0)
        yield from src.qdma_send(t, dst.vpid, 0, np.zeros(16, np.uint8))

    cluster.nodes[1].spawn_thread(receiver)
    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    # the receiver can only have woken after the ≈10 µs interrupt latency
    assert recv_times[0] > 50.0 + cfg.interrupt_us
    assert cluster.nodes[1].interrupts_delivered == 1


def test_destroy_queue_then_send_drops():
    cluster, src, dst = pair()
    dst.create_queue(0)
    cluster.nics[1].qdma.destroy_queue(dst.ctx, 0)

    def sender(t):
        yield from src.qdma_send(t, dst.vpid, 0, np.zeros(8, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    assert len(cluster.nics[1].dropped) == 1


def test_duplicate_queue_id_rejected():
    cluster, _, dst = pair()
    dst.create_queue(0)
    with pytest.raises(QdmaError):
        dst.create_queue(0)
