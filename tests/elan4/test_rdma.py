"""Tests for RDMA read/write and chained completion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.elan4.rdma import CHUNK_BYTES, RdmaDescriptor, RdmaError


def pair(nbytes):
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    buf_a = a.space.alloc(nbytes)
    buf_b = b.space.alloc(nbytes)
    return cluster, a, b, buf_a, buf_b


def run_write(cluster, src_ctx, dst_vpid, local_e4, remote_e4, nbytes):
    done_times = []

    def issuer(t):
        desc = RdmaDescriptor(
            op="write", local=local_e4, remote=remote_e4, nbytes=nbytes,
            remote_vpid=dst_vpid,
        )
        ev = yield from src_ctx.rdma_issue(t, desc)
        word = ev.attach_host_word()
        yield from t.block_on(word)
        done_times.append(cluster.sim.now)

    cluster.nodes[src_ctx.entry.node_id].spawn_thread(issuer)
    cluster.run()
    return done_times


def test_rdma_write_moves_bytes():
    cluster, a, b, buf_a, buf_b = pair(1000)
    payload = np.random.default_rng(1).integers(0, 256, 1000, dtype=np.uint8)
    buf_a.write(payload)
    e4_a = a.map_buffer(buf_a)
    e4_b = b.map_buffer(buf_b)
    done = run_write(cluster, a, b.vpid, e4_a, e4_b, 1000)
    assert done
    assert np.array_equal(buf_b.read(), payload)
    cluster.assert_no_drops()


def test_rdma_write_large_multi_chunk():
    n = CHUNK_BYTES * 5 + 123
    cluster, a, b, buf_a, buf_b = pair(n)
    payload = np.random.default_rng(2).integers(0, 256, n, dtype=np.uint8)
    buf_a.write(payload)
    run_write(cluster, a, b.vpid, a.map_buffer(buf_a), b.map_buffer(buf_b), n)
    assert np.array_equal(buf_b.read(), payload)


def test_rdma_read_pulls_bytes():
    cluster, a, b, buf_a, buf_b = pair(2000)
    payload = np.random.default_rng(3).integers(0, 256, 2000, dtype=np.uint8)
    buf_b.write(payload)  # data lives at b; a reads it
    e4_a = a.map_buffer(buf_a)
    e4_b = b.map_buffer(buf_b)
    done = []

    def issuer(t):
        desc = RdmaDescriptor(op="read", local=e4_a, remote=e4_b, nbytes=2000,
                              remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(t, desc)
        yield from t.block_on(ev.attach_host_word())
        done.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert done
    assert np.array_equal(buf_a.read(), payload)


def test_rdma_read_completion_is_after_data_landed():
    """The read's done event must fire only once bytes are in host memory."""
    cluster, a, b, buf_a, buf_b = pair(512)
    buf_b.fill(5)
    e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)
    ok = []

    def issuer(t):
        desc = RdmaDescriptor(op="read", local=e4_a, remote=e4_b, nbytes=512,
                              remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(t, desc)
        yield from t.block_on(ev.attach_host_word())
        ok.append((buf_a.read() == 5).all())

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert ok == [True]


def test_rdma_write_faster_than_read_for_same_size():
    """A read needs an extra request crossing, so one-shot read latency
    exceeds one-shot write latency."""
    n = 4096

    def measure(op):
        cluster, a, b, buf_a, buf_b = pair(n)
        e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)
        t_done = []

        def issuer(t):
            desc = RdmaDescriptor(op=op, local=e4_a, remote=e4_b, nbytes=n,
                                  remote_vpid=b.vpid)
            ev = yield from a.rdma_issue(t, desc)
            yield from t.block_on(ev.attach_host_word())
            t_done.append(cluster.sim.now)

        cluster.nodes[0].spawn_thread(issuer)
        cluster.run()
        return t_done[0]

    assert measure("read") > measure("write")


def test_rdma_validates_descriptor():
    desc = RdmaDescriptor(op="bogus", local=None, remote=None, nbytes=10, remote_vpid=0)
    with pytest.raises(RdmaError):
        desc.validate()
    desc2 = RdmaDescriptor(op="read", local=None, remote=None, nbytes=0, remote_vpid=0)
    with pytest.raises(RdmaError):
        desc2.validate()


def test_rdma_chained_qdma_fin_arrives_after_data():
    """Fig. 3's key ordering property: a FIN chained to the RDMA-write
    completion must arrive at the receiver *after* the written data is
    visible."""
    cluster, a, b, buf_a, buf_b = pair(CHUNK_BYTES * 3)
    n = CHUNK_BYTES * 3
    buf_a.fill(0xAB)
    e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)
    q = b.create_queue(0)
    observations = []

    def issuer(t):
        desc = RdmaDescriptor(op="write", local=e4_a, remote=e4_b, nbytes=n,
                              remote_vpid=b.vpid)
        desc.done = a.make_event(name="wr")
        fin = a.chained_qdma(b.vpid, 0, np.zeros(8, np.uint8), meta={"kind": "FIN"})
        desc.done.chain(fin)
        yield from a.rdma_issue(t, desc)

    def receiver(t):
        yield from t.block_on(q.host_event)
        msg = q.poll()
        observations.append((msg.meta["kind"], bool((buf_b.read() == 0xAB).all())))

    cluster.nodes[0].spawn_thread(issuer)
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()
    assert observations == [("FIN", True)]
    assert cluster.nics[0].chains_run == 1


def test_rdma_pipelining_beats_store_and_forward():
    """Chunked pipelining: a large transfer should take far less than the
    sum of full PCI + wire + PCI passes."""
    n = 1 << 20  # 1 MB
    cluster, a, b, buf_a, buf_b = pair(n)
    cfg = cluster.config
    e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)
    t_done = []

    def issuer(t):
        desc = RdmaDescriptor(op="write", local=e4_a, remote=e4_b, nbytes=n,
                              remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(t, desc)
        yield from t.block_on(ev.attach_host_word())
        t_done.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    store_and_forward = 2 * n * cfg.pci_us_per_byte + n * cfg.link_us_per_byte
    assert t_done[0] < 0.8 * store_and_forward
    # effective bandwidth should approach the PCI-X ceiling
    bw_MBps = n / t_done[0]
    assert bw_MBps > 600


def test_mmu_trap_on_unmapped_rdma_target():
    cluster, a, b, buf_a, buf_b = pair(256)
    e4_a = a.map_buffer(buf_a)
    bogus_remote = b.map_buffer(buf_b)
    cluster.nics[1].mmu.unmap_context(b.ctx)  # simulate a vanished process

    def issuer(t):
        desc = RdmaDescriptor(op="write", local=e4_a, remote=bogus_remote,
                              nbytes=256, remote_vpid=b.vpid)
        yield from a.rdma_issue(t, desc)

    cluster.nodes[0].spawn_thread(issuer)
    from repro.elan4.addr import MmuTrap

    with pytest.raises(MmuTrap):
        cluster.run()


def test_pending_ops_tracking_and_drain():
    cluster, a, b, buf_a, buf_b = pair(CHUNK_BYTES * 8)
    n = CHUNK_BYTES * 8
    e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)
    drained = []

    def issuer(t):
        desc = RdmaDescriptor(op="write", local=e4_a, remote=e4_b, nbytes=n,
                              remote_vpid=b.vpid)
        yield from a.rdma_issue(t, desc)
        assert a.pending_ops() == 1
        yield from a.drain(t)
        assert a.pending_ops() == 0
        drained.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert drained


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 3 * CHUNK_BYTES), op=st.sampled_from(["read", "write"]))
def test_property_rdma_any_size_any_op_is_lossless(n, op):
    cluster, a, b, buf_a, buf_b = pair(n)
    rng = np.random.default_rng(n)
    payload = rng.integers(0, 256, n, dtype=np.uint8)
    src_buf, dst_buf = (buf_a, buf_b) if op == "write" else (buf_b, buf_a)
    src_buf.write(payload)
    e4_a, e4_b = a.map_buffer(buf_a), b.map_buffer(buf_b)

    def issuer(t):
        desc = RdmaDescriptor(op=op, local=e4_a, remote=e4_b, nbytes=n,
                              remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(t, desc)
        yield from t.block_on(ev.attach_host_word())

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert np.array_equal(dst_buf.read(), payload)
    cluster.assert_no_drops()
