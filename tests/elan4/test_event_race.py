"""Elan event semantics — count events, chaining, and the Fig. 5 race.

The paper's §4.3 argument: a count-1 Elan event *cannot* be safely re-armed
for the next batch of RDMA completions, because the host's reset of the
count races with NIC-side decrements; completions get lost.  The shared
completion queue (chained QDMA into a receive queue) avoids this by
construction.  These tests demonstrate both halves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.elan4.event import ChainOp, ElanEvent
from repro.elan4.rdma import RdmaDescriptor


def single():
    cluster = Cluster(nodes=2)
    return cluster, cluster.claim_context(0), cluster.claim_context(1)


# ------------------------------------------------------------- basic events
def test_event_triggers_at_zero_count():
    cluster, a, _ = single()
    ev = a.make_event(count=3)
    word = ev.attach_host_word()
    ev.fire()
    ev.fire()
    cluster.run()
    assert not word.poll()
    ev.fire()
    cluster.run()
    assert word.poll()
    assert ev.triggers == 1


def test_event_count_n_aggregates_n_completions():
    """Fig. 5b: one event with count N waits for N RDMA completions."""
    n_ops = 4
    cluster, a, b = single()
    bufs_a = [a.space.alloc(256) for _ in range(n_ops)]
    bufs_b = [b.space.alloc(256) for _ in range(n_ops)]
    agg = a.make_event(count=n_ops, name="agg")
    word = agg.attach_host_word()
    done_at = []

    def issuer(t):
        for i in range(n_ops):
            desc = RdmaDescriptor(
                op="write",
                local=a.map_buffer(bufs_a[i]),
                remote=b.map_buffer(bufs_b[i]),
                nbytes=256,
                remote_vpid=b.vpid,
                done=agg,
            )
            yield from a.rdma_issue(t, desc)
        yield from t.block_on(word)
        done_at.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert done_at and agg.fires == n_ops and agg.triggers == 1


def test_chain_runs_on_trigger():
    cluster, a, _ = single()
    ev = a.make_event(count=1)
    ran = []
    ev.chain(ChainOp("probe", lambda: ran.append(cluster.sim.now)))
    ev.fire()
    cluster.run()
    assert len(ran) == 1
    assert ran[0] == pytest.approx(cluster.config.nic_chain_us)


def test_interrupt_armed_event_pays_interrupt_latency():
    cluster, a, _ = single()
    cfg = cluster.config
    ev = a.make_event(count=1)
    word = ev.attach_host_word()
    ev.arm_interrupt()
    woke = []

    def waiter(t):
        yield from t.block_on(word)
        woke.append(cluster.sim.now)

    cluster.nodes[0].spawn_thread(waiter)
    cluster.sim.schedule(5.0, ev.fire)
    cluster.run()
    assert woke[0] >= 5.0 + cfg.interrupt_us


def test_polling_event_is_fast():
    cluster, a, _ = single()
    cfg = cluster.config
    ev = a.make_event(count=1)
    word = ev.attach_host_word()
    cluster.sim.schedule(5.0, ev.fire)
    cluster.run()
    assert word.poll()
    assert cluster.sim.now == pytest.approx(5.0 + cfg.nic_event_us)


def test_host_read_and_reset_count():
    cluster, a, _ = single()
    ev = a.make_event(count=1)
    out = []

    def body(t):
        c = yield from ev.host_read_count(t)
        out.append(c)
        yield from ev.host_reset_count(t, 1)
        out.append(ev.count)

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert out == [1, 1]


# ------------------------------------------------------------- the race
@pytest.mark.sanitizer_expected
def test_fig5_race_loses_completions():
    """Fig. 5c/5d: fires landing inside the host's read-modify-write window
    are obliterated; the event under-triggers and a waiter would hang."""
    cluster, a, _ = single()
    ev = a.make_event(count=1)
    ev.attach_host_word()

    def host(t):
        yield from ev.host_reset_count(t, 1)

    # first completion: normal trigger
    ev.fire()
    cluster.run()
    assert ev.triggers == 1
    # host re-arms; two more completions land inside the read-modify-write
    # window (which opens after the thread's dispatch + the read crossing)
    t0 = cluster.sim.now
    cfg = cluster.config
    window_open = t0 + cfg.context_switch_us + cfg.pio_write_us
    cluster.nodes[0].spawn_thread(host)
    cluster.sim.schedule(window_open - t0 + 0.3 * cfg.pio_write_us, ev.fire)
    cluster.sim.schedule(window_open - t0 + 0.6 * cfg.pio_write_us, ev.fire)
    cluster.run()
    # both fires were stomped by the reset write: count is back to 1 and the
    # event never re-triggered -> completions lost
    assert ev.lost_fires == 2
    assert ev.count == 1
    assert ev.triggers == 1  # still only the first trigger


def test_no_race_when_fires_outside_reset_window():
    cluster, a, _ = single()
    ev = a.make_event(count=1)
    ev.attach_host_word()
    ev.fire()
    cluster.run()

    def host(t):
        yield from ev.host_reset_count(t, 1)

    cluster.nodes[0].spawn_thread(host)
    cluster.run()
    ev.fire()  # after the reset completed
    cluster.run()
    assert ev.lost_fires == 0
    assert ev.triggers == 2


@settings(max_examples=40, deadline=None)
@given(fire_offsets=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=6))
def test_property_shared_completion_queue_never_loses_completions(fire_offsets):
    """The §4.3 design: chain a QDMA to every RDMA completion; however the
    completions land in time, the queue sees exactly one message each —
    no reset, no race, nothing lost."""
    cluster, a, b = single()
    comp_q = a.create_queue(7, nslots=64)  # the shared completion queue
    events = []
    for i, off in enumerate(fire_offsets):
        ev = a.make_event(count=1, name=f"rdma{i}")
        ev.chain(
            a.chained_qdma(a.vpid, 7, np.zeros(8, np.uint8), meta={"i": i})
        )
        events.append(ev)
        cluster.sim.schedule(off, ev.fire)
    cluster.run()
    got = []
    while (m := comp_q.poll()) is not None:
        got.append(m.meta["i"])
        cluster.run()
    assert sorted(got) == list(range(len(fire_offsets)))
    cluster.assert_no_drops()


def test_shared_queue_single_thread_blocks_for_many_rdmas():
    """One thread blocks on ONE host event (the completion queue's) and
    still observes every RDMA completion — the capability Fig. 5a says
    separated per-descriptor events cannot provide."""
    n_ops = 5
    cluster, a, b = single()
    comp_q = a.create_queue(7, nslots=32)
    bufs_a = [a.space.alloc(128) for _ in range(n_ops)]
    bufs_b = [b.space.alloc(128) for _ in range(n_ops)]
    seen = []

    def issuer(t):
        for i in range(n_ops):
            desc = RdmaDescriptor(
                op="write",
                local=a.map_buffer(bufs_a[i]),
                remote=b.map_buffer(bufs_b[i]),
                nbytes=128,
                remote_vpid=b.vpid,
                done=a.make_event(name=f"w{i}"),
            )
            desc.done.chain(
                a.chained_qdma(a.vpid, 7, np.zeros(4, np.uint8), meta={"i": i})
            )
            yield from a.rdma_issue(t, desc)
        # single blocking loop over one event word
        while len(seen) < n_ops:
            yield from t.block_on(comp_q.host_event)
            while (m := comp_q.poll()) is not None:
                seen.append(m.meta["i"])

    cluster.nodes[0].spawn_thread(issuer)
    cluster.run()
    assert sorted(seen) == list(range(n_ops))
