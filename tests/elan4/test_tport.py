"""Tests for the Tport NIC-side tag-matching engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.elan4.tport import ANY_SOURCE, ANY_TAG, TPORT_EAGER_BYTES


def pair():
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    return cluster, a.tport_endpoint(), b.tport_endpoint(), a, b


def xfer(cluster, src_ep, dst_ep, a, b, nbytes, tag=5, post_first=True, delay=0.0):
    """Run one tagged transfer; returns (data_ok, recv_time, msg)."""
    payload = np.random.default_rng(nbytes or 1).integers(0, 256, max(nbytes, 1), dtype=np.uint8)[:nbytes]
    src_buf = a.space.alloc(max(nbytes, 1))
    dst_buf = b.space.alloc(max(nbytes, 1))
    if nbytes:
        src_buf.write(payload)
    out = {}

    def sender(t):
        if not post_first:
            yield from t.sleep(20.0)
        if delay:
            yield from t.sleep(delay)
        ev = yield from src_ep.send(t, dst_ep.vpid, tag, src_buf, nbytes)
        yield from t.block_on(ev.attach_host_word())
        out["send_done"] = cluster.sim.now

    def receiver(t):
        if post_first:
            ev = yield from dst_ep.post_recv(t, ANY_SOURCE, tag, dst_buf)
        else:
            yield from t.sleep(40.0)
            ev = yield from dst_ep.post_recv(t, ANY_SOURCE, tag, dst_buf)
        msg = yield from t.block_on(ev.host_word)
        out["msg"] = msg
        out["recv_done"] = cluster.sim.now

    cluster.nodes[a.entry.node_id].spawn_thread(sender)
    cluster.nodes[b.entry.node_id].spawn_thread(receiver)
    cluster.run()
    ok = nbytes == 0 or np.array_equal(dst_buf.read(0, nbytes), payload)
    return ok, out


def test_eager_posted_first():
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, 512)
    assert ok
    assert out["msg"].nbytes == 512 and out["msg"].tag == 5
    assert cluster.nics[1].tport.matches == 1
    cluster.assert_no_drops()


def test_eager_unexpected_then_posted():
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, 512, post_first=False)
    assert ok
    assert cluster.nics[1].tport.unexpected_hits == 1


def test_rendezvous_large_message():
    n = TPORT_EAGER_BYTES * 8
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, n)
    assert ok
    assert out["msg"].nbytes == n
    # sender's done only after FIN
    assert out["send_done"] > 0


def test_rendezvous_unexpected_rts():
    n = TPORT_EAGER_BYTES * 4
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, n, post_first=False)
    assert ok
    assert cluster.nics[1].tport.unexpected_hits == 1


def test_tag_mismatch_does_not_match():
    cluster, se, de, a, b = pair()
    src_buf = a.space.alloc(64)
    dst_buf = b.space.alloc(64)
    done = []

    def sender(t):
        ev = yield from se.send(t, de.vpid, tag=1, buf=src_buf, nbytes=64)
        yield from t.block_on(ev.attach_host_word())

    def receiver(t):
        ev = yield from de.post_recv(t, ANY_SOURCE, 2, dst_buf)  # wrong tag
        done.append(ev)

    cluster.nodes[0].spawn_thread(sender)
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()
    assert done[0].triggers == 0  # receive still pending
    assert cluster.nics[1].tport.matches == 0


def test_any_tag_matches_everything():
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, 128, tag=77)
    assert ok  # receiver posted ANY_SOURCE, specific tag... now ANY_TAG:
    cluster2, se2, de2, a2, b2 = pair()
    src_buf = a2.space.alloc(16)
    dst_buf = b2.space.alloc(16)
    got = []

    def sender(t):
        ev = yield from se2.send(t, de2.vpid, tag=123, buf=src_buf, nbytes=16)
        yield from t.block_on(ev.attach_host_word())

    def receiver(t):
        ev = yield from de2.post_recv(t, ANY_SOURCE, ANY_TAG, dst_buf)
        msg = yield from t.block_on(ev.host_word)
        got.append(msg.tag)

    cluster2.nodes[0].spawn_thread(sender)
    cluster2.nodes[1].spawn_thread(receiver)
    cluster2.run()
    assert got == [123]


def test_source_specific_matching():
    cluster = Cluster(nodes=3)
    a = cluster.claim_context(0)
    c = cluster.claim_context(2)
    b = cluster.claim_context(1)
    ea, ec, eb = a.tport_endpoint(), c.tport_endpoint(), b.tport_endpoint()
    bufs = {"a": a.space.alloc(8), "c": c.space.alloc(8)}
    dst1, dst2 = b.space.alloc(8), b.space.alloc(8)
    order = []

    def send_from(ep, ctx, name):
        def sender(t):
            ev = yield from ep.send(t, eb.vpid, tag=9, buf=bufs[name], nbytes=8)
            yield from t.block_on(ev.attach_host_word())
        return sender

    def receiver(t):
        # match specifically the message from c, even if a's arrives first
        ev = yield from eb.post_recv(t, ec.vpid, 9, dst1)
        msg = yield from t.block_on(ev.host_word)
        order.append(msg.src_vpid)
        ev2 = yield from eb.post_recv(t, ANY_SOURCE, 9, dst2)
        msg2 = yield from t.block_on(ev2.host_word)
        order.append(msg2.src_vpid)

    cluster.nodes[0].spawn_thread(send_from(ea, a, "a"))
    cluster.nodes[2].spawn_thread(send_from(ec, c, "c"))
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()
    assert order == [ec.vpid, ea.vpid]


def test_small_latency_below_host_matching_path():
    """Tport's NIC matching + direct deposit should land a small message in
    a few microseconds — the MPICH-QsNetII advantage of Fig. 10a."""
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, 4)
    assert ok
    assert out["recv_done"] < 8.0


@settings(max_examples=15, deadline=None)
@given(n=st.integers(0, 3 * TPORT_EAGER_BYTES))
def test_property_tport_lossless_any_size(n):
    cluster, se, de, a, b = pair()
    ok, out = xfer(cluster, se, de, a, b, n)
    assert ok
    assert out["msg"].nbytes == n
    cluster.assert_no_drops()
