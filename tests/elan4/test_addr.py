"""Tests for E4 addressing and the NIC MMU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elan4.addr import E4Addr, Elan4Mmu, MmuTrap
from repro.hw.memory import AddressSpace


def test_map_translate_roundtrip():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(1000)
    e4 = mmu.map(0x400, space, buf.addr, 1000)
    got_space, got_addr = mmu.translate(e4, 1000)
    assert got_space is space and got_addr == buf.addr


def test_translate_interior_offset():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(1000)
    e4 = mmu.map(0x400, space, buf.addr, 1000)
    _, got = mmu.translate(e4 + 100, 50)
    assert got == buf.addr + 100


def test_translate_out_of_range_traps():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(100)
    e4 = mmu.map(0x400, space, buf.addr, 100)
    with pytest.raises(MmuTrap):
        mmu.translate(e4 + 90, 20)
    assert mmu.traps == 1


def test_translate_wrong_context_traps():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(100)
    e4 = mmu.map(0x400, space, buf.addr, 100)
    with pytest.raises(MmuTrap):
        mmu.translate(E4Addr(0x401, e4.offset), 10)


def test_contexts_are_isolated():
    mmu = Elan4Mmu()
    s0, s1 = AddressSpace("a"), AddressSpace("b")
    b0, b1 = s0.alloc(64), s1.alloc(64)
    e0 = mmu.map(0x400, s0, b0.addr, 64)
    e1 = mmu.map(0x401, s1, b1.addr, 64)
    assert mmu.translate(e0, 64)[0] is s0
    assert mmu.translate(e1, 64)[0] is s1


def test_unmap_then_translate_traps():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(64)
    e4 = mmu.map(0x400, space, buf.addr, 64)
    mmu.unmap(0x400, e4)
    with pytest.raises(MmuTrap):
        mmu.translate(e4, 1)


def test_unmap_unknown_traps():
    mmu = Elan4Mmu()
    with pytest.raises(MmuTrap):
        mmu.unmap(0x400, E4Addr(0x400, 0x100000))


def test_unmap_context_removes_all():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    addrs = [mmu.map(0x400, space, space.alloc(64).addr, 64) for _ in range(5)]
    assert mmu.unmap_context(0x400) == 5
    assert not mmu.has_context(0x400)
    for e4 in addrs:
        with pytest.raises(MmuTrap):
            mmu.translate(e4, 1)


def test_map_zero_bytes_rejected():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    with pytest.raises(MmuTrap):
        mmu.map(0x400, space, 0x10000, 0)


def test_e4addr_arithmetic_and_hashing():
    a = E4Addr(0x400, 0x1000)
    b = a + 0x10
    assert b.offset == 0x1010 and b.ctx == 0x400
    assert a == E4Addr(0x400, 0x1000)
    assert len({a, E4Addr(0x400, 0x1000)}) == 1


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=10),
    data=st.data(),
)
def test_property_translation_always_lands_inside_source_range(sizes, data):
    """Any in-bounds E4 access translates to the host range it was mapped
    from, at the right offset."""
    mmu = Elan4Mmu()
    space = AddressSpace("prop")
    mappings = []
    for s in sizes:
        buf = space.alloc(s)
        e4 = mmu.map(0x400, space, buf.addr, s)
        mappings.append((e4, buf, s))
    e4, buf, s = mappings[data.draw(st.integers(0, len(mappings) - 1))]
    off = data.draw(st.integers(0, s - 1))
    n = data.draw(st.integers(1, s - off))
    got_space, got_addr = mmu.translate(e4 + off, n)
    assert got_space is space
    assert got_addr == buf.addr + off
    assert buf.addr <= got_addr and got_addr + n <= buf.addr + s


# ------------------------------------------------------------------- TLB
def test_tlb_hits_repeat_translations():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(4096)
    e4 = mmu.map(0x400, space, buf.addr, 4096)
    first = mmu.translate(e4 + 128, 256)
    assert (mmu.tlb_misses, mmu.tlb_hits) == (1, 0)
    again = mmu.translate(e4 + 128, 256)
    assert again == first
    assert (mmu.tlb_misses, mmu.tlb_hits) == (1, 1)
    assert mmu.translations == 2


def test_tlb_hit_respects_remaining_size():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(100)
    e4 = mmu.map(0x400, space, buf.addr, 100)
    mmu.translate(e4 + 90, 5)  # fills the TLB with 10 bytes remaining
    with pytest.raises(MmuTrap):
        mmu.translate(e4 + 90, 20)  # larger access must re-walk and trap
    assert mmu.traps == 1


def test_tlb_invalidated_on_unmap():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(64)
    e4 = mmu.map(0x400, space, buf.addr, 64)
    mmu.translate(e4, 64)  # cached
    mmu.unmap(0x400, e4)
    with pytest.raises(MmuTrap):  # stale TLB entry must not answer
        mmu.translate(e4, 1)


def test_tlb_invalidated_on_unmap_context():
    mmu = Elan4Mmu()
    space = AddressSpace("p0")
    buf = space.alloc(64)
    e4 = mmu.map(0x400, space, buf.addr, 64)
    mmu.translate(e4, 64)
    mmu.unmap_context(0x400)
    with pytest.raises(MmuTrap):
        mmu.translate(e4, 1)


def test_tlb_disabled_never_caches():
    mmu = Elan4Mmu(tlb=False)
    space = AddressSpace("p0")
    buf = space.alloc(64)
    e4 = mmu.map(0x400, space, buf.addr, 64)
    for _ in range(3):
        mmu.translate(e4, 64)
    assert mmu.tlb_hits == 0 and mmu.tlb_misses == 0
    assert mmu.translations == 3
