"""Protocol boundary values: eager/rendezvous switches, slot limits."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.tport import TPORT_EAGER_BYTES


def tport_xfer(n):
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    ea, eb = a.tport_endpoint(), b.tport_endpoint()
    src = a.space.alloc(max(n, 1))
    dst = b.space.alloc(max(n, 1))
    payload = np.random.default_rng(n).integers(0, 256, max(n, 1), dtype=np.uint8)[:n]
    if n:
        src.write(payload)
    kinds = []
    orig_rts = cluster.nics[1].tport.handle_packet

    def spy(pkt):
        kinds.append(pkt.kind)
        orig_rts(pkt)

    cluster.nics[1]._dispatch["tport_eager"] = spy
    cluster.nics[1]._dispatch["tport_rts"] = spy

    def sender(t):
        ev = yield from ea.send(t, eb.vpid, 1, src, n)
        yield from t.block_on(ev.attach_host_word())

    def receiver(t):
        ev = yield from eb.post_recv(t, -1, 1, dst)
        yield from t.block_on(ev.host_word)

    cluster.nodes[0].spawn_thread(sender)
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()
    assert n == 0 or np.array_equal(dst.read(0, n), payload)
    return kinds


def test_tport_eager_boundary():
    assert tport_xfer(TPORT_EAGER_BYTES) == ["tport_eager"]
    assert tport_xfer(TPORT_EAGER_BYTES + 1) == ["tport_rts"]


def test_qslot_exact_payload_with_header():
    """An Open MPI eager message of exactly 1984 B fills the QSLOT to the
    byte (1984 + 64 = 2048) — it must fit, one byte more must not be eager."""
    from tests.conftest import run_mpi_app

    counts = {}

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(1984)
            yield from mpi.comm_world.send(buf, dest=1, tag=1, nbytes=1984)
            m = mpi.stack.pml.modules[0]
            counts["eager"] = m.eager_sends
        else:
            data, st = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=1984)
            counts["recv"] = st.nbytes

    run_mpi_app(app)
    assert counts == {"eager": 1, "recv": 1984}


def test_matching_peek_ignores_parked_fragments():
    """A fragment parked for sequence order is not yet matchable — probe
    must not see it before its predecessors arrive."""
    from repro.core.header import FragmentHeader, HDR_MATCH
    from repro.core.pml.matching import IncomingFragment, MatchingEngine

    eng = MatchingEngine()

    def frag(seq):
        hdr = FragmentHeader(type=HDR_MATCH, src_rank=0, ctx_id=0, tag=1,
                             seq=seq, msg_len=4, frag_len=4, frag_offset=0,
                             src_req=1, dst_req=0)
        return IncomingFragment(header=hdr, data=None, ptl=None)

    eng.incoming(frag(1))  # ahead of its turn: parked
    assert eng.peek(0, 0, 1) is None
    eng.incoming(frag(0))  # gap closes: both become unexpected
    assert eng.peek(0, 0, 1) is not None
    assert eng.peek(0, 0, 99) is None  # tag filter
    assert eng.peek(0, 5, 1) is None  # source filter
    assert eng.peek(0, -1, -1).header.seq == 0  # wildcard: oldest first


def test_qdma_queue_capacity_one():
    """A 1-slot queue still delivers everything, strictly serialized."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    q = b.create_queue(0, nslots=1)

    def sender(t):
        for i in range(4):
            yield from a.qdma_send(t, b.vpid, 0, np.full(8, i, np.uint8))

    cluster.nodes[0].spawn_thread(sender)
    cluster.run()
    got = []
    while True:
        m = q.poll()
        if m is None:
            cluster.run()
            m = q.poll()
            if m is None:
                break
        got.append(int(m.data[0]))
    assert got == [0, 1, 2, 3]
    cluster.assert_no_drops()
