"""Checkpoint/restart while *other* ranks have rendezvous traffic in flight.

§4.1: a departing process drains its own pending messages before its
connection state is torn down, and the seed registry bumps the rank's
epoch so peers can tell the new incarnation from the old.  This test
restarts rank 2 while ranks 0/1 are mid-ssend (rendezvous at any size)
and checks the three §4.1 guarantees:

* the disjoint in-flight traffic is untouched (payloads intact);
* the stale VPID is dead — a raw qdma_send to it raises CapabilityError
  instead of landing in recycled context state;
* ``refresh_peer`` observes the bumped registry epoch and delivers the
  new incarnation's contact info, so rank 0 can talk to the new rank 2.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.capability import CapabilityError
from repro.rte.checkpoint import CheckpointImage, restart_rank
from repro.rte.environment import RteJob

PAYLOAD = bytes(range(256)) * 256  # 64 KiB, rendezvous territory
ROUNDS = 6


def test_restart_rank_under_concurrent_rendezvous_traffic():
    cluster = Cluster(nodes=3, seed=31)
    job = RteJob(cluster)
    vpids = {}
    epochs = {}
    payload_ok = []
    stale_send_refused = []
    image_seen = {}

    def heavy(api):
        comm = api.comm_world
        peer = 1 - api.rank
        for i in range(ROUNDS):
            if api.rank == 0:
                yield from comm.ssend(PAYLOAD, dest=peer, tag=i)
                data, _ = yield from comm.recv(
                    source=peer, tag=i, nbytes=len(PAYLOAD)
                )
            else:
                data, _ = yield from comm.recv(
                    source=peer, tag=i, nbytes=len(PAYLOAD)
                )
                yield from comm.ssend(PAYLOAD, dest=peer, tag=i)
            payload_ok.append(bytes(data) == PAYLOAD)
        if api.rank == 0:
            # re-resolve the restarted rank 2; retry until its second
            # incarnation has registered (epoch 1)
            epoch = -1
            while epoch < 1:
                try:
                    epoch = yield from api.refresh_peer(2)
                except Exception:
                    pass
                if epoch < 1:
                    yield from api.thread.sleep(100.0)
            epochs[2] = epoch
            data, st = yield from comm.recv(source=2, tag=77, nbytes=8)
            payload_ok.append(bytes(data) == b"gen2-msg")
            yield from comm.send(b"ack", dest=2, tag=78)
        else:
            # the first incarnation's VPID must be unaddressable: a stale
            # cached endpoint fails loudly, never silently delivers
            ctx = api.stack.pml.modules[0].ctx
            with pytest.raises(CapabilityError):
                yield from ctx.qdma_send(
                    api.thread, vpids["v1"], 0, np.zeros(8, np.uint8)
                )
            stale_send_refused.append(True)
        return "heavy-done"

    def transient_v1(api):
        vpids["v1"] = api.stack.pml.modules[0].ctx.vpid
        yield cluster.sim.timeout(0)
        return "left"  # cooperative leave: finalize drains on return

    def transient_v2(api):
        vpids["v2"] = api.stack.pml.modules[0].ctx.vpid
        image_seen.update(api.restart_image.app_state)
        yield from api.rejoin_world()
        yield from api.comm_world.send(b"gen2-msg", dest=0, tag=77)
        # stay registered until rank 0 has re-resolved us (the registry
        # entry is withdrawn again once this incarnation finalizes)
        yield from api.comm_world.recv(source=0, tag=78, nbytes=3)
        return "rejoined"

    for r in (0, 1):
        job.launch(r, heavy, group="world", group_count=3)
    job.launch(2, transient_v1, group="world", group_count=3)

    # run just far enough for rank 2 to leave; ranks 0/1 are mid-rendezvous
    while not job.processes[2].finished and cluster.sim.now < 100_000.0:
        cluster.sim.run(until=cluster.sim.now + 50.0)
    assert job.processes[2].finished
    assert not job.processes[0].finished  # traffic genuinely concurrent

    proc2 = restart_rank(job, CheckpointImage(2, {"token": 5}), transient_v2)
    results = job.wait(until=10_000_000)

    assert results[0] == "heavy-done" and results[1] == "heavy-done"
    assert results[2] == "rejoined"
    assert payload_ok == [True] * (2 * ROUNDS + 1)
    assert stale_send_refused == [True]
    assert image_seen == {"token": 5}
    # same rank, new VPID, bumped epoch — and the corpse's VPID stays dead
    assert vpids["v2"] != vpids["v1"]
    assert proc2.epoch == 1
    assert epochs[2] == 1
    assert cluster.capability.is_live(vpids["v1"]) is False
