"""OOB protocol robustness: framing, malformed input, lifecycle."""

import json
import struct

import pytest

from repro.cluster import Cluster
from repro.rte.oob import OobChannel, OobError, OobServer
from repro.tcpip import Listener, TcpSocket
from repro.tcpip.stack import IpNetwork


def setup_net(nodes=2):
    cluster = Cluster(nodes=nodes)
    net = IpNetwork(cluster.sim, cluster.config)
    return cluster, net


def test_roundtrip_unicode_and_nested():
    cluster, net = setup_net()
    listener = Listener(net, cluster.nodes[1], 6000)
    got = []
    msg = {"op": "x", "nested": {"list": [1, 2, {"deep": "値"}]}, "n": None}

    def server(t):
        sock = yield from listener.accept(t)
        ch = OobChannel(sock)
        got.append((yield from ch.recv_msg(t)))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 6000)
        yield from OobChannel(sock).send_msg(t, msg)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert got == [msg]


def test_recv_none_on_clean_close():
    cluster, net = setup_net()
    listener = Listener(net, cluster.nodes[1], 6000)
    got = []

    def server(t):
        sock = yield from listener.accept(t)
        got.append((yield from OobChannel(sock).recv_msg(t)))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 6000)
        sock.close()

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert got == [None]


def test_malformed_json_raises():
    cluster, net = setup_net()
    listener = Listener(net, cluster.nodes[1], 6000)
    caught = []

    def server(t):
        sock = yield from listener.accept(t)
        try:
            yield from OobChannel(sock).recv_msg(t)
        except OobError as e:
            caught.append("json" if "payload" in str(e) else str(e))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 6000)
        body = b"not json at all"
        yield from sock.send(t, struct.pack(">I", len(body)) + body)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert caught == ["json"]


def test_implausible_frame_length_rejected():
    cluster, net = setup_net()
    listener = Listener(net, cluster.nodes[1], 6000)
    caught = []

    def server(t):
        sock = yield from listener.accept(t)
        try:
            yield from OobChannel(sock).recv_msg(t)
        except OobError as e:
            caught.append("implausible" in str(e))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 6000)
        yield from sock.send(t, struct.pack(">I", 1 << 30))

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert caught == [True]


def test_eof_inside_header_raises():
    cluster, net = setup_net()
    listener = Listener(net, cluster.nodes[1], 6000)
    caught = []

    def server(t):
        sock = yield from listener.accept(t)
        try:
            yield from OobChannel(sock).recv_msg(t)
        except OobError as e:
            caught.append("header" in str(e))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 6000)
        yield from sock.send(t, b"\x00\x00")  # half a length prefix
        sock.close()

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert caught == [True]


def test_server_handles_many_connections():
    cluster, net = setup_net()
    seen = []

    def handler(t, ch):
        msg = yield from ch.recv_msg(t)
        if msg is not None:
            seen.append(msg["id"])
            yield from ch.send_msg(t, {"ok": msg["id"]})

    server = OobServer(net, cluster.nodes[0], 7000, handler)
    acks = []

    def client(t, i):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[1], 0, 7000)
        ch = OobChannel(sock)
        reply = yield from ch.rpc(t, {"id": i})
        acks.append(reply["ok"])
        ch.close()

    for i in range(5):
        cluster.nodes[1].spawn_thread(lambda t, i=i: client(t, i))
    cluster.run()
    assert sorted(seen) == list(range(5))
    assert sorted(acks) == list(range(5))
    assert server.connections == 5


def test_unknown_op_reported_by_seed():
    from repro.mpi.world import make_mpi_stack_factory
    from repro.rte.environment import SEED_PORT, RteJob

    cluster = Cluster(nodes=2)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())
    replies = []

    def poker(t):
        sock = yield from TcpSocket.connect(job.net, t, cluster.nodes[1], 0, SEED_PORT)
        ch = OobChannel(sock)
        replies.append((yield from ch.rpc(t, {"op": "frobnicate"})))

    cluster.nodes[1].spawn_thread(poker)
    cluster.run()
    assert "error" in replies[0]
