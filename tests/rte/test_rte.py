"""Tests for the RTE: seed registry, job launch, dynamic spawn, restart.

These use a minimal "echo" stack so the RTE is exercised independently of
the Open MPI layers built on top of it.
"""

import pytest

from repro.cluster import Cluster
from repro.rte.checkpoint import CheckpointImage, restart_rank
from repro.rte.environment import RteJob, launch_job
from repro.rte.spawn import spawn_procs


class EchoStack:
    """Transport stack stub: claims a real Elan4 context (so VPID dynamics
    are genuine) but does no PTL wiring."""

    def __init__(self, process, transports):
        self.process = process
        self.transports = transports
        self.ctx = None
        self.table = None
        self.finalized = False

    def init_local(self, thread):
        cluster = self.process.job.cluster
        self.ctx = cluster.claim_context(self.process.node.node_id, self.process.space)
        yield thread.sim.timeout(0)
        return {"vpid": self.ctx.vpid, "node": self.process.node.node_id}

    def wire_up(self, thread, table):
        self.table = table
        yield thread.sim.timeout(0)

    def finalize(self, thread):
        yield from self.ctx.finalize(thread)
        self.finalized = True

    def user_api(self):
        return self


def test_launch_job_runs_all_ranks_and_collects_results():
    cluster = Cluster(nodes=4)

    def app(stack):
        yield stack.process.job.cluster.sim.timeout(1.0)
        return ("done", stack.process.rank)

    results = launch_job(cluster, app, np=4, stack_factory=EchoStack)
    assert results == {r: ("done", r) for r in range(4)}


def test_sync_delivers_full_contact_table():
    cluster = Cluster(nodes=4)
    tables = {}

    def app(stack):
        tables[stack.process.rank] = stack.table
        yield stack.process.job.cluster.sim.timeout(0)

    launch_job(cluster, app, np=4, stack_factory=EchoStack)
    for rank, table in tables.items():
        assert sorted(table) == [0, 1, 2, 3]
        vpids = {table[r]["info"]["vpid"] for r in table}
        assert len(vpids) == 4  # all distinct


def test_ranks_decoupled_from_vpids():
    """Rank i need not equal VPID i — the §4.1 decoupling."""
    cluster = Cluster(nodes=2)
    seen = {}

    def app(stack):
        seen[stack.process.rank] = stack.ctx.vpid
        yield stack.process.job.cluster.sim.timeout(0)

    # launch in reverse order so the monotone VPIDs cross the ranks
    job = RteJob(cluster, stack_factory=EchoStack)
    for rank in (1, 0):
        job.launch(rank, app, group="world", group_count=2)
    job.wait()
    assert set(seen.values()) == {0, 1}


def test_more_ranks_than_nodes():
    cluster = Cluster(nodes=2)

    def app(stack):
        yield stack.process.job.cluster.sim.timeout(0)
        return stack.process.node.node_id

    results = launch_job(cluster, app, np=6, stack_factory=EchoStack)
    assert len(results) == 6
    assert set(results.values()) == {0, 1}  # round-robin placement


@pytest.mark.sanitizer_expected
def test_wait_reports_deadlock():
    cluster = Cluster(nodes=2)

    def app(stack):
        if stack.process.rank == 0:
            yield stack.process.job.cluster.sim.timeout(10.0)
        else:
            # waits forever on an event nobody completes
            from repro.sim.events import SimEvent

            yield SimEvent(cluster.sim)

    job = RteJob(cluster, stack_factory=EchoStack)
    for rank in range(2):
        job.launch(rank, app, group="world", group_count=2)
    with pytest.raises(RuntimeError, match="deadlock.*\\[1\\]"):
        job.wait()


def test_app_exception_propagates():
    cluster = Cluster(nodes=1)

    def app(stack):
        yield stack.process.job.cluster.sim.timeout(0)
        raise ValueError("app blew up")

    with pytest.raises(ValueError, match="app blew up"):
        launch_job(cluster, app, np=1, stack_factory=EchoStack)


def test_oob_lookup_resolves_other_ranks():
    cluster = Cluster(nodes=2)
    found = {}

    def app(stack):
        thread = stack.process.main_thread
        other = 1 - stack.process.rank
        info, epoch = yield from stack.process.oob_lookup(thread, other)
        found[stack.process.rank] = (info["vpid"], epoch)

    launch_job(cluster, app, np=2, stack_factory=EchoStack)
    assert set(found) == {0, 1}
    assert found[0][1] == 0  # first epoch


def test_dynamic_spawn_joins_running_job():
    cluster = Cluster(nodes=4)
    events = []

    def child(stack):
        events.append(("child", stack.process.rank))
        yield stack.process.job.cluster.sim.timeout(0)
        return "child-done"

    def parent(stack):
        thread = stack.process.main_thread
        if stack.process.rank == 0:
            procs = spawn_procs(stack.process.job, [child, child])
            # rendezvous with the children through the registry
            table = yield from stack.process.oob_sync(thread, procs[0].group, 2)
            events.append(("parent-sees", sorted(table)))
        yield stack.process.job.cluster.sim.timeout(0)
        return "parent-done"

    job = RteJob(cluster, stack_factory=EchoStack)
    for rank in range(2):
        job.launch(rank, parent, group="world", group_count=2)
    results = job.wait()
    assert results[0] == "parent-done"
    assert results[2] == "child-done" and results[3] == "child-done"
    assert ("parent-sees", [2, 3]) in events


def test_spawned_processes_get_fresh_vpids():
    cluster = Cluster(nodes=2)
    vpids = {}

    def child(stack):
        vpids[stack.process.rank] = stack.ctx.vpid
        yield stack.process.job.cluster.sim.timeout(0)

    def parent(stack):
        vpids[stack.process.rank] = stack.ctx.vpid
        if stack.process.rank == 0:
            spawn_procs(stack.process.job, [child])
        yield stack.process.job.cluster.sim.timeout(0)

    job = RteJob(cluster, stack_factory=EchoStack)
    job.launch(0, parent, group="world", group_count=1)
    job.wait()
    assert vpids[1] != vpids[0]


def test_spawn_validation():
    cluster = Cluster(nodes=1)
    job = RteJob(cluster, stack_factory=EchoStack)
    with pytest.raises(ValueError):
        spawn_procs(job, [])


def test_restart_same_rank_new_vpid_and_epoch():
    """Checkpoint/restart: rank persists, VPID does not, epoch bumps."""
    cluster = Cluster(nodes=2)
    record = []

    def app_v1(stack):
        record.append(("v1", stack.ctx.vpid))
        yield stack.process.job.cluster.sim.timeout(0)
        return CheckpointImage(stack.process.rank, {"counter": 41})

    results_holder = {}

    def app_v2(stack):
        record.append(("v2", stack.ctx.vpid, stack.process.epoch))
        image = stack.process.restart_image
        yield stack.process.job.cluster.sim.timeout(0)
        return image.app_state["counter"] + 1

    job = RteJob(cluster, stack_factory=EchoStack)
    job.launch(0, app_v1, group="world", group_count=1)
    results = job.wait()
    image = results[0]
    proc2 = restart_rank(job, image, app_v2, node_id=1)  # migrate to node 1
    results2 = job.wait()
    assert results2[0] == 42
    v1 = [r for r in record if r[0] == "v1"][0]
    v2 = [r for r in record if r[0] == "v2"][0]
    assert v2[1] != v1[1]  # fresh VPID
    assert v2[2] == 1  # epoch bumped
    assert proc2.node.node_id == 1


def test_restart_refused_while_running():
    cluster = Cluster(nodes=1)

    def app(stack):
        yield stack.process.job.cluster.sim.timeout(1000.0)

    job = RteJob(cluster, stack_factory=EchoStack)
    job.launch(0, app, group="world", group_count=1)
    cluster.sim.run(until=1.0)
    with pytest.raises(RuntimeError, match="still running"):
        restart_rank(job, CheckpointImage(0), app)


def test_finalize_releases_context_for_reuse():
    """After a full job, every claimed context is back in the capability."""
    cluster = Cluster(nodes=2, contexts_per_node=2)

    def app(stack):
        yield stack.process.job.cluster.sim.timeout(0)

    for _ in range(3):  # would exhaust 2 contexts/node without release
        launch_job(cluster, app, np=4, stack_factory=EchoStack)
    assert cluster.capability.free_contexts(0) == 2
    assert cluster.capability.free_contexts(1) == 2
