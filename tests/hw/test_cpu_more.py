"""Deeper CPU-scheduler properties: lock fairness, broadcast, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.hw.cpu import CondVar, CpuScheduler, HostWordEvent, Mutex
from repro.sim import Simulator


def make_sched(**over):
    sim = Simulator()
    cfg = default_config().variant(**over)
    return sim, cfg, CpuScheduler(sim, cfg)


def test_mutex_handover_is_fifo():
    sim, cfg, sched = make_sched(cpus_per_node=4)
    mutex = Mutex(sim, cfg)
    order = []

    def body(t, i):
        # stagger arrivals so the queue order is deterministic
        yield from t.sleep(i * 1.0)
        yield from mutex.acquire(t)
        order.append(i)
        yield from t.compute(20.0)
        mutex.release(t)

    for i in range(4):
        sched.spawn(lambda t, i=i: body(t, i), f"t{i}")
    sim.run()
    assert order == [0, 1, 2, 3]


def test_condvar_broadcast_wakes_all():
    sim, cfg, sched = make_sched(cpus_per_node=4)
    mutex = Mutex(sim, cfg)
    cv = CondVar(sim, cfg, mutex)
    woke = []

    def waiter(t):
        yield from mutex.acquire(t)
        yield from cv.wait(t)
        woke.append(t.name)
        mutex.release(t)

    def broadcaster(t):
        yield from t.sleep(30.0)
        yield from mutex.acquire(t)
        yield from cv.broadcast(t)
        mutex.release(t)

    for i in range(3):
        sched.spawn(waiter, f"w{i}")
    sched.spawn(broadcaster, "b")
    sim.run()
    assert len(woke) == 3
    assert cv.waiter_count == 0


def test_sched_load_inflates_wakeups_only_with_busy_wakers():
    sim, cfg, sched = make_sched(cpus_per_node=4, sched_load_us=5.0)
    word = HostWordEvent(sim)
    wake_time = {}

    def sleeper(t):
        yield from t.block_on(word, clear=False)
        wake_time[t.name.split(":")[-1]] = sim.now

    sched.spawn(sleeper, "plain")
    sim.schedule(10.0, word.set)
    sim.run()
    base = wake_time["plain"] - 10.0

    # same scenario but with two busy-waker threads alive on the node
    sim2, cfg2, sched2 = make_sched(cpus_per_node=4, sched_load_us=5.0)
    word2 = HostWordEvent(sim2)
    wake2 = {}

    def sleeper2(t):
        yield from t.block_on(word2, clear=False)
        wake2["t"] = sim2.now

    def busy(t):
        yield from t.block_on(HostWordEvent(sim2))  # parked forever

    for i in range(2):
        bt = sched2.spawn(busy, f"busy{i}")
        bt.busy_waker = True
    sched2.spawn(sleeper2, "plain")
    sim2.schedule(10.0, word2.set)
    sim2.run(until=100.0)
    loaded = wake2["t"] - 10.0
    assert loaded == pytest.approx(base + 2 * 5.0)


@settings(max_examples=25, deadline=None)
@given(
    bursts=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=10),
    cpus=st.integers(1, 3),
)
def test_property_busy_time_equals_sum_of_work(bursts, cpus):
    """CPU busy-time accounting equals total compute (plus dispatch costs),
    regardless of contention."""
    sim, cfg, sched = make_sched(cpus_per_node=cpus)

    def body(t, us):
        yield from t.compute(us)

    for us in bursts:
        sched.spawn(lambda t, us=us: body(t, us))
    sim.run()
    expected = sum(bursts) + len(bursts) * cfg.context_switch_us
    assert sched.busy_time == pytest.approx(expected)


def test_hostword_value_survives_until_clear():
    sim = Simulator()
    w = HostWordEvent(sim)
    w.set({"payload": 1})
    assert w.value == {"payload": 1}
    w.clear()
    assert w.value is None


def test_thread_join_from_plain_process():
    sim, cfg, sched = make_sched()

    def body(t):
        yield from t.compute(2.0)
        return "done"

    t = sched.spawn(body)
    out = []

    def watcher():
        out.append((yield t.join_event()))

    sim.spawn(watcher())
    sim.run()
    assert out == ["done"]
