"""Tests for the CPU scheduler, threads, events, mutex, condvar."""

import pytest

from repro.config import default_config
from repro.hw.cpu import CondVar, CpuScheduler, HostWordEvent, Mutex
from repro.sim import SimError, Simulator


def make_sched(**over):
    sim = Simulator()
    cfg = default_config().variant(**over)
    return sim, cfg, CpuScheduler(sim, cfg)


def test_thread_compute_advances_time():
    sim, cfg, sched = make_sched()
    marks = []

    def body(t):
        yield from t.compute(10.0)
        marks.append(sim.now)

    sched.spawn(body)
    sim.run()
    # context switch to get on CPU + 10 us of work
    assert marks == [cfg.context_switch_us + 10.0]


def test_two_threads_two_cpus_run_concurrently():
    sim, cfg, sched = make_sched(cpus_per_node=2)
    marks = []

    def body(t):
        yield from t.compute(10.0)
        marks.append(sim.now)

    sched.spawn(body, "a")
    sched.spawn(body, "b")
    sim.run()
    assert marks[0] == marks[1]  # no serialization


def test_three_threads_two_cpus_serialize():
    sim, cfg, sched = make_sched(cpus_per_node=2)
    marks = []

    def body(t):
        yield from t.compute(10.0)
        marks.append((t.name.split(":")[-1], sim.now))

    for n in "abc":
        sched.spawn(body, n)
    sim.run()
    times = dict(marks)
    assert times["a"] == times["b"]
    assert times["c"] > times["a"]  # third thread waited for a CPU


def test_blocked_thread_releases_cpu():
    sim, cfg, sched = make_sched(cpus_per_node=1)
    word = HostWordEvent(sim)
    order = []

    def waiter(t):
        order.append("wait-start")
        yield from t.block_on(word)
        order.append("woke")

    def worker(t):
        yield from t.compute(5.0)
        order.append("worked")
        word.set()

    sched.spawn(waiter, "waiter")
    sched.spawn(worker, "worker")
    sim.run()
    # with 1 CPU, the worker could only run because the waiter blocked
    assert order == ["wait-start", "worked", "woke"]


def test_block_on_already_set_is_fast_path():
    sim, cfg, sched = make_sched()
    word = HostWordEvent(sim)
    word.set("v")
    got = []

    def body(t):
        v = yield from t.block_on(word)
        got.append((v, sim.now))

    sched.spawn(body)
    sim.run()
    # only the initial context switch; no wakeup cost
    assert got == [("v", cfg.context_switch_us)]
    assert not word.poll()  # consumed/cleared


def test_block_on_clear_false_leaves_word_set():
    sim, cfg, sched = make_sched()
    word = HostWordEvent(sim)

    def body(t):
        yield from t.block_on(word, clear=False)

    sched.spawn(body)
    sim.schedule(1.0, word.set)
    sim.run()
    assert word.poll()


def test_wakeup_costs_are_charged():
    sim, cfg, sched = make_sched(cpus_per_node=2)
    word = HostWordEvent(sim)
    marks = []

    def body(t):
        yield from t.block_on(word)
        marks.append(sim.now)

    sched.spawn(body)
    set_time = 20.0
    sim.schedule(set_time, word.set)
    sim.run()
    # wakeup + context switch after the word is set
    assert marks == [set_time + cfg.thread_wakeup_us + cfg.context_switch_us]


def test_hostword_set_wakes_all_waiters():
    sim, cfg, sched = make_sched(cpus_per_node=4)
    word = HostWordEvent(sim)
    woke = []

    def body(t):
        yield from t.block_on(word, clear=False)
        woke.append(t.name)

    for i in range(3):
        sched.spawn(body, f"t{i}")
    sim.schedule(5.0, word.set)
    sim.run()
    assert len(woke) == 3


def test_hostword_consume():
    sim = Simulator()
    word = HostWordEvent(sim)
    assert not word.consume()
    word.set()
    assert word.consume()
    assert not word.consume()
    assert word.set_count == 1


def test_sleep_releases_cpu():
    sim, cfg, sched = make_sched(cpus_per_node=1)
    order = []

    def sleeper(t):
        order.append("sleep")
        yield from t.sleep(50.0)
        order.append("awake")

    def worker(t):
        yield from t.compute(1.0)
        order.append("worked")

    sched.spawn(sleeper)
    sched.spawn(worker)
    sim.run()
    assert order == ["sleep", "worked", "awake"]


def test_yield_cpu_allows_other_thread_in():
    sim, cfg, sched = make_sched(cpus_per_node=1)
    order = []

    def poller(t):
        for _ in range(3):
            yield from t.compute(1.0)
            order.append("poll")
            yield from t.yield_cpu()

    def other(t):
        yield from t.compute(0.5)
        order.append("other")

    sched.spawn(poller)
    sched.spawn(other)
    sim.run()
    assert "other" in order
    assert order.index("other") < len(order) - 1  # got in before poller finished


def test_thread_join_event():
    sim, cfg, sched = make_sched()

    def body(t):
        yield from t.compute(3.0)
        return 42

    t = sched.spawn(body)
    results = []

    def joiner():
        v = yield t.join_event()
        results.append(v)

    sim.spawn(joiner())
    sim.run()
    assert results == [42]
    assert not t.is_alive


def test_negative_compute_rejected():
    sim, cfg, sched = make_sched()

    def body(t):
        yield from t.compute(-1.0)

    sched.spawn(body)
    with pytest.raises(SimError):
        sim.run()


def test_busy_time_accounting():
    sim, cfg, sched = make_sched()

    def body(t):
        yield from t.compute(10.0)

    sched.spawn(body)
    sim.run()
    assert sched.busy_time == pytest.approx(cfg.context_switch_us + 10.0)


def test_mutex_mutual_exclusion():
    sim, cfg, sched = make_sched(cpus_per_node=2)
    mutex = Mutex(sim, cfg)
    active = []
    overlaps = []

    def body(t):
        yield from mutex.acquire(t)
        active.append(t.name)
        if len(active) > 1:
            overlaps.append(tuple(active))
        yield from t.compute(5.0)
        active.remove(t.name)
        mutex.release(t)

    for i in range(3):
        sched.spawn(body, f"t{i}")
    sim.run()
    assert overlaps == []


def test_mutex_release_by_non_owner_rejected():
    sim, cfg, sched = make_sched()
    mutex = Mutex(sim, cfg)

    def body(t):
        mutex.release(t)
        yield sim.timeout(0)

    sched.spawn(body)
    with pytest.raises(SimError):
        sim.run()


def test_mutex_recursive_acquire_rejected():
    sim, cfg, sched = make_sched()
    mutex = Mutex(sim, cfg)

    def body(t):
        yield from mutex.acquire(t)
        yield from mutex.acquire(t)

    sched.spawn(body)
    with pytest.raises(SimError):
        sim.run()


def test_condvar_wait_signal():
    sim, cfg, sched = make_sched(cpus_per_node=2)
    mutex = Mutex(sim, cfg)
    cv = CondVar(sim, cfg, mutex)
    log = []

    def waiter(t):
        yield from mutex.acquire(t)
        log.append("waiting")
        yield from cv.wait(t)
        log.append(("woke", sim.now > 10.0))
        mutex.release(t)

    def signaller(t):
        yield from t.sleep(20.0)
        yield from mutex.acquire(t)
        yield from cv.signal(t)
        mutex.release(t)

    sched.spawn(waiter)
    sched.spawn(signaller)
    sim.run()
    assert log == ["waiting", ("woke", True)]


def test_condvar_wait_requires_mutex():
    sim, cfg, sched = make_sched()
    mutex = Mutex(sim, cfg)
    cv = CondVar(sim, cfg, mutex)

    def body(t):
        yield from cv.wait(t)

    sched.spawn(body)
    with pytest.raises(SimError):
        sim.run()


def test_condvar_signal_from_callback():
    sim, cfg, sched = make_sched()
    mutex = Mutex(sim, cfg)
    cv = CondVar(sim, cfg, mutex)
    woke = []

    def waiter(t):
        yield from mutex.acquire(t)
        yield from cv.wait(t)
        woke.append(sim.now)
        mutex.release(t)

    sched.spawn(waiter)
    sim.schedule(30.0, cv.signal_from_callback)
    sim.run()
    assert len(woke) == 1 and woke[0] > 30.0
