"""Tests for the PCI-X bus model and the Node wrapper."""

import numpy as np
import pytest

from repro.config import default_config
from repro.hw.node import Node
from repro.hw.pci import BURST_BYTES, PciBus
from repro.sim import Simulator


def make_bus(**over):
    sim = Simulator()
    cfg = default_config().variant(**over)
    return sim, cfg, PciBus(sim, cfg)


def run_gen(sim, gen):
    done = []

    def wrapper():
        result = yield from gen
        done.append(result)

    sim.spawn(wrapper())
    sim.run()
    return done[0] if done else None


def test_pio_write_cost():
    sim, cfg, bus = make_bus()
    run_gen(sim, bus.pio_write())
    assert sim.now == pytest.approx(cfg.pio_write_us)
    assert bus.pio_count == 1


def test_dma_cost_scales_with_bytes():
    sim, cfg, bus = make_bus()
    run_gen(sim, bus.dma(1000))
    expected = cfg.pci_dma_setup_us + 1000 * cfg.pci_us_per_byte
    assert sim.now == pytest.approx(expected)
    assert bus.bytes_moved == 1000


def test_zero_byte_dma_still_arbitrates():
    sim, cfg, bus = make_bus()
    run_gen(sim, bus.dma(0))
    assert sim.now == pytest.approx(cfg.pci_dma_setup_us)


def test_large_dma_split_into_bursts():
    sim, cfg, bus = make_bus()
    n = BURST_BYTES * 3 + 100
    run_gen(sim, bus.dma(n))
    expected = cfg.pci_dma_setup_us + n * cfg.pci_us_per_byte
    assert sim.now == pytest.approx(expected)


def test_bus_serializes_concurrent_dmas():
    sim, cfg, bus = make_bus()
    finish = {}

    def xfer(name, nbytes):
        yield from bus.dma(nbytes)
        finish[name] = sim.now

    sim.spawn(xfer("a", 1000))
    sim.spawn(xfer("b", 1000))
    sim.run()
    one = cfg.pci_dma_setup_us + 1000 * cfg.pci_us_per_byte
    assert finish["a"] == pytest.approx(one)
    assert finish["b"] == pytest.approx(2 * one)


def test_concurrent_large_dmas_interleave_bursts():
    """A small DMA queued behind a huge one must not wait for all of it."""
    sim, cfg, bus = make_bus()
    finish = {}

    def xfer(name, nbytes):
        yield from bus.dma(nbytes)
        finish[name] = sim.now

    sim.spawn(xfer("big", 1 << 20))
    sim.spawn(xfer("small", 64))
    sim.run()
    big_alone = cfg.pci_dma_setup_us + (1 << 20) * cfg.pci_us_per_byte
    assert finish["small"] < big_alone * 0.05  # got in after one burst


def test_node_interrupt_sets_word_after_latency():
    sim = Simulator()
    cfg = default_config()
    node = Node(sim, cfg, 0)
    from repro.hw.cpu import HostWordEvent

    word = HostWordEvent(sim)
    node.raise_interrupt(word, value="irq")
    assert not word.poll()
    sim.run()
    assert sim.now == pytest.approx(cfg.interrupt_us)
    assert word.poll() and word.value == "irq"
    assert node.interrupts_delivered == 1


def test_node_memcpy_moves_bytes_and_charges_cpu():
    sim = Simulator()
    cfg = default_config()
    node = Node(sim, cfg, 0)
    space = node.new_address_space("p")
    src = space.alloc(256)
    dst = space.alloc(256)
    src.write(np.arange(256, dtype=np.uint8))
    times = []

    def body(t):
        start = sim.now
        yield from node.memcpy(t, dst, src)
        times.append(sim.now - start)

    node.spawn_thread(body)
    sim.run()
    assert np.array_equal(dst.read(), src.read())
    assert times[0] == pytest.approx(cfg.memcpy_us(256))


def test_node_address_spaces_are_named_per_node():
    sim = Simulator()
    cfg = default_config()
    n0 = Node(sim, cfg, 0)
    n3 = Node(sim, cfg, 3)
    assert "n0" in n0.new_address_space("x").name
    assert "n3" in n3.new_address_space("x").name


def test_config_validation():
    cfg = default_config()
    cfg.validate()
    bad = cfg.variant(rndv_threshold=4096)
    with pytest.raises(ValueError):
        bad.validate()
    with pytest.raises(ValueError):
        cfg.variant(cpus_per_node=0).validate()


def test_config_helpers():
    cfg = default_config()
    assert cfg.eager_max_payload() == cfg.qslot_bytes - cfg.openmpi_header_bytes
    assert cfg.eager_max_payload(32) == cfg.qslot_bytes - 32
    assert cfg.memcpy_us(0) == 0.0
    assert cfg.memcpy_us(1000) > cfg.memcpy_us(10)
    assert cfg.wire_us(0, hops=2) == pytest.approx(
        2 * (cfg.switch_hop_us + cfg.wire_prop_us)
    )
    v = cfg.variant(interrupt_us=99.0)
    assert v.interrupt_us == 99.0 and cfg.interrupt_us != 99.0
