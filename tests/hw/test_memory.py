"""Unit + property tests for the memory model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import AddressSpace, Buffer, MemoryError_


def test_alloc_and_rw_roundtrip():
    space = AddressSpace("p0")
    buf = space.alloc(100)
    data = np.arange(100, dtype=np.uint8)
    buf.write(data)
    assert np.array_equal(buf.read(), data)


def test_buffers_start_zeroed():
    space = AddressSpace("p0")
    buf = space.alloc(64)
    assert not buf.read().any()


def test_view_is_mutable_alias():
    space = AddressSpace("p0")
    buf = space.alloc(16)
    buf.view()[:] = 7
    assert (buf.read() == 7).all()


def test_offset_read_write():
    space = AddressSpace("p0")
    buf = space.alloc(32)
    buf.write(np.full(8, 5, dtype=np.uint8), offset=10)
    assert (buf.read(offset=10, nbytes=8) == 5).all()
    assert buf.read(offset=0, nbytes=10).sum() == 0


def test_sub_buffer_aliases_parent():
    space = AddressSpace("p0")
    buf = space.alloc(64)
    sub = buf.sub(16, 8)
    sub.fill(9)
    assert (buf.read(offset=16, nbytes=8) == 9).all()


def test_sub_buffer_bounds_checked():
    space = AddressSpace("p0")
    buf = space.alloc(64)
    with pytest.raises(MemoryError_):
        buf.sub(60, 8)
    with pytest.raises(MemoryError_):
        buf.sub(-1, 4)


def test_unmapped_access_traps():
    space = AddressSpace("p0")
    space.alloc(16)
    with pytest.raises(MemoryError_):
        space.read(0x1, 4)


def test_guard_between_regions():
    space = AddressSpace("p0")
    a = space.alloc(4096)
    b = space.alloc(4096)
    # reading across the end of region a must trap, never bleed into b
    with pytest.raises(MemoryError_):
        space.read(a.addr + 4090, 16)
    assert space.is_mapped(b.addr, 4096)


def test_free_unmaps():
    space = AddressSpace("p0")
    buf = space.alloc(128)
    space.free(buf)
    assert not space.is_mapped(buf.addr)
    with pytest.raises(MemoryError_):
        space.read(buf.addr, 1)


def test_free_non_region_address_rejected():
    space = AddressSpace("p0")
    buf = space.alloc(128)
    bogus = Buffer(space, buf.addr + 8, 8)
    with pytest.raises(MemoryError_):
        space.free(bogus)


def test_alloc_zero_rejected():
    space = AddressSpace("p0")
    with pytest.raises(MemoryError_):
        space.alloc(0)


def test_spaces_are_isolated():
    a = AddressSpace("a")
    b = AddressSpace("b")
    buf_a = a.alloc(16)
    buf_b = b.alloc(16)
    buf_a.fill(1)
    assert not buf_b.read().any()


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=8),
    data=st.data(),
)
def test_property_writes_never_alias_other_buffers(sizes, data):
    """Writing any buffer never perturbs the contents of any other."""
    space = AddressSpace("prop")
    bufs = [space.alloc(s) for s in sizes]
    shadows = [np.zeros(s, dtype=np.uint8) for s in sizes]
    for _ in range(10):
        i = data.draw(st.integers(0, len(bufs) - 1))
        off = data.draw(st.integers(0, sizes[i] - 1))
        n = data.draw(st.integers(1, sizes[i] - off))
        val = data.draw(st.integers(0, 255))
        chunk = np.full(n, val, dtype=np.uint8)
        bufs[i].write(chunk, offset=off)
        shadows[i][off : off + n] = val
    for buf, shadow in zip(bufs, shadows):
        assert np.array_equal(buf.read(), shadow)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=65536))
def test_property_roundtrip_any_size(n):
    space = AddressSpace("rt")
    buf = space.alloc(n)
    payload = np.random.default_rng(n).integers(0, 256, n, dtype=np.uint8)
    buf.write(payload)
    assert np.array_equal(buf.read(), payload)
