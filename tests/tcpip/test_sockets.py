"""Tests for the simulated TCP/IP substrate."""

import pytest

from repro.cluster import Cluster
from repro.tcpip import IpNetwork, Listener, Poller, TcpError, TcpSocket


def make_net(nodes=2):
    cluster = Cluster(nodes=nodes)
    net = IpNetwork(cluster.sim, cluster.config)
    return cluster, net


def test_connect_accept_send_recv():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    got = []

    def server(t):
        sock = yield from listener.accept(t)
        data = yield from sock.recv_exact(t, 5)
        got.append(data)

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from sock.send(t, b"hello")

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert got == [b"hello"]


def test_connection_refused():
    cluster, net = make_net()
    failed = []

    def client(t):
        try:
            yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 9999)
        except TcpError:
            failed.append(True)

    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert failed == [True]


def test_double_bind_rejected():
    cluster, net = make_net()
    Listener(net, cluster.nodes[0], 7000)
    with pytest.raises(TcpError):
        Listener(net, cluster.nodes[0], 7000)


def test_stream_reassembles_across_segments():
    """A message larger than the MSS arrives intact and in order."""
    cluster, net = make_net()
    n = cluster.config.tcp_mss * 3 + 17
    payload = bytes(range(256)) * (n // 256 + 1)
    payload = payload[:n]
    listener = Listener(net, cluster.nodes[1], 5000)
    got = []

    def server(t):
        sock = yield from listener.accept(t)
        got.append((yield from sock.recv_exact(t, n)))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from sock.send(t, payload)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert got[0] == payload


def test_recv_returns_partial_data():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    sizes = []

    def server(t):
        sock = yield from listener.accept(t)
        data = yield from sock.recv(t, 1000)
        sizes.append(len(data))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from sock.send(t, b"abc")

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert sizes == [3]


def test_eof_on_peer_close():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    out = []

    def server(t):
        sock = yield from listener.accept(t)
        data = yield from sock.recv_exact(t, 2)
        out.append(data)
        out.append((yield from sock.recv(t, 10)))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from sock.send(t, b"ok")
        sock.close()

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert out == [b"ok", b""]


def test_recv_exact_raises_on_midstream_eof():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    errors = []

    def server(t):
        sock = yield from listener.accept(t)
        try:
            yield from sock.recv_exact(t, 100)
        except TcpError as e:
            errors.append(str(e))

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from sock.send(t, b"short")
        sock.close()

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert errors and "5/100" in errors[0]


def test_send_on_reset_connection_raises():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    errors = []

    def server(t):
        sock = yield from listener.accept(t)
        sock.close()

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from t.sleep(500.0)
        try:
            yield from sock.send(t, b"too late")
        except TcpError:
            errors.append(True)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert errors == [True]


def test_tcp_latency_far_exceeds_native():
    """The motivating gap: a small TCP round trip costs tens of µs."""
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    rtt = []

    def server(t):
        sock = yield from listener.accept(t)
        data = yield from sock.recv_exact(t, 4)
        yield from sock.send(t, data)

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        start = cluster.sim.now
        yield from sock.send(t, b"ping")
        yield from sock.recv_exact(t, 4)
        rtt.append(cluster.sim.now - start)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert rtt[0] > 2 * cluster.config.tcp_wire_us  # ≥ the two wire crossings
    assert rtt[0] > 50.0  # an order of magnitude above QsNet


def test_bidirectional_traffic():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    log = []

    def server(t):
        sock = yield from listener.accept(t)
        for _ in range(3):
            msg = yield from sock.recv_exact(t, 3)
            yield from sock.send(t, msg.upper())

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        for word in (b"abc", b"def", b"ghi"):
            yield from sock.send(t, word)
            log.append((yield from sock.recv_exact(t, 3)))

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert log == [b"ABC", b"DEF", b"GHI"]


def test_poller_returns_ready_socket():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    ready_names = []

    def server(t):
        a = yield from listener.accept(t)
        b = yield from listener.accept(t)
        poller = Poller(net)
        poller.register(a)
        poller.register(b)
        ready = yield from poller.poll(t)
        ready_names.append(len(ready))
        data = ready[0].try_recv(100)
        ready_names.append(data)

    def client(t, delay, msg):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from t.sleep(delay)
        yield from sock.send(t, msg)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(lambda t: client(t, 100.0, b"first"))
    cluster.nodes[0].spawn_thread(lambda t: client(t, 300.0, b"second"))
    cluster.run()
    assert ready_names[0] == 1
    assert ready_names[1] == b"first"


def test_poller_nonblocking_empty():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    out = []

    def server(t):
        sock = yield from listener.accept(t)
        poller = Poller(net)
        poller.register(sock)
        out.append((yield from poller.poll(t, block=False)))

    def client(t):
        yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert out == [[]]


def test_poller_watches_listener():
    cluster, net = make_net()
    listener = Listener(net, cluster.nodes[1], 5000)
    out = []

    def server(t):
        poller = Poller(net)
        poller.register(listener)
        ready = yield from poller.poll(t)
        out.append(ready[0] is listener)

    def client(t):
        yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert out == [True]


def test_poller_register_unregister():
    cluster, net = make_net()
    poller = Poller(net)
    listener = Listener(net, cluster.nodes[0], 5000)
    poller.register(listener)
    poller.register(listener)
    assert len(poller.watched) == 1
    poller.unregister(listener)
    poller.unregister(listener)
    assert len(poller.watched) == 0
