"""Unit tests for the benchmark reporting and harness plumbing."""

import pytest

from repro.bench.harness import (
    mpich_pingpong,
    openmpi_bandwidth,
    openmpi_pingpong,
    openmpi_pml_cost,
    qdma_native_pingpong,
)
from repro.bench.reporting import format_series_table, format_table, human_size


# ---------------------------------------------------------------- reporting
def test_human_size():
    assert human_size(0) == "0"
    assert human_size(1023) == "1023"
    assert human_size(1024) == "1K"
    assert human_size(1984) == "1984"
    assert human_size(65536) == "64K"
    assert human_size(1 << 20) == "1M"
    assert human_size((1 << 20) + 1) == str((1 << 20) + 1)


def test_format_table_alignment_and_floats():
    out = format_table("T", ["a", "bbb"], [[1, 2.5], [10, 0.125]], note="n")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "2.50" in out and "0.12" in out
    assert lines[-1] == "n"
    # columns right-aligned: header and rows end at same offsets
    header = lines[2]
    row = lines[4]
    assert len(header) == len(row)


def test_format_series_table_with_reference():
    series = {"x": {0: 1.0, 64: 2.0}}
    ref = {"x": {0: 1.1}}
    out = format_series_table("S", series, reference=ref)
    assert "x [us]" in out and "x (paper)" in out
    assert "1.10" in out
    # size 64 has no reference: cell renders empty, table still parses
    assert "64" in out


def test_format_series_table_multiple_series_union_of_sizes():
    out = format_series_table("S", {"a": {1: 1.0}, "b": {2: 2.0}})
    assert "1" in out and "2" in out


# ---------------------------------------------------------------- harness
def test_pingpong_latency_monotone_in_size():
    small = openmpi_pingpong(0, iters=4)
    large = openmpi_pingpong(16384, iters=4)
    assert 0 < small < large


def test_pingpong_deterministic():
    a = openmpi_pingpong(1024, iters=4)
    b = openmpi_pingpong(1024, iters=4)
    assert a == b  # fully deterministic simulation


def test_bandwidth_positive_and_bounded():
    bw = openmpi_bandwidth(65536, messages=8, window=4)
    assert 100 < bw < 1064  # below the PCI-X bus ceiling


def test_bandwidth_zero_bytes_is_zero():
    assert openmpi_bandwidth(0, messages=4, window=2) == 0.0


def test_pml_cost_decomposition_sums():
    d = openmpi_pml_cost(256, iters=6)
    assert d["total"] == pytest.approx(d["pml_cost"] + d["ptl_latency"])
    assert d["pml_cost"] > 0


def test_native_qdma_faster_than_full_stack():
    assert qdma_native_pingpong(512) < openmpi_pingpong(512 - 64, iters=4) + 64


def test_mpich_driver_works():
    assert 0 < mpich_pingpong(64, iters=4) < 10


def test_config_override_flows_through():
    from repro.config import default_config

    slow = default_config().variant(interrupt_us=50.0)
    # polling path ignores interrupt cost: identical results
    assert openmpi_pingpong(64, iters=3, config=slow) == openmpi_pingpong(64, iters=3)
    fast_wire = default_config().variant(link_us_per_byte=0.0001)
    assert openmpi_pingpong(16384, iters=3, config=fast_wire) < openmpi_pingpong(
        16384, iters=3
    )
