"""Every shipped example must run end-to-end (their internal asserts are
part of the check)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_module(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_quickstart(capsys):
    load_module("quickstart").main()
    out = capsys.readouterr().out
    assert "token returned with value 8" in out
    assert "allreduce(sum of rank^2) = 140" in out


def test_heat_diffusion(capsys):
    load_module("heat_diffusion").main()
    out = capsys.readouterr().out
    assert "conserved: True" in out
    assert "verified against the serial reference" in out


def test_dynamic_workers(capsys):
    load_module("dynamic_workers").main()
    out = capsys.readouterr().out
    assert "all 24 results verified" in out
    assert "fresh VPID" in out


def test_fault_tolerant_restart(capsys):
    load_module("fault_tolerant_restart").main()
    out = capsys.readouterr().out
    assert "restart was transparent" in out
    assert "epoch 1" in out


def test_one_sided_stencil(capsys):
    load_module("one_sided_stencil").main()
    out = capsys.readouterr().out
    assert "one-sided stencil verified" in out
    assert "max error vs serial 0.000e+00" in out


def test_sample_sort(capsys):
    load_module("sample_sort").main()
    out = capsys.readouterr().out
    assert "matches serial sort" in out


def test_fault_campaign(capsys):
    load_module("fault_campaign").main()
    out = capsys.readouterr().out
    assert "all 8 messages intact: True" in out
    assert "switch_death target=sw1.0" in out
    assert "rail_down rail=1" in out
    assert "replay with the same seed is identical: True" in out


def test_regenerate_figures_cli(capsys):
    mod = load_module("regenerate_figures")
    mod.main(["--quick", "fig9"])
    out = capsys.readouterr().out
    assert "PML Layer Cost" in out
    assert "shape checks passed" in out
