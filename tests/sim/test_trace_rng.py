"""Unit tests for the tracer and seeded random streams."""

import pytest

from repro.sim import RandomStreams, Simulator, Tracer


def test_tracer_records_and_counts():
    sim = Simulator()
    tr = Tracer(sim)
    sim.schedule(2.0, lambda: tr.record("pkt.send", size=64, dst=1))
    sim.schedule(4.0, lambda: tr.record("pkt.send", size=128, dst=2))
    sim.run()
    assert tr.counters["pkt.send"] == 2
    recs = tr.of_category("pkt.send")
    assert [r.time for r in recs] == [2.0, 4.0]
    assert recs[0].get("size") == 64
    assert recs[0].get("missing", "dflt") == "dflt"


def test_tracer_disabled_is_inert():
    sim = Simulator()
    tr = Tracer(sim, enabled=False)
    tr.record("x")
    tr.count("y")
    tr.sample("z", 1.0)
    tr.span_begin("k", "span")
    assert tr.span_end("k") is None
    assert not tr.records and not tr.counters and not tr.samples


def test_tracer_spans_measure_durations():
    sim = Simulator()
    tr = Tracer(sim)

    def proc():
        tr.span_begin("msg1", "latency")
        yield sim.timeout(7.5)
        tr.span_end("msg1")

    sim.spawn(proc())
    sim.run()
    assert tr.samples["latency"] == [7.5]
    assert tr.mean("latency") == 7.5


def test_tracer_span_end_unknown_key():
    sim = Simulator()
    tr = Tracer(sim)
    assert tr.span_end("nope") is None


def test_tracer_mean_requires_samples():
    sim = Simulator()
    tr = Tracer(sim)
    with pytest.raises(KeyError):
        tr.mean("empty")


def test_tracer_keep_records_false_still_counts():
    sim = Simulator()
    tr = Tracer(sim, keep_records=False)
    tr.record("a", k=1)
    assert tr.counters["a"] == 1
    assert tr.records == []


def test_rng_streams_are_deterministic():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert a.stream("nic").random() == b.stream("nic").random()


def test_rng_streams_independent_of_access_order():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    a.stream("x")
    va = a.stream("y").random()
    vb = b.stream("y").random()  # accessed first in b
    assert va == vb


def test_rng_different_names_differ():
    r = RandomStreams(seed=7)
    assert r.stream("p").random() != r.stream("q").random()


def test_rng_helpers():
    r = RandomStreams(seed=1)
    u = r.uniform("u", 2.0, 3.0)
    assert 2.0 <= u < 3.0
    e = r.exponential("e", mean=5.0)
    assert e >= 0.0
    i = r.integers("i", 0, 10)
    assert 0 <= i < 10
    assert r.choice("c", ["only"]) == "only"
