"""Unit tests for Resource, Store, PriorityStore."""

import pytest

from repro.sim import PriorityStore, Resource, SimError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def worker(i, hold):
        yield res.request()
        grants.append((i, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.spawn(worker(0, 10.0))
    sim.spawn(worker(1, 10.0))
    sim.spawn(worker(2, 10.0))
    sim.run()
    # first two at t=0, third waits for a release at t=10
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(i):
        yield res.request()
        order.append(i)
        yield sim.timeout(1.0)
        res.release()

    for i in range(5):
        sim.spawn(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_release_idle_resource_is_error():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    got = []

    def consumer():
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.spawn(consumer())
    sim.run()
    assert got == ["a", "b"]


def test_store_get_waits_for_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        got.append(((yield store.get()), sim.now))

    sim.spawn(consumer())
    sim.schedule(5.0, store.put, "late")
    sim.run()
    assert got == [("late", 5.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() == (False, None)
    store.put(7)
    sim.run()
    assert store.try_get() == (True, 7)


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    done = []

    def producer():
        yield store.put("x")
        done.append(("x", sim.now))
        yield store.put("y")
        done.append(("y", sim.now))

    def consumer():
        yield sim.timeout(10.0)
        yield store.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert done == [("x", 0.0), ("y", 10.0)]


def test_store_remove_by_predicate():
    sim = Simulator()
    store = Store(sim)
    for x in (1, 2, 3, 4):
        store.put(x)
    sim.run()
    assert store.remove(lambda v: v % 2 == 0) == 2
    assert store.peek_all() == [1, 3, 4]
    assert store.remove(lambda v: v > 100) is None


def test_store_len_and_peek_all():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    sim.run()
    assert len(store) == 2
    assert store.peek_all() == ["a", "b"]
    # peek_all must not consume
    assert len(store) == 2


def test_priority_store_orders_items():
    sim = Simulator()
    ps = PriorityStore(sim)
    for v in (5, 1, 3):
        ps.put(v)
    sim.run()
    results = []

    def consumer():
        for _ in range(3):
            results.append((yield ps.get()))

    sim.spawn(consumer())
    sim.run()
    assert results == [1, 3, 5]


def test_priority_store_waiting_getter():
    sim = Simulator()
    ps = PriorityStore(sim)
    results = []

    def consumer():
        results.append((yield ps.get()))

    sim.spawn(consumer())
    sim.schedule(1.0, ps.put, 42)
    sim.run()
    assert results == [42]


def test_priority_store_key_allows_unorderable_payloads():
    """The heap entry is (key, counter, item): with an explicit key, tied
    priorities fall back to insertion order and the payload itself is never
    compared (plain objects would raise TypeError)."""
    sim = Simulator()
    ps = PriorityStore(sim, key=lambda it: it[0])
    first, second, third = object(), object(), object()
    ps.put((2, third))
    ps.put((1, first))
    ps.put((1, second))  # same priority as first: must not compare payloads
    got = [ps.try_get()[1] for _ in range(3)]
    assert got == [(1, first), (1, second), (2, third)]


def test_priority_store_default_key_keeps_item_ordering():
    sim = Simulator()
    ps = PriorityStore(sim)
    for v in (9, 2, 7, 2):
        ps.put(v)
    got = [ps.try_get()[1] for _ in range(4)]
    assert got == [2, 2, 7, 9]
