"""Unit tests for SimEvent, Timeout, AnyOf, AllOf."""

import pytest

from repro.sim import AllOf, AnyOf, SimError, SimEvent, Simulator, Timeout


def test_event_lifecycle():
    sim = Simulator()
    ev = SimEvent(sim)
    assert not ev.triggered and not ev.processed
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    sim.run()
    assert ev.processed
    assert ev.value == 42
    assert ev.ok


def test_event_double_completion_is_error():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)
    with pytest.raises(SimError):
        ev.fail(ValueError("x"))


def test_value_before_trigger_is_error():
    sim = Simulator()
    ev = SimEvent(sim)
    with pytest.raises(SimError):
        _ = ev.value


def test_failed_event_raises_on_value():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.fail(ValueError("boom"))
    sim.run()
    assert not ev.ok
    with pytest.raises(ValueError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = SimEvent(sim)
    with pytest.raises(SimError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_callbacks_run_at_processing_time():
    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    ev.add_callback(lambda e: seen.append(sim.now))
    ev.succeed(delay=7.0)
    sim.run()
    assert seen == [7.0]


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_discard_callback():
    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    cb = lambda e: seen.append(1)
    ev.add_callback(cb)
    ev.discard_callback(cb)
    ev.succeed()
    sim.run()
    assert seen == []


def test_timeout_fires_after_delay():
    sim = Simulator()
    t = Timeout(sim, 12.5, value="done")
    sim.run()
    assert sim.now == 12.5
    assert t.value == "done"


def test_anyof_completes_on_first():
    sim = Simulator()
    a = Timeout(sim, 5.0, "a")
    b = Timeout(sim, 2.0, "b")
    any_ev = AnyOf(sim, [a, b])
    sim.run()
    winner, value = any_ev.value
    assert winner is b
    assert value == "b"


def test_anyof_propagates_failure():
    sim = Simulator()
    a = SimEvent(sim)
    b = SimEvent(sim)
    any_ev = AnyOf(sim, [a, b])
    a.fail(RuntimeError("dead"))
    sim.run()
    assert isinstance(any_ev.exception, RuntimeError)


def test_allof_waits_for_every_child():
    sim = Simulator()
    events = [Timeout(sim, d, d) for d in (3.0, 1.0, 2.0)]
    all_ev = AllOf(sim, events)
    sim.run()
    assert sim.now == 3.0
    assert all_ev.value == [3.0, 1.0, 2.0]


def test_allof_empty_completes_immediately():
    sim = Simulator()
    all_ev = AllOf(sim, [])
    sim.run()
    assert all_ev.value == []


def test_allof_fails_if_any_child_fails():
    sim = Simulator()
    ok = Timeout(sim, 1.0)
    bad = SimEvent(sim)
    all_ev = AllOf(sim, [ok, bad])
    bad.fail(KeyError("k"), delay=0.5)
    sim.run()
    assert isinstance(all_ev.exception, KeyError)


def test_anyof_after_completion_ignores_later_children():
    sim = Simulator()
    a = Timeout(sim, 1.0, "a")
    b = Timeout(sim, 2.0, "b")
    any_ev = AnyOf(sim, [a, b])
    sim.run()
    # b completing later must not re-trigger the AnyOf
    assert any_ev.value[1] == "a"
