"""Kernel fast paths: pooling, compaction, peek — and the invariant that
they never change modelled behaviour (full-trace fast-vs-slowpath compare).
"""

import pytest

from repro.sim import Simulator


@pytest.fixture
def fastsim(monkeypatch):
    """A Simulator with the fast paths deterministically ON (the suite may
    be running under REPRO_SIM_SLOWPATH=1)."""
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "0")
    return Simulator()


# ------------------------------------------------------------- compaction
def test_compaction_shrinks_heap_and_preserves_live_order(fastsim):
    sim = fastsim
    out = []
    live_times = []
    handles = []
    for i in range(10_000):
        t = 1.0 + i * 0.5
        handles.append(sim.schedule(t, out.append, (i, t)))
    for i, h in enumerate(handles):
        if i % 10:  # cancel 90%
            h.cancel()
        else:
            live_times.append(1.0 + i * 0.5)
    # lazy cancellation must not keep 9000 dead placeholders around
    assert sim.pending_count < 2 * len(live_times)
    sim.run()
    assert [t for (_i, t) in out] == live_times
    assert [i for (i, _t) in out] == sorted(i for i in range(10_000) if i % 10 == 0)
    assert sim.now == live_times[-1]


def test_compaction_mid_run_keeps_future_events(fastsim):
    """Regression: compaction rebuilds the heap *in place*.  A mass-cancel
    from inside a callback triggers compaction while run() is iterating;
    events scheduled afterwards must still fire."""
    sim = fastsim
    out = []
    victims = [sim.schedule(100.0 + i, out.append, "victim") for i in range(3000)]
    survivor = sim.schedule(200.0, out.append, "survivor")  # noqa: F841

    def massacre():
        for h in victims:
            h.cancel()
        sim.schedule(5.0, out.append, "after-compact")

    sim.schedule(1.0, massacre)
    sim.run()
    assert out == ["after-compact", "survivor"]
    assert sim.now == 200.0
    assert sim.pending_count == 0


def test_cancelled_counter_survives_compaction_drift(fastsim):
    sim = fastsim
    # cancel far more handles than stay in the heap, repeatedly
    for _ in range(5):
        handles = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        for h in handles:
            h.cancel()
    sim.run()
    assert sim.pending_count == 0
    assert sim._cancelled_in_heap == 0


# ---------------------------------------------------------------- pooling
def test_pooled_calls_are_recycled(fastsim):
    sim = fastsim
    sim.timeout(1.0)
    sim.run()
    assert len(sim._pool) == 1
    retired = sim._pool[0]
    sim.timeout(1.0)  # must reuse the retired call, not allocate
    assert sim._pool == []
    sim.run()
    assert sim._pool == [retired]


def test_slowpath_disables_pool(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    sim = Simulator()
    assert not sim.fastpath
    sim.timeout(1.0)
    sim.run()
    assert sim._pool == []


def test_public_handle_late_cancel_is_noop(fastsim):
    sim = fastsim
    out = []
    h = sim.schedule(1.0, out.append, "x")
    sim.run()
    h.cancel()  # already fired: must not poison the counter or any pool
    h.cancel()
    sim.timeout(1.0)
    sim.run()
    assert out == ["x"]
    assert sim._cancelled_in_heap == 0


# ------------------------------------------------------------------- peek
def test_peek_discards_dead_head_entries(fastsim):
    sim = fastsim
    doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
    sim.schedule(99.0, lambda: None)
    for h in doomed:
        h.cancel()
    assert sim.peek() == 99.0
    # the dead heads were garbage; peek is allowed to drop them
    assert sim.pending_count == 1
    assert sim.events_processed == 0


def test_events_processed_counts_only_live_callbacks(fastsim):
    sim = fastsim
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_processed == 1


# ----------------------------------------- determinism: fast == reference
def _mixed_workload(monkeypatch, slow):
    """Sends + cancelled timeouts + one fault event, with the semantic
    trace recorded.  Returns (trace, final_clock, bandwidth)."""
    from repro.cluster import Cluster
    from repro.core.ptl.elan4.module import Elan4PtlOptions
    from repro.faults import FaultInjector, FaultPlan
    from repro.mpi.world import make_mpi_stack_factory
    from repro.rte.environment import RteJob

    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1" if slow else "0")
    cluster = Cluster(nodes=2, rails=2)
    sim = cluster.sim
    sim.trace = []

    # background timer noise: most cancelled, a few live
    handles = [sim.schedule(3000.0 + i, lambda: None) for i in range(300)]
    for i, h in enumerate(handles):
        if i % 3:
            h.cancel()

    job = RteJob(cluster, stack_factory=make_mpi_stack_factory(
        elan4_options=Elan4PtlOptions(reliability=True, chained_fin=False)))
    out = {}
    nbytes, messages, window, start_us = 16384, 6, 2, 2500.0

    def sender(mpi):
        yield from mpi.thread.sleep(start_us - mpi.now)
        bufs = [mpi.alloc(nbytes) for _ in range(window)]
        t0 = mpi.now
        reqs = []
        for i in range(messages):
            if len(reqs) >= window:
                yield from mpi.wait(reqs.pop(0))
            reqs.append((yield from mpi.comm_world.isend(
                bufs[i % window], dest=1, tag=1, nbytes=nbytes)))
        yield from mpi.waitall(reqs)
        yield from mpi.comm_world.recv(source=1, tag=2, nbytes=0)
        out["bw"] = messages * nbytes / (mpi.now - t0)

    def receiver(mpi):
        buf = mpi.alloc(nbytes)
        reqs = []
        for i in range(messages):
            if len(reqs) >= window:
                yield from mpi.wait(reqs.pop(0))
            reqs.append((yield from mpi.comm_world.irecv(
                nbytes, source=0, tag=1, buffer=buf)))
        yield from mpi.waitall(reqs)
        yield from mpi.comm_world.send(b"", dest=0, tag=2, nbytes=0)

    transports = ("elan4", "elan4:1")
    job.launch(0, sender, group="world", group_count=2, transports=transports)
    job.launch(1, receiver, group="world", group_count=2, transports=transports)
    plan = FaultPlan("mixed", seed=1).rail_down(start_us + 30.0, rail=1)
    FaultInjector(cluster, plan, job=job).arm()
    job.wait()
    return list(sim.trace), sim.now, out["bw"]


def test_fast_paths_never_change_modelled_behaviour(monkeypatch):
    """The tentpole invariant: with sends, cancelled timers, and a mid-
    stream rail kill, the fast-path run and the REPRO_SIM_SLOWPATH=1
    reference run produce bit-identical semantic traces and clocks."""
    fast_trace, fast_clock, fast_bw = _mixed_workload(monkeypatch, slow=False)
    slow_trace, slow_clock, slow_bw = _mixed_workload(monkeypatch, slow=True)
    assert fast_trace, "workload produced no semantic events"
    assert any(ev[1] != "deliver" for ev in fast_trace), (
        "fault campaign produced no loss/drop events")
    assert fast_trace == slow_trace
    assert fast_clock == slow_clock
    assert fast_bw == slow_bw
