"""Tracer satellites: span abandon/leak accounting, the category index,
and the record ring cap."""

import pytest

from repro.analysis.sanitize import Sanitizer
from repro.sim.core import Simulator
from repro.sim.trace import Tracer


def test_abandon_discards_span_without_sampling():
    sim = Simulator()
    tr = Tracer(sim)
    tr.span_begin("k1", "op")
    assert tr.abandon("k1") is True
    assert tr.abandon("k1") is False  # already closed
    assert tr.span_end("k1") is None
    assert "op" not in tr.samples
    assert tr.counters["span_abandoned:op"] == 1


def test_open_spans_reports_leaks():
    sim = Simulator()
    tr = Tracer(sim)
    tr.span_begin("a", "x")
    tr.span_begin("b", "y")
    tr.span_end("a")
    assert set(tr.open_spans()) == {"b"}
    tr.abandon("b")
    assert tr.open_spans() == {}


def test_sanitizer_flags_open_spans_at_teardown():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    tr = Tracer(sim)  # registers itself with the sanitizer
    tr.span_begin("leaky", "op")
    findings = sim.sanitizer.teardown()
    leaks = [f for f in findings if f.kind == "open-span"]
    assert leaks and "leaky" in leaks[0].message


def test_sanitizer_quiet_when_spans_closed():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    tr = Tracer(sim)
    tr.span_begin("k", "op")
    tr.span_end("k")
    assert not [f for f in sim.sanitizer.teardown() if f.kind == "open-span"]


def test_of_category_uses_index_and_matches_records():
    sim = Simulator()
    tr = Tracer(sim)
    tr.record("a", v=1)
    tr.record("b", v=2)
    tr.record("a", v=3)
    assert [r.get("v") for r in tr.of_category("a")] == [1, 3]
    assert tr.of_category("missing") == []
    assert len(tr.records) == 3


def test_ring_cap_bounds_records_and_counts_drops():
    sim = Simulator()
    tr = Tracer(sim, keep_records=3)
    for i in range(10):
        tr.record("ev", i=i)
    assert len(tr.records) <= 6  # amortised: trimmed at 2x cap
    tr.record("other", i=99)
    # survivors are the most recent records, and the category index
    # tracks exactly the survivors
    kept = [(r.category, r.get("i")) for r in tr.records]
    assert kept[-1] == ("other", 99)
    assert kept[:-1] == [("ev", r.get("i")) for r in tr.of_category("ev")]
    assert tr.records_dropped == 11 - len(tr.records)
    assert tr.counters["ev"] == 10  # counters never truncate


def test_ring_cap_rejects_nonpositive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Tracer(sim, keep_records=0)


def test_keep_records_false_still_counts():
    sim = Simulator()
    tr = Tracer(sim, keep_records=False)
    tr.record("ev")
    assert tr.records == []
    assert tr.of_category("ev") == []
    assert tr.counters["ev"] == 1


def test_clear_resets_ring_state():
    sim = Simulator()
    tr = Tracer(sim, keep_records=2)
    for i in range(8):
        tr.record("ev", i=i)
    tr.clear()
    assert tr.records == [] and tr.records_dropped == 0
    assert tr.of_category("ev") == []
