"""Unit tests for the simulator event loop."""

import pytest

from repro.sim import SimError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(5.0, lambda: out.append(("b", sim.now)))
    sim.schedule(1.0, lambda: out.append(("a", sim.now)))
    sim.schedule(9.0, lambda: out.append(("c", sim.now)))
    sim.run()
    assert out == [("a", 1.0), ("b", 5.0), ("c", 9.0)]
    assert sim.now == 9.0


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(3.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_priority_overrides_insertion_order():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "late", priority=1)
    sim.schedule(1.0, out.append, "early", priority=0)
    sim.run()
    assert out == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    out = []
    sim.schedule(10.0, out.append, 1)
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert out == []
    sim.run()
    assert out == [1]
    assert sim.now == 10.0


def test_run_until_beyond_last_event_advances_clock():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_cancelled_call_does_not_fire():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "x")
    sim.schedule(2.0, out.append, "y")
    handle.cancel()
    sim.run()
    assert out == ["y"]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    out = []

    def first():
        out.append(sim.now)
        sim.schedule(2.5, second)

    def second():
        out.append(sim.now)

    sim.schedule(1.0, first)
    sim.run()
    assert out == [1.0, 3.5]


def test_stop_halts_run():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, out.append, "b")
    sim.run()
    assert out == ["a"]
    sim.run()
    assert out == ["a", "b"]


def test_step_processes_single_event():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(2.0, out.append, 2)
    assert sim.step()
    assert out == [1]
    assert sim.step()
    assert out == [1, 2]
    assert not sim.step()


def test_max_events_bounds_run():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=2)
    assert out == [0, 1]


def test_peek_returns_next_live_time():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek() == 1.0
    h.cancel()
    assert sim.peek() == 5.0


def test_run_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()
