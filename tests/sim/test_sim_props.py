"""Additional simulator kernel properties and uncovered paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, SimEvent, Simulator


def test_run_until_idle_with_quiet_checks():
    sim = Simulator()
    state = {"round": 0}

    def refill():
        state["round"] += 1
        if state["round"] < 3:
            sim.schedule(1.0, refill)

    sim.schedule(1.0, refill)
    # a quiet check that schedules more work until satisfied
    def quiet():
        if state["round"] < 3:
            return False
        return True

    t = sim.run_until_idle(quiet_check=[quiet])
    assert state["round"] == 3
    assert t == 3.0


def test_run_until_idle_without_checks():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    assert sim.run_until_idle() == 5.0


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    out = []
    h = sim.schedule(1.0, out.append, 1)
    sim.run()
    h.cancel()  # already fired: harmless
    assert out == [1]


def test_pending_count_reflects_heap():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count == 2
    h1.cancel()
    assert sim.pending_count == 2  # placeholder remains until it surfaces
    sim.run()
    assert sim.pending_count == 0


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
)
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 4),
    holds=st.lists(st.floats(0.5, 10.0), min_size=2, max_size=12),
)
def test_property_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = {"now": 0, "max": 0}

    def worker(hold):
        yield res.request()
        active["now"] += 1
        active["max"] = max(active["max"], active["now"])
        yield sim.timeout(hold)
        active["now"] -= 1
        res.release()

    for h in holds:
        sim.spawn(worker(h))
    sim.run()
    assert active["max"] <= capacity
    assert active["now"] == 0
    # with more work than capacity, the resource was actually saturated
    if len(holds) >= capacity:
        assert active["max"] == capacity


def test_event_succeed_with_delay_orders_against_other_events():
    sim = Simulator()
    order = []
    ev = SimEvent(sim)
    ev.add_callback(lambda e: order.append("event"))
    ev.succeed(delay=5.0)
    sim.schedule(3.0, order.append, "early")
    sim.schedule(7.0, order.append, "late")
    sim.run()
    assert order == ["early", "event", "late"]


def test_process_can_yield_allof_and_anyof():
    from repro.sim import AllOf, AnyOf

    sim = Simulator()
    results = []

    def proc():
        a, b = sim.timeout(2.0, "a"), sim.timeout(4.0, "b")
        winner, val = yield AnyOf(sim, [a, b])
        results.append(val)
        c, d = sim.timeout(1.0, "c"), sim.timeout(3.0, "d")
        vals = yield AllOf(sim, [c, d])
        results.append(vals)

    sim.spawn(proc())
    sim.run()
    assert results == ["a", ["c", "d"]]
