"""Differential tests for the calendar/ladder queue (second-gen kernel).

The fast-path future-event set (ready deque + active heap + calendar ring +
overflow heap) must pop in exactly the order a single binary heap of
``(time, priority, seq)`` keys would — that is the contract every
determinism guarantee in this repo rests on.  These tests feed identical
seeded, randomized schedules (mixed delays, priorities, exact same-time
ties, cancellations, ``schedule_at``, ``until`` boundaries, ``step``
interleavings) to the calendar-queue kernel and to the plain-heap reference
(``REPRO_SIM_SLOWPATH=1``) and assert the fire sequences are identical.

Randomness is driven by one ``random.Random(seed)`` whose draws happen in
callback order — so as long as the kernels agree, both runs see the same
draw sequence; the moment they disagree, the logs diverge and the test
fails (which is the point).
"""

import itertools
import random

import pytest

from repro.sim.core import _RING_BUCKETS, Simulator

SEEDS = [1, 7, 23, 99, 1234, 20260808]


def _run_schedule(seed: int, slowpath: bool, monkeypatch) -> dict:
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1" if slowpath else "0")
    sim = Simulator()
    assert sim.fastpath is (not slowpath)
    rng = random.Random(seed)
    log = []
    labels = itertools.count()
    handles = []

    def plant(depth: int) -> None:
        for _ in range(rng.randrange(1, 4)):
            label = next(labels)
            # Delay mix: zero-delay bursts, sub-µs jitter, mid-range, far
            # future (overflow-heap territory), and integral times that
            # produce exact same-timestamp ties across independent plants.
            delay = rng.choice(
                (
                    0.0,
                    0.0,
                    rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 40.0),
                    rng.uniform(0.0, 5000.0),
                    float(rng.randrange(0, 25)),
                )
            )
            priority = rng.choice((-1, 0, 0, 0, 0, 2))
            if rng.random() < 0.25:
                h = sim.schedule_at(sim.now + delay, fire, label, depth, priority=priority)
            else:
                h = sim.schedule(delay, fire, label, depth, priority=priority)
            if rng.random() < 0.35:
                handles.append(h)

    def fire(label: int, depth: int) -> None:
        log.append((label, sim.now))
        r = rng.random()
        if depth < 6 and r < 0.55:
            plant(depth + 1)
        if handles and r > 0.75:
            # Cancel a random pending handle — it may sit in the active
            # heap, a ring bucket, or the overflow heap.
            handles.pop(rng.randrange(len(handles))).cancel()

    for _ in range(40):
        plant(0)
    while True:
        nxt = sim.peek()
        if nxt is None:
            break
        mode = rng.random()
        if mode < 0.30:
            # `until` boundaries: exactly on an event time (it must fire;
            # only strictly-later events stop the run) and between events.
            until = nxt if mode < 0.10 else nxt + rng.uniform(0.0, 25.0)
            sim.run(until=until)
            log.append(("until", sim.now))
        elif mode < 0.42:
            for _ in range(rng.randrange(1, 6)):
                if not sim.step():
                    break
            log.append(("step", sim.now))
        elif mode < 0.50:
            sim.run(max_events=rng.randrange(1, 30))
            log.append(("max", sim.now))
        else:
            sim.run()
    return {
        "log": log,
        "final_now": sim.now,
        "events_processed": sim.events_processed,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_queue_matches_plain_heap_reference(seed, monkeypatch):
    fast = _run_schedule(seed, slowpath=False, monkeypatch=monkeypatch)
    slow = _run_schedule(seed, slowpath=True, monkeypatch=monkeypatch)
    assert fast["log"] == slow["log"]
    assert fast["final_now"] == slow["final_now"]
    assert fast["events_processed"] == slow["events_processed"]
    # The schedule must actually have exercised the structure.
    assert fast["events_processed"] > 100


def test_far_future_timers_migrate_through_ring(monkeypatch):
    """Timers far beyond the first horizon end up in the overflow heap,
    migrate into ring buckets on rebuild, and still fire in key order."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    sim = Simulator()
    fired = []
    times = [float(t) for t in range(1000, 0, -7)]  # descending inserts
    for t in times:
        sim.schedule_at(t, fired.append, t)
    assert len(sim._overflow) + len(sim._active) + sim._ring_count == len(times)
    sim.run()
    assert fired == sorted(times)


def test_cancellations_are_dropped_at_promotion(monkeypatch):
    """Cancelled ring-bucket entries never surface and the cancelled
    counter returns to zero once their buckets are promoted or swept."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    sim = Simulator()
    fired = []
    handles = [sim.schedule(10.0 + i, fired.append, i) for i in range(200)]
    for h in handles[::2]:
        h.cancel()
    sim.run()
    assert fired == list(range(1, 200, 2))
    assert sim._cancelled_in_heap == 0


def test_rebuild_spans_single_timestamp(monkeypatch):
    """A degenerate overflow population (every far timer at one timestamp)
    must not produce zero-width buckets."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    sim = Simulator()
    fired = []
    for i in range(3 * _RING_BUCKETS):
        sim.schedule_at(1000.0, fired.append, i)
    sim.run()
    assert fired == list(range(3 * _RING_BUCKETS))
    assert sim.now == 1000.0


def test_step_honours_until(monkeypatch):
    """step() shares run()'s arbitration: an event beyond ``until`` is left
    queued and the clock advances exactly to ``until``."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(15.0, fired.append, "b")
    assert sim.step(until=10.0) is True
    assert fired == ["a"]
    assert sim.step(until=10.0) is False
    assert sim.now == 10.0
    assert sim.pending_count == 1
    assert sim.step() is True
    assert fired == ["a", "b"]
    assert sim.now == 15.0


def test_step_consumes_pending_stop(monkeypatch):
    """A stop() request outstanding when step() is called is consumed:
    that step returns False without processing, the next one proceeds."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.stop()
    assert sim.step() is False
    assert fired == []
    assert sim.step() is True
    assert fired == ["x"]
