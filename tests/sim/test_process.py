"""Unit tests for coroutine processes."""

import pytest

from repro.sim import Interrupt, SimError, SimEvent, Simulator


def test_process_advances_through_timeouts():
    sim = Simulator()
    marks = []

    def proc():
        marks.append(sim.now)
        yield sim.timeout(4.0)
        marks.append(sim.now)
        yield sim.timeout(6.0)
        marks.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert marks == [0.0, 4.0, 10.0]


def test_process_return_value_via_join():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 99

    results = []

    def parent():
        value = yield sim.spawn(child())
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == [99]


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield sim.timeout(3.0)
        return "inner-done"

    out = []

    def outer():
        v = yield from inner()
        out.append((v, sim.now))

    sim.spawn(outer())
    sim.run()
    assert out == [("inner-done", 3.0)]


def test_event_value_passed_into_process():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def proc():
        v = yield ev
        got.append(v)

    sim.spawn(proc())
    sim.schedule(5.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_failure_raises_inside_process():
    sim = Simulator()
    ev = SimEvent(sim)
    caught = []

    def proc():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(proc())
    sim.schedule(1.0, lambda: ev.fail(ValueError("bad")))
    sim.run()
    assert caught == ["bad"]


def test_unhandled_process_exception_propagates_from_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("kaboom")

    sim.spawn(proc())
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


def test_joined_process_exception_delivered_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    seen = []

    def parent():
        try:
            yield sim.spawn(child())
        except RuntimeError as e:
            seen.append(str(e))

    sim.spawn(parent())
    sim.run()
    assert seen == ["child died"]


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc():
        yield 42  # type: ignore[misc]

    sim.spawn(proc())
    with pytest.raises(SimError):
        sim.run()


def test_interrupt_thrown_at_yield_point():
    sim = Simulator()
    log = []

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.spawn(proc())
    sim.schedule(5.0, p.interrupt, "preempt")
    sim.run()
    assert log == [(5.0, "preempt")]


def test_interrupt_detaches_original_event():
    sim = Simulator()
    resumed = []

    def proc():
        try:
            yield sim.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            yield sim.timeout(50.0)
            resumed.append("after-interrupt")

    p = sim.spawn(proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    # the 10 µs timeout still fires in the heap but must not resume the proc
    assert resumed == ["after-interrupt"]
    assert sim.now == 51.0


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = sim.spawn(proc())
    sim.run()
    p.interrupt()  # should not raise
    sim.run()


def test_is_alive_tracks_lifetime():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    p = sim.spawn(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_many_processes_deterministic_interleaving():
    sim = Simulator()
    order = []

    def proc(i):
        yield sim.timeout(1.0)
        order.append(i)

    for i in range(20):
        sim.spawn(proc(i))
    sim.run()
    assert order == list(range(20))
