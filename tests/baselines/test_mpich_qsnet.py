"""Tests for the MPICH-QsNetII baseline."""

import numpy as np
import pytest

from repro.baselines import MpichQsnetJob
from repro.cluster import Cluster
from tests.conftest import pingpong_latency


def mpich_pingpong(n, iters=4):
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)
    payload = np.random.default_rng(n).integers(0, 256, max(n, 1), dtype=np.uint8)[:n]

    def app(mq):
        buf = mq.alloc(max(n, 1))
        if mq.rank == 0:
            if n:
                buf.write(payload)
            t0 = mq.now
            for _ in range(iters):
                yield from mq.send(buf, dest=1, tag=1, nbytes=n)
                yield from mq.recv(buf, source=1, tag=2)
            return (mq.now - t0) / (2 * iters)
        else:
            ok = True
            for _ in range(iters):
                msg = yield from mq.recv(buf, source=0, tag=1)
                if n and not np.array_equal(buf.read(0, n), payload):
                    ok = False
                yield from mq.send(buf, dest=0, tag=2, nbytes=n)
            return ok

    results = job.run(app)
    cluster.assert_no_drops()
    assert results[1] is True
    return results[0]


@pytest.mark.parametrize("n", [0, 4, 1024, 4096, 65536])
def test_mpich_pingpong_lossless(n):
    assert mpich_pingpong(n) > 0


def test_mpich_small_message_latency_beats_openmpi():
    """Fig. 10a: MPICH-QsNetII wins small messages (NIC matching + 32 B
    header) — 'our implementation has a latency performance comparable to
    that of MPICH-QsNetII, except in the range of small messages'."""
    for n in (0, 64, 1024):
        assert mpich_pingpong(n) < pingpong_latency(n)


def test_openmpi_stays_comparable():
    """...but comparable: within ~2x at small sizes, closer at 4 KB."""
    for n in (64, 4096):
        ratio = pingpong_latency(n) / mpich_pingpong(n)
        assert ratio < 2.2


def test_mpich_midrange_bandwidth_advantage():
    """Fig. 10b/d: Tport pipelining wins the middle range (here expressed
    as latency at 64 KB)."""
    n = 65536
    assert mpich_pingpong(n) < pingpong_latency(n)


def test_static_job_cannot_grow():
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)
    with pytest.raises(RuntimeError, match="static"):
        job.add_process()


def test_contexts_claimed_up_front():
    cluster = Cluster(nodes=2, contexts_per_node=2)
    job = MpichQsnetJob(cluster, np=4)
    assert cluster.capability.free_contexts(0) == 0
    assert cluster.capability.free_contexts(1) == 0


def test_rank_source_reported():
    cluster = Cluster(nodes=3)
    job = MpichQsnetJob(cluster, np=3)

    def app(mq):
        buf = mq.alloc(16)
        if mq.rank == 2:
            sources = []
            for _ in range(2):
                msg = yield from mq.recv(buf, source=-1, tag=1)
                sources.append(msg.src_vpid)  # translated to rank
            return sorted(sources)
        else:
            yield from mq.send(buf, dest=2, tag=1, nbytes=16)

    results = job.run(app)
    assert results[2] == [0, 1]


@pytest.mark.sanitizer_expected
def test_deadlock_detection():
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)

    def app(mq):
        buf = mq.alloc(8)
        if mq.rank == 0:
            yield from mq.recv(buf, source=1, tag=1)  # never sent

    with pytest.raises(RuntimeError, match="deadlock"):
        job.run(app)
