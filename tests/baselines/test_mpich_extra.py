"""Additional MPICH-QsNetII baseline coverage: streaming, pairing helpers,
nonblocking operations, and driver parity."""

import numpy as np
import pytest

from repro.baselines import MpichQsnetJob
from repro.bench.harness import mpich_bandwidth, openmpi_bandwidth
from repro.cluster import Cluster


def test_mpich_streaming_window():
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)
    n, count = 8192, 12

    def app(mq):
        bufs = [mq.alloc(n) for _ in range(4)]
        if mq.rank == 0:
            evs = []
            for i in range(count):
                if len(evs) >= 4:
                    yield from mq.wait(evs.pop(0))
                evs.append((yield from mq.isend(bufs[i % 4], dest=1, tag=1, nbytes=n)))
            for ev in evs:
                yield from mq.wait(ev)
            return "sent"
        else:
            evs = []
            for i in range(count):
                if len(evs) >= 4:
                    yield from mq.wait(evs.pop(0))
                evs.append((yield from mq.irecv(bufs[i % 4], source=0, tag=1)))
            for ev in evs:
                yield from mq.wait(ev)
            return "received"

    results = job.run(app)
    assert results == {0: "sent", 1: "received"}
    cluster.assert_no_drops()


def test_mpich_barrier_pair():
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)
    times = {}

    def app(mq):
        if mq.rank == 0:
            yield from mq.thread.sleep(120.0)
        yield from mq.barrier_pair(1 - mq.rank)
        times[mq.rank] = mq.now

    job.run(app)
    # both ranks exit the pair-barrier at (nearly) the same time, after the
    # slow rank arrived
    assert abs(times[0] - times[1]) < 10.0
    assert min(times.values()) > 120.0


def test_mpich_nonblocking_overlap():
    """isend/irecv allow compute overlap — completion strictly later."""
    cluster = Cluster(nodes=2)
    job = MpichQsnetJob(cluster, np=2)
    n = 200_000
    marks = {}

    def app(mq):
        buf = mq.alloc(n)
        if mq.rank == 0:
            ev = yield from mq.isend(buf, dest=1, tag=1, nbytes=n)
            marks["issued"] = mq.now
            yield from mq.thread.compute(30.0)  # overlapped work
            yield from mq.wait(ev)
            marks["complete"] = mq.now
        else:
            ev = yield from mq.irecv(buf, source=0, tag=1)
            yield from mq.wait(ev)

    job.run(app)
    assert marks["complete"] > marks["issued"] + 30.0


def test_bandwidth_drivers_agree_on_large_messages():
    """At 1 MB both stacks sit at the PCI ceiling: drivers within 2%."""
    a = openmpi_bandwidth(1 << 20, messages=8, window=4)
    b = mpich_bandwidth(1 << 20, messages=8, window=4)
    assert abs(a - b) / max(a, b) < 0.02


def test_mpich_many_ranks_ring():
    cluster = Cluster(nodes=8)
    job = MpichQsnetJob(cluster, np=8)

    def app(mq):
        buf = mq.alloc(64)
        right = (mq.rank + 1) % mq.size
        left = (mq.rank - 1) % mq.size
        if mq.rank == 0:
            buf.fill(1)
            yield from mq.send(buf, dest=right, tag=1, nbytes=64)
            yield from mq.recv(buf, source=left, tag=1)
            return int(buf.read()[0])
        else:
            yield from mq.recv(buf, source=left, tag=1)
            data = buf.read()
            buf.write(data + 1)
            yield from mq.send(buf, dest=right, tag=1, nbytes=64)

    results = job.run(app)
    assert results[0] == 8
