"""Flight recorder: tid allocation, breakdowns, and the completed-ring cap."""

import pytest

from repro.obs.flight import FlightRecorder


def _one_flight(rec, t0=0.0, dur=10.0):
    tid = rec.begin("send", 0, 1, 7, 0, 1024, t0)
    rec.span(tid, "pml", "isend", t0, 1.0, node=0)
    rec.span(tid, "nic", "tx", t0 + 1.0, 6.0, node=0)
    rec.instant(tid, "ptl", "rndv_ack", t0 + 8.0, node=0)
    rec.complete(tid, t0 + dur)
    return tid


def test_tids_are_sequential_and_records_ordered():
    rec = FlightRecorder()
    tids = [rec.begin("send", 0, 1, i, 0, 8, float(i)) for i in range(3)]
    assert tids == [1, 2, 3]
    assert [r.tid for r in rec.records()] == [1, 2, 3]
    assert rec.completed() == []
    assert len(rec.open_records()) == 3


def test_layer_breakdown_totals_and_unattributed():
    rec = FlightRecorder()
    tid = _one_flight(rec)
    b = rec.get(tid).layer_breakdown()
    assert b["pml"] == pytest.approx(1.0)
    assert b["nic"] == pytest.approx(6.0)
    assert b["ptl"] == 0.0 and b["switch"] == 0.0
    assert b["total"] == pytest.approx(10.0)
    assert b["unattributed"] == pytest.approx(3.0)


def test_events_on_unknown_or_none_tid_are_ignored():
    rec = FlightRecorder()
    rec.span(None, "pml", "isend", 0.0, 1.0)
    rec.span(999, "pml", "isend", 0.0, 1.0)
    rec.instant(None, "ptl", "fin", 0.0)
    rec.set_kind(999, "rndv")
    assert rec.records() == []


def test_double_complete_is_ignored():
    rec = FlightRecorder()
    tid = rec.begin("send", 0, 1, 0, 0, 8, 0.0)
    assert rec.complete(tid, 5.0) is not None
    assert rec.complete(tid, 9.0) is None
    assert rec.get(tid).t_end == 5.0


def test_ring_cap_evicts_oldest_completed_only():
    rec = FlightRecorder(keep_flights=2)
    done = [_one_flight(rec, t0=10.0 * i) for i in range(4)]
    still_open = rec.begin("send", 0, 1, 99, 0, 8, 100.0)
    assert rec.flights_dropped == 2
    kept = [r.tid for r in rec.records()]
    # the two newest completed flights survive; the open one is never evicted
    assert kept == [done[2], done[3], still_open]
    assert [r.tid for r in rec.open_records()] == [still_open]


def test_ring_cap_validates():
    with pytest.raises(ValueError):
        FlightRecorder(keep_flights=0)


def test_slowest_sorts_by_latency_then_tid():
    rec = FlightRecorder()
    a = _one_flight(rec, t0=0.0, dur=5.0)
    b = _one_flight(rec, t0=20.0, dur=9.0)
    c = _one_flight(rec, t0=40.0, dur=9.0)
    assert [r.tid for r in rec.slowest(2)] == [b, c]
    assert [r.tid for r in rec.slowest(10)] == [b, c, a]


def test_layer_summary_aggregates_completed():
    rec = FlightRecorder()
    _one_flight(rec, t0=0.0)
    _one_flight(rec, t0=50.0)
    summary = rec.layer_summary()
    assert summary["pml"] == {"total_us": pytest.approx(2.0), "mean_us": pytest.approx(1.0)}
    assert summary["total"]["mean_us"] == pytest.approx(10.0)
