"""Metrics registry: counters, gauges, fixed-bucket histograms, snapshot/diff."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)


def test_counter_and_gauge_basics():
    m = MetricsRegistry()
    m.count("pml", "sends")
    m.count("pml", "sends", 3)
    m.gauge_set("nic", "queue_depth", 7)
    m.gauge_set("nic", "queue_depth", 2)
    snap = m.snapshot(at_us=10.0)
    assert snap["at_us"] == 10.0
    assert snap["scopes"]["pml"]["sends"] == {"type": "counter", "value": 4}
    assert snap["scopes"]["nic"]["queue_depth"]["value"] == 2.0


def test_histogram_bucketing_is_fixed_and_exact():
    h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 99.0, 1000.0):
        h.observe(v)
    # first bucket edge is inclusive; past the last bound -> overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.total == pytest.approx(1105.5)
    assert h.mean == pytest.approx(221.1)


def test_histogram_quantile_is_bucket_resolution():
    h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    for v in [0.5] * 9 + [50.0]:
        h.observe(v)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 100.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 1.0))


def test_default_bounds_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(DEFAULT_LATENCY_BUCKETS_US)


def test_snapshot_skips_empty_scopes_and_sorts_keys():
    m = MetricsRegistry()
    m.count("ptl", "b_events")
    m.count("ptl", "a_events")
    snap = m.snapshot()
    assert list(snap["scopes"]) == ["ptl"]
    assert list(snap["scopes"]["ptl"]) == ["a_events", "b_events"]


def test_diff_snapshots_subtracts_counters_and_histograms():
    m = MetricsRegistry()
    m.count("pml", "sends", 2)
    m.sample("pml", "lat_us", 5.0, bounds=(1.0, 10.0))
    old = m.snapshot(at_us=1.0)
    m.count("pml", "sends", 5)
    m.sample("pml", "lat_us", 0.5, bounds=(1.0, 10.0))
    m.gauge_set("pml", "depth", 3)
    new = m.snapshot(at_us=9.0)

    d = diff_snapshots(new, old)
    assert d["at_us"] == 9.0 and d["since_us"] == 1.0
    pml = d["scopes"]["pml"]
    assert pml["sends"]["value"] == 5
    assert pml["lat_us"]["count"] == 1
    assert pml["lat_us"]["counts"] == [1, 0, 0]
    assert pml["lat_us"]["mean"] == pytest.approx(0.5)
    # gauges report the new value, not a delta
    assert pml["depth"]["value"] == 3.0


def test_diff_against_empty_old_passes_through():
    m = MetricsRegistry()
    m.count("faults", "rail_down")
    d = diff_snapshots(m.snapshot(), {"at_us": 0.0, "scopes": {}})
    assert d["scopes"]["faults"]["rail_down"]["value"] == 1
