"""Report: trace round-trip, rendered tables, and the Fig. 9 split check."""

import json

import pytest

from repro.bench.harness import openmpi_pml_cost
from repro.obs import capture
from repro.obs.export import chrome_trace
from repro.obs.report import main, render, rows_from_observer, rows_from_trace
from tests.conftest import pingpong_app, run_mpi_app


def _observed_pingpong(nbytes=1024, iters=3):
    with capture() as cap:
        run_mpi_app(pingpong_app(nbytes, iters=iters), nodes=2)
    return cap.observer


def test_rows_from_trace_round_trip_matches_observer():
    ob = _observed_pingpong()
    direct = {r.tid: r for r in rows_from_observer(ob)}
    via_trace = {int(r.tid): r for r in rows_from_trace(chrome_trace(ob))}
    assert set(direct) == set(via_trace)
    for tid, row in direct.items():
        other = via_trace[tid]
        assert other.latency == pytest.approx(row.latency)
        assert (other.kind, other.src, other.dst, other.nbytes) == (
            row.kind,
            row.src,
            row.dst,
            row.nbytes,
        )
        for layer in ("pml", "ptl", "nic", "switch"):
            assert other.layers[layer] == pytest.approx(row.layers[layer])


def test_render_contains_layer_table_and_slowest():
    ob = _observed_pingpong()
    out = render(rows_from_observer(ob), top=2)
    assert "Fig. 9 decomposition" in out
    for layer in ("pml", "ptl", "nic", "switch", "unattributed", "total"):
        assert layer in out
    assert "top 2 slowest messages" in out


def test_render_empty():
    assert render([]) == "completed messages: 0"


def test_main_reports_from_exported_trace(tmp_path, capsys):
    ob = _observed_pingpong()
    path = tmp_path / "run.trace.json"
    path.write_text(json.dumps(chrome_trace(ob)))
    assert main([str(path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-layer latency" in out
    assert "top 3 slowest" in out


def test_fig9_pml_split_matches_token_passing_measurement():
    """The obs-side PML cost histogram samples the same decomposition the
    Fig. 9 bench measures by token passing; their means must agree, and
    both must sit in the paper's §6.3 band (~0.5 us at PML and above)."""
    with capture() as cap:
        results = openmpi_pml_cost(1024, iters=10)
    hist = (
        cap.observer.metrics.scope("pml").histogram("layer_cost_us")
    )
    assert hist.count > 0
    assert hist.mean == pytest.approx(results["pml_cost"], rel=1e-9)
    assert 0.35 <= hist.mean <= 0.75
    # and the residual PTL+below latency dominates, as in Fig. 9
    assert results["ptl_latency"] > results["pml_cost"]
