"""Enablement gating and the observation-only contract.

The load-bearing test here is bit-identity: an observed run and an
unobserved run of the same workload must report identical modelled
results and end at the identical simulated time.
"""

import pytest

from repro.cluster import Cluster
from repro.obs import capture, maybe_observer, obs_enabled
from tests.conftest import pingpong_app, run_mpi_app


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert not obs_enabled()
    assert maybe_observer(object()) is None
    cluster = Cluster(nodes=2)
    assert cluster.observer is None
    assert cluster.fabric.obs is None
    assert all(nic.obs is None for nic in cluster.nics)


def test_env_enables_and_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    assert obs_enabled()
    assert maybe_observer(object()) is not None
    monkeypatch.setenv("REPRO_OBS", "0")
    assert not obs_enabled()
    assert maybe_observer(object()) is None


def test_env_keep_cap_applies(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_KEEP", "5")
    ob = maybe_observer(object())
    assert ob.flights.keep_flights == 5


def test_capture_wires_every_layer():
    with capture() as cap:
        cluster = Cluster(nodes=2, rails=2)
    ob = cap.observer
    assert cluster.observer is ob
    for fabric in cluster.rail_fabrics:
        assert fabric.obs is ob
    for nics in cluster.rail_nics:
        assert all(nic.obs is ob for nic in nics)
    # clusters built after the block are unobserved again
    assert Cluster(nodes=2).observer is None


def test_capture_observer_property_demands_exactly_one():
    with capture() as cap:
        pass
    with pytest.raises(ValueError):
        cap.observer
    with capture() as cap2:
        Cluster(nodes=2)
        Cluster(nodes=2)
    assert len(cap2.observers) == 2
    with pytest.raises(ValueError):
        cap2.observer


def test_observed_run_is_bit_identical_to_plain_run():
    plain, plain_cluster = run_mpi_app(pingpong_app(4096, iters=4), nodes=2)
    with capture() as cap:
        observed, observed_cluster = run_mpi_app(pingpong_app(4096, iters=4), nodes=2)
    assert observed == plain
    assert observed_cluster.sim.now == plain_cluster.sim.now
    # and the observation actually happened
    assert len(cap.observer.flights.completed()) > 0


def test_observed_flights_cover_the_workload():
    iters = 3
    with capture() as cap:
        run_mpi_app(pingpong_app(1024, iters=iters), nodes=2)
    ob = cap.observer
    done = ob.flights.completed()
    # one flight per message: 2 directions x iters (plus any wireup sends)
    assert len(done) >= 2 * iters
    for rec in done:
        assert rec.latency_us > 0
        b = rec.layer_breakdown()
        assert b["total"] >= b["pml"] + b["ptl"] >= 0
    counters = ob.snapshot()["scopes"]["pml"]
    assert counters["sends_completed"]["value"] == len(done)
