"""Exporters: byte-determinism, golden file, schema validation, truncation.

To regenerate the golden file after an intentional model change::

    PYTHONHASHSEED=0 PYTHONPATH=src python -c "
    from tests.obs.test_export import _golden_trace_text, GOLDEN
    GOLDEN.write_text(_golden_trace_text())"
"""

import json
import pathlib

from repro.obs import capture
from repro.obs.export import chrome_trace, metrics_json, trace_json, write_run_artifacts
from repro.obs.schema import validate_chrome_trace, validate_file
from tests.conftest import pingpong_app, run_mpi_app

GOLDEN = pathlib.Path(__file__).parent / "golden" / "pingpong.trace.json"


def _observed_pingpong(nbytes=256, iters=2, keep_flights=None):
    with capture(keep_flights=keep_flights) as cap:
        run_mpi_app(pingpong_app(nbytes, iters=iters), nodes=2)
    return cap.observer


def _golden_trace_text() -> str:
    return trace_json(_observed_pingpong()) + "\n"


def test_trace_export_is_deterministic_across_runs():
    first = _golden_trace_text()
    second = _golden_trace_text()
    assert first == second


def test_trace_matches_committed_golden():
    assert _golden_trace_text() == GOLDEN.read_text()


def test_exported_trace_is_schema_valid():
    trace = chrome_trace(_observed_pingpong())
    assert validate_chrome_trace(trace) == []


def test_trace_events_cover_every_instrumented_layer():
    trace = chrome_trace(_observed_pingpong())
    span_layers = {
        ev["cat"] for ev in trace["traceEvents"] if ev["ph"] == "X"
    }
    assert {"pml", "ptl", "nic", "switch"} <= span_layers
    phases = {ev["ph"] for ev in trace["traceEvents"]}
    assert {"X", "b", "e", "M"} <= phases


def test_truncated_capture_is_declared_in_metadata():
    ob = _observed_pingpong(iters=4, keep_flights=2)
    assert ob.flights.flights_dropped > 0
    trace = chrome_trace(ob)
    other = trace["otherData"]
    assert other["truncated"] is True
    assert other["flights_dropped"] == ob.flights.flights_dropped
    # a capped trace is still schema-valid: its dangling async ends are
    # explained by the declared drop count
    errors = validate_chrome_trace(trace)
    assert errors == []


def test_metrics_json_round_trips():
    ob = _observed_pingpong()
    snap = json.loads(metrics_json(ob))
    assert snap["scopes"]["pml"]["sends_completed"]["value"] >= 4
    assert "message_latency_us" in snap["scopes"]["pml"]


def test_write_run_artifacts_merges_runs_with_pid_stripes(tmp_path):
    ob_a = _observed_pingpong(iters=1)
    ob_b = _observed_pingpong(iters=1)
    base = str(tmp_path / "merged")
    trace_path, metrics_path = write_run_artifacts(
        [ob_a, ob_b], base, labels={"bench": "test"}
    )
    assert validate_file(trace_path) == []
    trace = json.loads(pathlib.Path(trace_path).read_text())
    pids = {ev["pid"] for ev in trace["traceEvents"]}
    assert any(pid >= 1000 for pid in pids) and any(pid < 1000 for pid in pids)
    assert [r["run"] for r in trace["otherData"]["runs"]] == [0, 1]
    metrics = json.loads(pathlib.Path(metrics_path).read_text())
    assert len(metrics["runs"]) == 2
    assert metrics["labels"] == {"bench": "test"}


def test_schema_rejects_malformed_traces():
    good = chrome_trace(_observed_pingpong())
    assert validate_chrome_trace({"traceEvents": "nope"})
    bad_ph = json.loads(json.dumps(good))
    bad_ph["traceEvents"][0]["ph"] = "Z"
    assert any("ph" in e for e in validate_chrome_trace(bad_ph))
    dangling = json.loads(json.dumps(good))
    dangling["traceEvents"] = [
        ev
        for ev in dangling["traceEvents"]
        if not (ev.get("ph") == "e" and ev.get("cat") == "flight")
    ]
    dangling["otherData"]["flights_open"] = 0
    assert validate_chrome_trace(dangling)
