"""End-to-end reliable delivery (§3) under injected fabric loss."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.ptl.elan4.module import Elan4PtlOptions
from repro.core.ptl.elan4.reliability import ReliabilityError
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import launch_job
from tests.conftest import pingpong_app, run_mpi_app

RELIABLE = Elan4PtlOptions(reliability=True, chained_fin=False)


def run_lossy(app, loss, seed=0, np_=2, nodes=2, options=RELIABLE):
    cluster = Cluster(nodes=nodes)
    cluster.fabric.set_loss(loss, seed=seed)
    results = launch_job(
        cluster, app, np=np_,
        stack_factory=make_mpi_stack_factory(elan4_options=options),
    )
    return results, cluster


def test_reliability_requires_unchained_fin():
    with pytest.raises(ValueError, match="chained_fin"):
        Elan4PtlOptions(reliability=True, chained_fin=True).validate()


def test_lossless_fabric_reliable_mode_works():
    payload = np.random.default_rng(0).integers(0, 256, 512, dtype=np.uint8)
    results, cluster = run_mpi_app(
        pingpong_app(512, iters=3, payload=payload), elan4_options=RELIABLE
    )
    assert results[1] is True


@pytest.mark.parametrize("loss", [0.05, 0.2])
@pytest.mark.parametrize("n", [64, 5000])
def test_delivery_survives_loss(loss, n):
    payload = np.random.default_rng(n).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            buf.write(payload)
            for tag in range(4):
                yield from mpi.comm_world.send(buf, dest=1, tag=tag)
            return "sent"
        else:
            ok = True
            for tag in range(4):
                data, _ = yield from mpi.comm_world.recv(source=0, tag=tag, nbytes=n)
                if not np.array_equal(data, payload):
                    ok = False
            return ok

    results, cluster = run_lossy(app, loss, seed=42)
    assert results[1] is True
    if loss >= 0.2:
        assert cluster.fabric.packets_lost > 0  # the loss really happened


def test_retransmissions_counted():
    def app(mpi):
        ch = mpi.stack.pml.modules[0].reliable
        if mpi.rank == 0:
            buf = mpi.alloc(256)
            for tag in range(6):
                yield from mpi.comm_world.send(buf, dest=1, tag=tag)
            # eager sends complete buffered; wait for the channel to drain
            # (retransmit timers fire at 100 µs granularity)
            while ch.unacked_count():
                yield from mpi.progress()
                yield from mpi.thread.sleep(120.0)
            return ch.retransmissions
        else:
            for tag in range(6):
                yield from mpi.comm_world.recv(source=0, tag=tag, nbytes=256)
            yield from mpi.thread.sleep(2000.0)  # stay alive for retransmits

    results, cluster = run_lossy(app, 0.3, seed=7)
    assert cluster.fabric.packets_lost > 0
    assert results[0] > 0  # retransmits happened and were accounted


def test_duplicates_are_suppressed():
    """An ACK loss forces a retransmission of an already-delivered
    fragment: the receiver must drop the duplicate, not re-match it."""

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(64)
            for tag in range(8):
                yield from mpi.comm_world.send(buf, dest=1, tag=tag)
            return "sent"
        else:
            for tag in range(8):
                yield from mpi.comm_world.recv(source=0, tag=tag, nbytes=64)
            ch = mpi.stack.pml.modules[0].reliable
            return (ch.duplicates_dropped, mpi.stack.pml.matching.unexpected_count())

    results, cluster = run_lossy(app, 0.35, seed=3)
    dups, leftover_unexpected = results[1]
    assert cluster.fabric.packets_lost > 0
    assert leftover_unexpected == 0  # no duplicate ever reached matching


def test_ordering_preserved_under_loss():
    def app(mpi):
        if mpi.rank == 0:
            for i in range(12):
                buf = mpi.alloc(32)
                buf.fill(i)
                yield from mpi.comm_world.send(buf, dest=1, tag=0)
        else:
            got = []
            for _ in range(12):
                data, _ = yield from mpi.comm_world.recv(source=0, tag=0, nbytes=32)
                got.append(int(data[0]))
            return got

    results, _ = run_lossy(app, 0.25, seed=11)
    assert results[1] == list(range(12))


def test_rendezvous_survives_control_loss():
    """RNDV / FIN_ACK control fragments are exactly what loss hits; the
    bulk RDMA data rides the lossless link layer."""
    n = 100_000
    payload = np.random.default_rng(1).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            buf.write(payload)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
            return "sent"
        else:
            data, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=n)
            return bool(np.array_equal(data, payload))

    results, cluster = run_lossy(app, 0.3, seed=13)
    assert results[1] is True


def test_total_blackout_fails_requests_not_hangs():
    """If the peer never acknowledges (100%-ish loss), the retry budget
    fails the pending request with a diagnosis instead of wedging the job.
    A *synchronous* send is used: its completion needs the handshake, so
    the blackout is visible (a buffered eager send completes locally)."""
    cluster = Cluster(nodes=2)
    cluster.fabric.set_loss(0.999999, seed=1)

    def app(mpi):
        ch = mpi.stack.pml.modules[0].reliable
        ch.max_retries = 3  # keep the test fast
        if mpi.rank == 0:
            buf = mpi.alloc(64)
            with pytest.raises(ReliabilityError, match="presumed dead"):
                yield from mpi.comm_world.ssend(buf, dest=1, tag=1)
            ch.close()  # abandon the dead peer so finalize can proceed
            return "diagnosed"
        else:
            yield from mpi.thread.sleep(3_000.0)
            ch.close()
            return "idle"

    results, cluster = run_lossy(app, 0.999999, seed=1)
    assert results[0] == "diagnosed"


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(loss=st.floats(0.0, 0.4), seed=st.integers(0, 50))
def test_property_any_loss_rate_is_lossless_end_to_end(loss, seed):
    payload = np.random.default_rng(seed).integers(0, 256, 1500, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(1500)
            buf.write(payload)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
        else:
            data, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=1500)
            return bool(np.array_equal(data, payload))

    results, _ = run_lossy(app, loss, seed=seed)
    assert results[1] is True
