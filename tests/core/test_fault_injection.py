"""Fault injection: abrupt deaths, stale addressing, and why the §4.1
drain discipline exists."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.addr import MmuTrap
from repro.elan4.capability import CapabilityError
from repro.elan4.rdma import RdmaDescriptor
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import RteJob


def test_send_to_departed_rank_fails_loudly():
    """After a peer finalizes, its VPID is dead: a stale send raises at the
    sender instead of silently writing into recycled resources."""
    cluster = Cluster(nodes=2)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())

    def short_lived(mpi):
        yield mpi.sim.timeout(0)
        return "gone"

    def sender(mpi):
        yield from mpi.thread.sleep(500.0)  # peer is long gone
        with pytest.raises(CapabilityError):
            yield from mpi.comm_world.send(b"too late", dest=1, tag=0)
        return "caught"

    job.launch(0, sender, group="world", group_count=2)
    job.launch(1, short_lived, group="world", group_count=2)
    results = job.wait()
    assert results == {0: "caught", 1: "gone"}


def test_nic_completes_inflight_rdma_after_app_thread_dies():
    """The NIC is autonomous: killing the application thread does NOT stop
    an issued RDMA.  The data still lands (mappings intact) — which is
    exactly why finalize must wait for the NIC to drain before releasing
    anything (§4.1)."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 64 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    src.fill(0x5A)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        yield from a.rdma_issue(thread, desc)
        yield thread.sim.timeout(10_000.0)  # would linger...

    t = cluster.nodes[0].spawn_thread(issuer)
    cluster.sim.run(until=5.0)
    t.process.interrupt("killed")  # abrupt death right after issuing
    cluster.run()
    assert (dst.read() == 0x5A).all()  # transfer completed anyway
    assert a.pending_ops() == 0
    cluster.assert_no_drops()


def test_teardown_without_drain_traps_in_the_mmu():
    """The §4.1 hazard made concrete: releasing a context while a DMA
    descriptor is still in flight leaves the descriptor addressing an
    unmapped range — the NIC traps instead of corrupting memory."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 256 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        yield from a.rdma_issue(thread, desc)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.sim.run(until=20.0)  # transfer is mid-flight
    # receiver vanishes WITHOUT draining: tear down its translations
    cluster.nics[1].mmu.unmap_context(b.ctx)
    with pytest.raises(MmuTrap):
        cluster.run()


def test_proper_finalize_before_teardown_is_safe():
    """Same scenario but with the mandated drain: no trap."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 256 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)
    order = []

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(thread, desc)
        yield from thread.block_on(ev.attach_host_word())
        order.append("transfer-done")

    def receiver_leaves(thread):
        yield from thread.sleep(20.0)
        # drain-then-release: wait for OUR pending plus give the writer time
        yield from thread.sleep(2000.0)
        yield from b.finalize(thread)
        order.append("receiver-finalized")

    cluster.nodes[0].spawn_thread(issuer)
    cluster.nodes[1].spawn_thread(receiver_leaves)
    cluster.run()
    assert order == ["transfer-done", "receiver-finalized"]
    cluster.assert_no_drops()


def test_tcp_peer_reset_surfaces_as_error():
    from repro.tcpip import Listener, TcpError, TcpSocket
    from repro.tcpip.stack import IpNetwork

    cluster = Cluster(nodes=2)
    net = IpNetwork(cluster.sim, cluster.config)
    listener = Listener(net, cluster.nodes[1], 5000)
    outcome = []

    def server(t):
        sock = yield from listener.accept(t)
        sock.close()  # dies immediately

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from t.sleep(200.0)
        try:
            yield from sock.send(t, b"x" * 1000)
        except TcpError:
            outcome.append("reset")

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert outcome == ["reset"]


def test_mpi_job_survives_unrelated_rank_traffic_after_restart_reset():
    """reset_peer must not disturb OTHER peers' sequence state."""
    cluster = Cluster(nodes=3)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())

    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.comm_world.send(b"a", dest=2, tag=1)
            mpi.stack.pml.reset_peer(1)  # rank 1 "restarted"
            yield from mpi.comm_world.send(b"b", dest=2, tag=2)  # unaffected
            return "sent"
        if mpi.rank == 2:
            d1, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=8)
            d2, _ = yield from mpi.comm_world.recv(source=0, tag=2, nbytes=8)
            return bytes(d1) + bytes(d2)
        yield mpi.sim.timeout(0)

    job.launch(0, app, group="world", group_count=3)
    job.launch(1, app, group="world", group_count=3)
    job.launch(2, app, group="world", group_count=3)
    results = job.wait()
    assert results[2] == b"ab"
