"""Fault injection: abrupt deaths, stale addressing, and why the §4.1
drain discipline exists."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.addr import MmuTrap
from repro.elan4.capability import CapabilityError
from repro.elan4.rdma import RdmaDescriptor
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import RteJob


def test_send_to_departed_rank_fails_loudly():
    """After a peer finalizes, its VPID is dead: a stale send raises at the
    sender instead of silently writing into recycled resources."""
    cluster = Cluster(nodes=2)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())

    def short_lived(mpi):
        yield mpi.sim.timeout(0)
        return "gone"

    def sender(mpi):
        yield from mpi.thread.sleep(500.0)  # peer is long gone
        with pytest.raises(CapabilityError):
            yield from mpi.comm_world.send(b"too late", dest=1, tag=0)
        return "caught"

    job.launch(0, sender, group="world", group_count=2)
    job.launch(1, short_lived, group="world", group_count=2)
    results = job.wait()
    assert results == {0: "caught", 1: "gone"}


def test_nic_completes_inflight_rdma_after_app_thread_dies():
    """The NIC is autonomous: killing the application thread does NOT stop
    an issued RDMA.  The data still lands (mappings intact) — which is
    exactly why finalize must wait for the NIC to drain before releasing
    anything (§4.1)."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 64 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    src.fill(0x5A)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        yield from a.rdma_issue(thread, desc)
        yield thread.sim.timeout(10_000.0)  # would linger...

    t = cluster.nodes[0].spawn_thread(issuer)
    cluster.sim.run(until=5.0)
    t.process.interrupt("killed")  # abrupt death right after issuing
    cluster.run()
    assert (dst.read() == 0x5A).all()  # transfer completed anyway
    assert a.pending_ops() == 0
    cluster.assert_no_drops()


def test_teardown_without_drain_traps_in_the_mmu():
    """The §4.1 hazard made concrete: releasing a context while a DMA
    descriptor is still in flight leaves the descriptor addressing an
    unmapped range — the NIC traps instead of corrupting memory."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 256 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        yield from a.rdma_issue(thread, desc)

    cluster.nodes[0].spawn_thread(issuer)
    cluster.sim.run(until=20.0)  # transfer is mid-flight
    # receiver vanishes WITHOUT draining: tear down its translations
    cluster.nics[1].mmu.unmap_context(b.ctx)
    with pytest.raises(MmuTrap):
        cluster.run()


def test_proper_finalize_before_teardown_is_safe():
    """Same scenario but with the mandated drain: no trap."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    n = 256 * 1024
    src = a.space.alloc(n)
    dst = b.space.alloc(n)
    e4_src, e4_dst = a.map_buffer(src), b.map_buffer(dst)
    order = []

    def issuer(thread):
        desc = RdmaDescriptor(op="write", local=e4_src, remote=e4_dst,
                              nbytes=n, remote_vpid=b.vpid)
        ev = yield from a.rdma_issue(thread, desc)
        yield from thread.block_on(ev.attach_host_word())
        order.append("transfer-done")

    def receiver_leaves(thread):
        yield from thread.sleep(20.0)
        # drain-then-release: wait for OUR pending plus give the writer time
        yield from thread.sleep(2000.0)
        yield from b.finalize(thread)
        order.append("receiver-finalized")

    cluster.nodes[0].spawn_thread(issuer)
    cluster.nodes[1].spawn_thread(receiver_leaves)
    cluster.run()
    assert order == ["transfer-done", "receiver-finalized"]
    cluster.assert_no_drops()


def test_tcp_peer_reset_surfaces_as_error():
    from repro.tcpip import Listener, TcpError, TcpSocket
    from repro.tcpip.stack import IpNetwork

    cluster = Cluster(nodes=2)
    net = IpNetwork(cluster.sim, cluster.config)
    listener = Listener(net, cluster.nodes[1], 5000)
    outcome = []

    def server(t):
        sock = yield from listener.accept(t)
        sock.close()  # dies immediately

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        yield from t.sleep(200.0)
        try:
            yield from sock.send(t, b"x" * 1000)
        except TcpError:
            outcome.append("reset")

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert outcome == ["reset"]


def test_mpi_job_survives_unrelated_rank_traffic_after_restart_reset():
    """reset_peer must not disturb OTHER peers' sequence state."""
    cluster = Cluster(nodes=3)
    job = RteJob(cluster, stack_factory=make_mpi_stack_factory())

    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.comm_world.send(b"a", dest=2, tag=1)
            mpi.stack.pml.reset_peer(1)  # rank 1 "restarted"
            yield from mpi.comm_world.send(b"b", dest=2, tag=2)  # unaffected
            return "sent"
        if mpi.rank == 2:
            d1, _ = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=8)
            d2, _ = yield from mpi.comm_world.recv(source=0, tag=2, nbytes=8)
            return bytes(d1) + bytes(d2)
        yield mpi.sim.timeout(0)

    job.launch(0, app, group="world", group_count=3)
    job.launch(1, app, group="world", group_count=3)
    job.launch(2, app, group="world", group_count=3)
    results = job.wait()
    assert results[2] == b"ab"


# ------------------------------------------------------------ fault campaigns
def _run_mid_transfer_campaign(seed):
    """A seeded campaign that kills the plane-0 root switch AND all of rail
    1 while a cross-quad message stream is in flight.  Every send must
    still complete with correct data: the switch death reroutes through
    the redundant plane, the rail death fails traffic over to rail 0."""
    from repro.core.ptl.elan4.module import Elan4PtlOptions
    from repro.faults import FaultInjector, FaultPlan

    n = 32 * 1024
    iters = 8
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, n, dtype=np.uint8) for _ in range(iters)]

    def sender(mpi):
        yield from mpi.thread.sleep(2000.0)
        reqs = []
        for i in range(iters):
            buf = mpi.alloc(n)
            buf.write(payloads[i])
            reqs.append((yield from mpi.comm_world.isend(buf, dest=1, tag=i)))
        yield from mpi.waitall(reqs)  # rendezvous in flight on BOTH rails
        return mpi.now

    def receiver(mpi):
        got = []
        for i in range(iters):
            data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=n)
            got.append(data.copy())
        return got

    cluster = Cluster(nodes=16, rails=2)
    options = Elan4PtlOptions(reliability=True, chained_fin=False)
    job = RteJob(
        cluster, stack_factory=make_mpi_stack_factory(elan4_options=options)
    )
    rails = ("elan4", "elan4:1")
    job.launch(0, sender, group="world", group_count=2, transports=rails)
    # rank 1 on node 5: a different quad, so traffic crosses the root stage
    job.launch(1, receiver, node_id=5, group="world", group_count=2,
               transports=rails)

    plan = (
        FaultPlan("mid-transfer", seed=seed)
        .switch_death(2450.0, "sw1.0", rail=0)
        .rail_down(2550.0, rail=1)
    )
    injector = FaultInjector(cluster, plan, job=job)
    injector.arm()
    results = job.wait()
    return results, injector, payloads, cluster.sim.now


def test_campaign_switch_and_rail_death_mid_transfer():
    results, injector, payloads, _ = _run_mid_transfer_campaign(seed=7)
    assert [len(t) for t in injector.trace] and len(injector.trace) == 2
    for i, data in enumerate(results[1]):
        assert np.array_equal(data, payloads[i]), f"message {i} corrupted"
    stats = injector.stats()
    assert stats["reroutes"] > 0  # plane failover really happened
    assert stats["failovers"] > 0  # PML moved traffic off rail 1
    assert stats["dead_peers"] == 0  # nobody was declared dead


def test_campaign_is_deterministic():
    """Same seed, same campaign, same workload — identical fault traces,
    recovery statistics, and finishing time, run twice."""
    r1, inj1, _, end1 = _run_mid_transfer_campaign(seed=11)
    r2, inj2, _, end2 = _run_mid_transfer_campaign(seed=11)
    assert inj1.trace == inj2.trace
    assert inj1.stats() == inj2.stats()
    assert end1 == end2
    assert r1[0] == r2[0]  # sender finish times identical
    for a, b in zip(r1[1], r2[1]):
        assert np.array_equal(a, b)


def test_campaign_partition_scopes_failure_to_dead_peer():
    """Partitioning one node fails exactly that peer's requests with
    ReliabilityError; traffic to the surviving peer completes."""
    from repro.core.ptl.elan4.module import Elan4PtlOptions
    from repro.core.ptl.elan4.reliability import ReliabilityError
    from repro.faults import FaultInjector, FaultPlan

    cluster = Cluster(nodes=3)
    options = Elan4PtlOptions(reliability=True, chained_fin=False)
    job = RteJob(
        cluster, stack_factory=make_mpi_stack_factory(elan4_options=options)
    )

    def rank0(mpi):
        yield from mpi.comm_world.send(b"pre", dest=1, tag=0)
        yield from mpi.thread.sleep(2500.0)  # node 2 is now partitioned
        # shrink the retry budget only for the doomed probe (a sleeping
        # sender processes no acks, so a tight budget set earlier would
        # misdiagnose the healthy peer too)
        mpi.stack.pml.modules[0].reliable.max_retries = 3
        with pytest.raises(ReliabilityError, match="presumed dead"):
            yield from mpi.comm_world.ssend(b"void", dest=2, tag=1)
        assert 2 in mpi.stack.pml.dead_peers
        # the surviving peer is unaffected — before AND after the failure
        yield from mpi.comm_world.send(b"post", dest=1, tag=2)
        return "scoped"

    def rank1(mpi):
        d1, _ = yield from mpi.comm_world.recv(source=0, tag=0, nbytes=8)
        d2, _ = yield from mpi.comm_world.recv(source=0, tag=2, nbytes=8)
        return bytes(d1) + bytes(d2)

    def rank2(mpi):
        # stays alive (but unreachable) for the campaign's duration: the
        # sender must diagnose the partition itself, not see a clean exit
        yield from mpi.thread.sleep(12_000.0)
        return "idle"

    job.launch(0, rank0, group="world", group_count=3)
    job.launch(1, rank1, group="world", group_count=3)
    job.launch(2, rank2, group="world", group_count=3)

    plan = FaultPlan("partition").partition_node(2000.0, 2)
    injector = FaultInjector(cluster, plan, job=job)
    injector.arm()
    results = job.wait()
    assert results[0] == "scoped"
    assert results[1] == b"prepost"
    assert injector.stats()["dead_peers"] == 1
