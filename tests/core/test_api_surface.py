"""Coverage for small public APIs not exercised elsewhere."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import default_config
from repro.hw.cpu import HostWordEvent, Mutex


def test_elan_event_host_wait():
    cluster = Cluster(nodes=1)
    ctx = cluster.claim_context(0)
    ev = ctx.make_event(count=1, name="hw")
    ev.attach_host_word()
    out = []

    def body(t):
        v = yield from ev.host_wait(t)
        out.append((v, cluster.sim.now))

    cluster.nodes[0].spawn_thread(body)
    cluster.sim.schedule(5.0, ev.fire, "val")
    cluster.run()
    assert out[0][0] == "val"


def test_elan_event_host_wait_requires_word():
    from repro.elan4.event import EventRaceError

    cluster = Cluster(nodes=1)
    ctx = cluster.claim_context(0)
    ev = ctx.make_event()

    def body(t):
        with pytest.raises(EventRaceError):
            yield from ev.host_wait(t)

    cluster.nodes[0].spawn_thread(body)
    cluster.run()


def test_event_disarm_interrupt():
    cluster = Cluster(nodes=1)
    ctx = cluster.claim_context(0)
    ev = ctx.make_event()
    ev.attach_host_word()
    ev.arm_interrupt()
    ev.arm_interrupt(False)
    ev.fire()
    cluster.run()
    assert cluster.nodes[0].interrupts_delivered == 0
    assert ev.poll()


def test_mutex_locked_property():
    cluster = Cluster(nodes=1)
    cfg = cluster.config
    mutex = Mutex(cluster.sim, cfg)
    states = []

    def body(t):
        states.append(mutex.locked)
        yield from mutex.acquire(t)
        states.append(mutex.locked)
        mutex.release(t)
        states.append(mutex.locked)

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert states == [False, True, False]


def test_runnable_backlog_counts_waiting_threads():
    cluster = Cluster(nodes=1)  # 2 CPUs
    sched = cluster.nodes[0].scheduler
    peak = []

    def hog(t):
        yield from t.compute(50.0)

    def probe(t):
        yield from t.sleep(5.0)
        peak.append(sched.runnable_backlog)

    for i in range(3):
        sched.spawn(hog, f"hog{i}")  # 3 hogs on 2 CPUs
    cluster.sim.spawn(_probe_backlog(cluster, sched, peak))
    cluster.run()
    assert max(peak) >= 1


def _probe_backlog(cluster, sched, peak):
    yield cluster.sim.timeout(10.0)
    peak.append(sched.runnable_backlog)


def test_tcp_socket_connected_and_pending():
    from repro.tcpip import Listener, TcpSocket
    from repro.tcpip.stack import IpNetwork

    cluster = Cluster(nodes=2)
    net = IpNetwork(cluster.sim, cluster.config)
    listener = Listener(net, cluster.nodes[1], 5000)
    out = {}

    def server(t):
        sock = yield from listener.accept(t)
        out["server_connected"] = sock.connected
        yield from t.sleep(300.0)
        out["pending"] = sock.pending_bytes

    def client(t):
        sock = yield from TcpSocket.connect(net, t, cluster.nodes[0], 1, 5000)
        out["client_connected"] = sock.connected
        yield from sock.send(t, b"buffered-bytes")

    cluster.nodes[1].spawn_thread(server)
    cluster.nodes[0].spawn_thread(client)
    cluster.run()
    assert out["server_connected"] and out["client_connected"]
    assert out["pending"] == len(b"buffered-bytes")


def test_intercomm_sizes_and_disconnect():
    from tests.conftest import run_mpi_app

    def child(mpi):
        parent = yield from mpi.get_parent()
        assert parent.local_size == 1
        assert parent.remote_size == 2
        yield from parent.send(b"x", dest=0, tag=1)

    def app(mpi):
        intercomm = yield from mpi.spawn([child])
        assert intercomm.local_size == 2
        assert intercomm.remote_size == 1
        if mpi.rank == 0:
            yield from intercomm.recv(tag=1)
        # keep both parents registered until the child has connected back
        yield from mpi.comm_world.barrier()
        intercomm.disconnect()
        assert intercomm.remote_size == 0
        return True

    results, _ = run_mpi_app(app, nodes=3, np_=2)
    assert results[0] is True


def test_config_wire_and_dma_helpers():
    cfg = default_config()
    assert cfg.pci_dma_us(0) == cfg.pci_dma_setup_us
    assert cfg.pci_dma_us(1000) > cfg.pci_dma_us(100)
    one_hop = cfg.wire_us(1024, hops=1)
    two_hop = cfg.wire_us(1024, hops=2)
    assert two_hop - one_hop == pytest.approx(cfg.switch_hop_us + cfg.wire_prop_us)


def test_mmu_has_context():
    from repro.elan4.addr import Elan4Mmu
    from repro.hw.memory import AddressSpace

    mmu = Elan4Mmu()
    assert not mmu.has_context(0x400)
    space = AddressSpace("x")
    e4 = mmu.map(0x400, space, space.alloc(16).addr, 16)
    assert mmu.has_context(0x400)
    mmu.unmap(0x400, e4)
    assert not mmu.has_context(0x400)
