"""Whole-stack property tests: randomized traffic schedules through the
full MPI/PML/PTL/NIC/fabric pipeline, checked for integrity, matching
order, and clean teardown."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ptl.elan4.module import Elan4PtlOptions
from tests.conftest import run_mpi_app

# sizes straddling every protocol boundary
SIZE = st.sampled_from([0, 1, 63, 64, 1983, 1984, 1985, 4000, 4096, 20_000])


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    msgs=st.lists(
        st.tuples(SIZE, st.integers(0, 3)),  # (size, tag)
        min_size=1,
        max_size=10,
    ),
    scheme=st.sampled_from(["read", "write"]),
    prepost=st.booleans(),
)
def test_property_random_schedule_is_lossless_and_ordered(msgs, scheme, prepost):
    """Any mix of sizes/tags between two ranks: every byte arrives intact,
    same-tag messages match in send order, and the job tears down clean."""
    rng = np.random.default_rng(hash(tuple(msgs)) % (2**32))
    payloads = [rng.integers(0, 256, max(n, 1), dtype=np.uint8)[:n] for n, _ in msgs]

    def app(mpi):
        if mpi.rank == 0:
            reqs = []
            for (n, tag), payload in zip(msgs, payloads):
                buf = mpi.alloc(max(n, 1))
                if n:
                    buf.write(payload)
                reqs.append(
                    (yield from mpi.comm_world.isend(buf, dest=1, tag=tag, nbytes=n))
                )
            yield from mpi.waitall(reqs)
            return "sent"
        else:
            # receive per tag, in order within each tag
            by_tag = {}
            for i, (n, tag) in enumerate(msgs):
                by_tag.setdefault(tag, []).append(i)
            reqs = {}
            if prepost:
                for tag, idxs in by_tag.items():
                    for i in idxs:
                        n = msgs[i][0]
                        reqs[i] = (
                            yield from mpi.comm_world.irecv(n, source=0, tag=tag)
                        )
                for i in sorted(reqs):
                    yield from mpi.wait(reqs[i])
            else:
                for tag, idxs in by_tag.items():
                    for i in idxs:
                        n = msgs[i][0]
                        reqs[i] = (
                            yield from mpi.comm_world.irecv(n, source=0, tag=tag)
                        )
                        yield from mpi.wait(reqs[i])
            ok = True
            for i, (n, tag) in enumerate(msgs):
                got = reqs[i].transport["user_buffer"].read(0, n)
                if n and not np.array_equal(got, payloads[i]):
                    ok = False
            return ok

    results, cluster = run_mpi_app(
        app, elan4_options=Elan4PtlOptions(rdma_scheme=scheme)
    )
    assert results[0] == "sent"
    assert results[1] is True
    cluster.assert_no_drops()
    # teardown is clean: every context returned, nothing pending anywhere
    assert cluster.capability.live_vpids == []
    for nic in cluster.nics:
        assert not nic._pending or all(v == 0 for v in nic._pending.values())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    np_=st.integers(2, 5),
    op=st.sampled_from(["sum", "max", "min"]),
    count=st.integers(1, 64),
    seed=st.integers(0, 1000),
)
def test_property_allreduce_matches_numpy(np_, op, count, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.integers(-1000, 1000, count).astype(np.int64) for _ in range(np_)]
    fn = {"sum": np.sum, "max": np.max, "min": np.min}[op]
    expected = fn(np.stack(arrays), axis=0)

    def app(mpi):
        out = yield from mpi.comm_world.allreduce(arrays[mpi.rank], op=op)
        return np.array_equal(out, expected)

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    assert all(results.values())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    np_=st.integers(2, 4),
    chunk_sizes=st.lists(st.integers(0, 500), min_size=4, max_size=4),
    seed=st.integers(0, 100),
)
def test_property_alltoall_permutes_correctly(np_, chunk_sizes, seed):
    rng = np.random.default_rng(seed)
    # chunks[src][dst] of varying sizes
    blobs = {
        (s, d): rng.integers(0, 256, max(chunk_sizes[(s + d) % 4], 1), dtype=np.uint8)[
            : chunk_sizes[(s + d) % 4]
        ].tobytes()
        for s in range(np_)
        for d in range(np_)
    }

    def app(mpi):
        chunks = [blobs[(mpi.rank, d)] for d in range(mpi.size)]
        out = yield from mpi.comm_world.alltoall(chunks)
        return all(out[s] == blobs[(s, mpi.rank)] for s in range(mpi.size))

    results, _ = run_mpi_app(app, nodes=min(np_, 8), np_=np_)
    assert all(results.values())
