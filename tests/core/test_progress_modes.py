"""Tests of the four progress modes (§4.3, §6.4 / Table 1)."""

import pytest

from repro.core.ptl.elan4.module import Elan4PtlOptions
from tests.conftest import pingpong_app, pingpong_latency, run_mpi_app

MODES = [
    ("polling", "none"),
    ("interrupt", "none"),
    ("one-thread", "one-queue"),
    ("two-thread", "two-queue"),
]


@pytest.mark.parametrize("mode,cq", MODES)
@pytest.mark.parametrize("n", [4, 4096])
def test_all_modes_deliver_correctly(mode, cq, n):
    import numpy as np

    payload = np.random.default_rng(n).integers(0, 256, n, dtype=np.uint8)
    results, cluster = run_mpi_app(
        pingpong_app(n, iters=3, payload=payload),
        progress_mode=mode,
        elan4_options=Elan4PtlOptions(completion_queue=cq),
    )
    assert results[1] is True
    cluster.assert_no_drops()


def _lat(mode, cq, n):
    return pingpong_latency(
        n, progress_mode=mode, elan4_options=Elan4PtlOptions(completion_queue=cq)
    )


def test_table1_ordering_at_4b():
    """Table 1 ordering: Basic < Interrupt < One-Thread < Two-Thread."""
    lats = [_lat(m, cq, 4) for m, cq in MODES]
    assert lats == sorted(lats)


def test_table1_ordering_at_4kb():
    lats = [_lat(m, cq, 4096) for m, cq in MODES]
    assert lats == sorted(lats)


def test_interrupt_cost_matches_config():
    """The Basic→Interrupt gap at 4 B is dominated by one ≈10 µs interrupt
    per one-way leg (§6.4: "about 10us due to the interrupt")."""
    basic = _lat("polling", "none", 4)
    intr = _lat("interrupt", "none", 4)
    delta = intr - basic
    assert 9.0 < delta < 17.0


def test_threading_overhead_band():
    """§6.4: "The total threading overhead is around 18us"."""
    basic = _lat("polling", "none", 4)
    one = _lat("one-thread", "one-queue", 4)
    assert 13.0 < one - basic < 24.0


def test_two_threads_slower_than_one():
    """§6.4: one-thread progress wins — two threads contend for CPU."""
    one4 = _lat("one-thread", "one-queue", 4)
    two4 = _lat("two-thread", "two-queue", 4)
    assert two4 > one4
    one4k = _lat("one-thread", "one-queue", 4096)
    two4k = _lat("two-thread", "two-queue", 4096)
    assert two4k > one4k
    # the gap grows with message size (more completions per message)
    assert (two4k - one4k) >= (two4 - one4) * 0.9


def test_one_thread_requires_combined_queue():
    with pytest.raises(Exception, match="one-thread"):
        run_mpi_app(
            pingpong_app(4, iters=1),
            progress_mode="one-thread",
            elan4_options=Elan4PtlOptions(completion_queue="two-queue"),
        )


def test_two_thread_requires_separate_queue():
    with pytest.raises(Exception, match="two-thread"):
        run_mpi_app(
            pingpong_app(4, iters=1),
            progress_mode="two-thread",
            elan4_options=Elan4PtlOptions(completion_queue="one-queue"),
        )


def test_progress_threads_shut_down_cleanly():
    results, cluster = run_mpi_app(
        pingpong_app(4, iters=2),
        progress_mode="one-thread",
        elan4_options=Elan4PtlOptions(completion_queue="one-queue"),
    )
    # no thread left alive anywhere (the RTE seed's accept loop is the one
    # daemon that intentionally outlives jobs — it serves spawns/restarts)
    for node in cluster.nodes:
        for t in node.scheduler.threads:
            if "accept" in t.name:
                continue
            assert not t.is_alive, t.name


def test_interrupts_actually_delivered_in_blocking_modes():
    results, cluster = run_mpi_app(
        pingpong_app(4, iters=2),
        progress_mode="interrupt",
    )
    assert sum(n.interrupts_delivered for n in cluster.nodes) > 0


def test_polling_mode_uses_no_interrupts():
    results, cluster = run_mpi_app(pingpong_app(4, iters=2))
    assert sum(n.interrupts_delivered for n in cluster.nodes) == 0
