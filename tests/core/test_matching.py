"""Unit tests for the PML matching engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.header import FragmentHeader, HDR_MATCH
from repro.core.pml.matching import IncomingFragment, MatchingEngine
from repro.core.request import ANY_SOURCE, ANY_TAG, RecvRequest
from repro.sim import Simulator


def frag(src=0, tag=1, seq=0, ctx=0, msg_len=10):
    hdr = FragmentHeader(
        type=HDR_MATCH, src_rank=src, ctx_id=ctx, tag=tag, seq=seq,
        msg_len=msg_len, frag_len=msg_len, frag_offset=0, src_req=1, dst_req=0,
    )
    return IncomingFragment(header=hdr, data=None, ptl=None)


def recv(sim, src=0, tag=1, ctx=0, nbytes=10):
    return RecvRequest(sim, None, nbytes, src, tag, ctx)


def test_posted_then_incoming_matches():
    sim = Simulator()
    eng = MatchingEngine()
    req = recv(sim)
    assert eng.post(req) is None
    results = eng.incoming(frag())
    assert results == [(results[0][0], req)]
    assert eng.posted_count() == 0


def test_incoming_then_posted_matches_unexpected():
    sim = Simulator()
    eng = MatchingEngine()
    f = frag()
    assert eng.incoming(f) == [(f, None)]
    assert eng.unexpected_count() == 1
    req = recv(sim)
    assert eng.post(req) is f
    assert eng.unexpected_count() == 0


def test_tag_and_source_must_match():
    sim = Simulator()
    eng = MatchingEngine()
    eng.post(recv(sim, src=1, tag=5))
    results = eng.incoming(frag(src=0, tag=5))
    assert results[0][1] is None  # wrong source
    assert eng.posted_count() == 1


def test_wildcards_match_anything():
    sim = Simulator()
    eng = MatchingEngine()
    req = recv(sim, src=ANY_SOURCE, tag=ANY_TAG)
    eng.post(req)
    results = eng.incoming(frag(src=3, tag=42))
    assert results[0][1] is req


def test_contexts_partition_matching():
    sim = Simulator()
    eng = MatchingEngine()
    req = recv(sim, ctx=1)
    eng.post(req)
    assert eng.incoming(frag(ctx=2))[0][1] is None
    assert eng.incoming(frag(ctx=1, seq=0))[0][1] is req


def test_posted_receives_match_in_post_order():
    sim = Simulator()
    eng = MatchingEngine()
    r1 = recv(sim)
    r2 = recv(sim)
    eng.post(r1)
    eng.post(r2)
    assert eng.incoming(frag(seq=0))[0][1] is r1
    assert eng.incoming(frag(seq=1))[0][1] is r2


def test_unexpected_matched_oldest_first():
    sim = Simulator()
    eng = MatchingEngine()
    f0, f1 = frag(seq=0, msg_len=1), frag(seq=1, msg_len=2)
    eng.incoming(f0)
    eng.incoming(f1)
    assert eng.post(recv(sim)) is f0
    assert eng.post(recv(sim)) is f1


def test_out_of_order_fragments_parked_until_gap_closes():
    """Sender order must be match order even if PTLs deliver out of order
    (multi-network reordering, §6.5 crosstalk)."""
    sim = Simulator()
    eng = MatchingEngine()
    r1, r2, r3 = recv(sim), recv(sim), recv(sim)
    for r in (r1, r2, r3):
        eng.post(r)
    # seq 2 and 1 arrive before seq 0
    assert eng.incoming(frag(seq=2, msg_len=3)) == []
    assert eng.incoming(frag(seq=1, msg_len=2)) == []
    assert eng.parked_count() == 2
    results = eng.incoming(frag(seq=0, msg_len=1))
    assert [req for _, req in results] == [r1, r2, r3]
    assert [f.header.msg_len for f, _ in results] == [1, 2, 3]
    assert eng.parked_count() == 0


def test_per_source_ordering_is_independent():
    sim = Simulator()
    eng = MatchingEngine()
    # src 5's seq stream doesn't gate src 6's
    assert eng.incoming(frag(src=6, seq=0)) != []
    assert eng.incoming(frag(src=5, seq=1)) == []  # parked
    assert eng.incoming(frag(src=6, seq=1)) != []
    assert eng.incoming(frag(src=5, seq=0)) != []


def test_cancel_posted_receive():
    sim = Simulator()
    eng = MatchingEngine()
    req = recv(sim)
    eng.post(req)
    assert eng.cancel(req)
    assert not eng.cancel(req)
    assert eng.incoming(frag())[0][1] is None


@settings(max_examples=50, deadline=None)
@given(
    order=st.permutations(list(range(6))),
    post_first=st.booleans(),
)
def test_property_any_arrival_order_matches_in_seq_order(order, post_first):
    """However fragments are reordered in flight, receives match them in
    sender sequence order."""
    sim = Simulator()
    eng = MatchingEngine()
    reqs = []
    if post_first:
        for _ in range(6):
            r = recv(sim, src=ANY_SOURCE, tag=ANY_TAG)
            eng.post(r)
            reqs.append(r)
    matched = []
    for seq in order:
        for f, req in eng.incoming(frag(seq=seq, msg_len=seq + 1)):
            if req is not None:
                matched.append((f.header.seq, req))
    if not post_first:
        for _ in range(6):
            r = recv(sim, src=ANY_SOURCE, tag=ANY_TAG)
            f = eng.post(r)
            assert f is not None
            matched.append((f.header.seq, r))
    assert [seq for seq, _ in matched] == [0, 1, 2, 3, 4, 5]
    if post_first:
        assert [r for _, r in matched] == reqs
