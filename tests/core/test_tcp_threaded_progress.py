"""The §4.3 contrast, executable: one select-style progress thread covers
ALL of PTL/TCP's sockets, while PTL/Elan4 needed the shared completion
queue design to block on anything at all."""

import numpy as np
import pytest

from tests.conftest import pingpong_app, run_mpi_app


def test_tcp_one_thread_progress_delivers():
    payload = np.random.default_rng(3).integers(0, 256, 512, dtype=np.uint8)
    results, cluster = run_mpi_app(
        pingpong_app(512, iters=3, payload=payload),
        transports=("tcp",),
        progress_mode="one-thread",
    )
    assert results[1] is True


def test_tcp_one_thread_covers_multiple_peers():
    """One progress thread, many sockets: messages from several peers are
    all fielded by the same select loop."""

    def app(mpi):
        if mpi.rank == 0:
            got = []
            for _ in range(mpi.size - 1):
                data, st = yield from mpi.comm_world.recv(nbytes=64)
                got.append(st.source)
            return sorted(got)
        else:
            yield from mpi.thread.sleep(mpi.rank * 40.0)
            buf = mpi.alloc(64)
            yield from mpi.comm_world.send(buf, dest=0, tag=1)

    results, cluster = run_mpi_app(
        app, nodes=4, np_=4, transports=("tcp",), progress_mode="one-thread"
    )
    assert results[0] == [1, 2, 3]
    # exactly one progress thread per rank was created
    for rank, proc in {0: None}.items():
        pass
    progress_threads = [
        t
        for node in cluster.nodes
        for t in node.scheduler.threads
        if "progress-tcp" in t.name
    ]
    assert len(progress_threads) == 4


def test_tcp_progress_threads_shut_down():
    results, cluster = run_mpi_app(
        pingpong_app(64, iters=2),
        transports=("tcp",),
        progress_mode="one-thread",
    )
    for node in cluster.nodes:
        for t in node.scheduler.threads:
            if "progress-tcp" in t.name:
                assert not t.is_alive


def test_tcp_two_thread_mode_rejected():
    with pytest.raises(Exception, match="one-thread"):
        run_mpi_app(
            pingpong_app(64, iters=1),
            transports=("tcp",),
            progress_mode="two-thread",
        )


def test_mixed_transports_threaded():
    """elan4 (one-queue) + tcp under one-thread progress: each transport
    gets its style of progress thread; traffic prefers elan4."""
    from repro.core.ptl.elan4.module import Elan4PtlOptions

    results, cluster = run_mpi_app(
        pingpong_app(256, iters=2),
        transports=("elan4", "tcp"),
        progress_mode="one-thread",
        elan4_options=Elan4PtlOptions(completion_queue="one-queue"),
    )
    assert results[1] is True
    names = {
        t.name.split(":")[-1]
        for node in cluster.nodes
        for t in node.scheduler.threads
        if "progress" in t.name
    }
    assert any("elan4" in n for n in names)
    assert any("tcp" in n for n in names)
