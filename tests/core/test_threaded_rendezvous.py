"""Regression: rendezvous-size transfers under thread-blocking progress.

The historical failure: ``make_mpi_stack_factory(progress_mode="one-thread")``
kept the Elan4 default ``completion_queue="none"`` (per-descriptor host
words), which a progress thread parked on the receive queue can never see.
The receiver's RDMA-read completion handler therefore never ran, its
watchdog re-issued the pull after the sender's NIC-chained FIN_ACK had
already unmapped the source buffer, and the retried read died with
``MmuTrap: no translation for E4Addr(ctx=1024, 0x100000)``.

The stack now auto-selects the §6.2 queue strategy per progress mode
(one-thread → one-queue, two-thread → two-queue), and an explicitly
misconfigured combination fails loudly at startup instead of trapping
mid-rendezvous.
"""

import numpy as np
import pytest

from repro.core.ptl.base import PtlError
from repro.core.ptl.elan4.module import Elan4PtlOptions
from tests.conftest import pingpong_app, run_mpi_app


@pytest.mark.parametrize("mode", ["one-thread", "two-thread"])
@pytest.mark.parametrize("nbytes", [32768, 262144])
def test_threaded_rendezvous_default_options(mode, nbytes):
    """The exact reproduction from the ROADMAP known-issue: a plain 32 KB
    (and 256 KB) ping-pong with only ``progress_mode`` set."""
    payload = np.random.default_rng(nbytes).integers(0, 256, nbytes, dtype=np.uint8)
    results, cluster = run_mpi_app(
        pingpong_app(nbytes, iters=2, payload=payload),
        progress_mode=mode,
    )
    assert results[1] is True
    cluster.assert_no_drops()


@pytest.mark.parametrize("mode", ["one-thread", "two-thread"])
def test_threaded_progress_rejects_unpollable_completions(mode):
    """completion_queue='none' cannot support blocking progress: the stack
    must refuse at wire-up, not MmuTrap at the first rendezvous."""
    with pytest.raises(PtlError, match="completion_queue"):
        run_mpi_app(
            pingpong_app(4, iters=1),
            progress_mode=mode,
            elan4_options=Elan4PtlOptions(completion_queue="none"),
        )
