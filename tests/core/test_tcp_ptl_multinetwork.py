"""PTL/TCP integration and concurrent multi-network operation."""

import numpy as np
import pytest

from tests.conftest import pingpong_app, pingpong_latency, run_mpi_app


# ------------------------------------------------------------------ PTL/TCP
@pytest.mark.parametrize("n", [0, 4, 1024, 16 * 1024, 200_000])
def test_tcp_transport_lossless(n):
    payload = np.random.default_rng(n + 3).integers(0, 256, max(n, 1), dtype=np.uint8)[:n]
    results, cluster = run_mpi_app(
        pingpong_app(n, iters=2, payload=payload), transports=("tcp",)
    )
    assert results[1] is True


def test_tcp_latency_dwarfs_elan4():
    """The paper's motivation (§1): TCP costs an order of magnitude more."""
    lat_tcp = pingpong_latency(64, transports=("tcp",))
    lat_elan = pingpong_latency(64, transports=("elan4",))
    assert lat_tcp > 5 * lat_elan


def test_tcp_unexpected_message():
    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(256)
            buf.fill(5)
            yield from mpi.comm_world.send(buf, dest=1, tag=9)
            return "sent"
        else:
            yield from mpi.thread.sleep(500.0)
            data, st = yield from mpi.comm_world.recv(source=0, tag=9, nbytes=256)
            return int(data[0])

    results, _ = run_mpi_app(app, transports=("tcp",))
    assert results[1] == 5


def test_tcp_rendezvous_multi_fragment():
    """A >64 KB message streams as multiple FRAG fragments after the ACK."""
    n = 300_000
    payload = np.random.default_rng(4).integers(0, 256, n, dtype=np.uint8)
    results, cluster = run_mpi_app(
        pingpong_app(n, iters=1, payload=payload), transports=("tcp",)
    )
    assert results[1] is True


# ------------------------------------------------------------ multi-network
def test_both_transports_loaded_elan4_preferred():
    """With TCP and Elan4 both active, the scheduling heuristic picks
    Elan4; latency matches the Elan4-only stack."""
    seen = {}

    def app(mpi):
        buf = mpi.alloc(64)
        if mpi.rank == 0:
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
        else:
            yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)
        mods = {m.name: m for m in mpi.stack.pml.modules}
        seen[mpi.rank] = (
            mods["elan4"].eager_sends,
            mods["tcp"].eager_sends,
        )

    results, cluster = run_mpi_app(app, transports=("elan4", "tcp"))
    assert seen[0] == (1, 0)  # sender used elan4, never tcp


def test_messages_flow_on_both_networks_concurrently():
    """Force one message onto each transport by removing the elan4 route to
    one peer — PML falls back to TCP for that peer only (the concurrency
    requirement of §3)."""
    out = {}

    def app(mpi):
        if mpi.rank == 0:
            mods = {m.name: m for m in mpi.stack.pml.modules}
            mods["elan4"].remove_peer(2)  # rank 2 reachable via TCP only
            b1 = mpi.alloc(64); b1.fill(1)
            b2 = mpi.alloc(64); b2.fill(2)
            r1 = yield from mpi.comm_world.isend(b1, dest=1, tag=1)
            r2 = yield from mpi.comm_world.isend(b2, dest=2, tag=1)
            yield from mpi.waitall([r1, r2])
            out["sends"] = (mods["elan4"].eager_sends, mods["tcp"].eager_sends)
            return "root"
        else:
            data, st = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=64)
            return int(data[0])

    results, cluster = run_mpi_app(app, nodes=3, np_=3, transports=("elan4", "tcp"))
    assert results[1] == 1 and results[2] == 2
    assert out["sends"] == (1, 1)  # one message per network


def test_cross_network_ordering_preserved():
    """Messages to the same peer alternating across transports must still
    match in send order (the parked-fragment machinery)."""

    def app(mpi):
        if mpi.rank == 0:
            mods = {m.name: m for m in mpi.stack.pml.modules}
            bufs = []
            reqs = []
            for i in range(6):
                # odd messages forced onto TCP by toggling the elan4 route
                if i % 2:
                    mods["elan4"].remove_peer(1)
                else:
                    mods["elan4"].peers[1] = out_vpid[0]
                b = mpi.alloc(64)
                b.fill(i)
                bufs.append(b)
                reqs.append((yield from mpi.comm_world.isend(b, dest=1, tag=0)))
            yield from mpi.waitall(reqs)
            return "sent"
        else:
            vals = []
            for _ in range(6):
                data, st = yield from mpi.comm_world.recv(source=0, tag=0, nbytes=64)
                vals.append(int(data[0]))
            return vals

    out_vpid = [None]

    def capture_then_run(mpi):
        if mpi.rank == 0:
            mods = {m.name: m for m in mpi.stack.pml.modules}
            out_vpid[0] = mods["elan4"].peers[1]
        return app(mpi)

    results, cluster = run_mpi_app(capture_then_run, transports=("elan4", "tcp"))
    # MPI guarantees in-order matching per (source, comm): tags equal, so
    # the receiver must see 0..5 in send order even though transports differ
    assert results[1] == [0, 1, 2, 3, 4, 5]
