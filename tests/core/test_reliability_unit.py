"""Unit tests for the ReliableChannel mechanics (below the MPI layer)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.ptl.elan4.module import Elan4PtlComponent, Elan4PtlOptions
from repro.core.pml.teg import Pml


class _FakeProcess:
    def __init__(self, cluster, node_id, rank):
        self.job = type("J", (), {"cluster": cluster})()
        self.node = cluster.nodes[node_id]
        self.rank = rank
        self.space = self.node.new_address_space(f"r{rank}")
        self.main_thread = None


def make_pair():
    """Two wired Elan4 modules in reliability mode, raw (no MPI)."""
    cluster = Cluster(nodes=2)
    opts = Elan4PtlOptions(reliability=True, chained_fin=False)
    modules = []

    def build(node_id, rank):
        proc = _FakeProcess(cluster, node_id, rank)
        pml = Pml(proc, cluster.config)
        comp = Elan4PtlComponent(proc, cluster.config, opts)
        done = []

        def body(t):
            yield from comp.open(t)
            mods = yield from comp.init(t)
            pml.add_module(mods[0])
            done.append(mods[0])

        cluster.nodes[node_id].spawn_thread(body)
        cluster.run()
        return done[0]

    a = build(0, 0)
    b = build(1, 1)

    def wire(t):
        yield from a.add_peer(t, 1, b.local_info())
        yield from b.add_peer(t, 0, a.local_info())

    cluster.nodes[0].spawn_thread(wire)
    cluster.run()
    return cluster, a, b


def test_sequences_start_at_zero_per_peer():
    cluster, a, b = make_pair()
    ch = a.reliable
    sent = []

    def body(t):
        for _ in range(3):
            yield from ch.send(t, b.ctx.vpid, np.zeros(8, np.uint8))

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    # all acked by b's channel (b's progress is not running, but acks are
    # sent from on_receive which runs in b's progress... so run b progress)
    assert ch._tx_seq[b.ctx.vpid] == 3


def test_cumulative_ack_clears_everything_below():
    cluster, a, b = make_pair()
    ch = a.reliable

    def body(t):
        for _ in range(5):
            yield from ch.send(t, b.ctx.vpid, np.zeros(4, np.uint8))

    cluster.nodes[0].spawn_thread(body)
    # bounded run: long enough to send all 5, short of the retry budget
    # (exhaustion would hand the peer to the PML failover harvest)
    cluster.run(until=cluster.sim.now + 50.0)
    assert ch.unacked_count() == 5  # b never progressed, no acks yet
    ch._handle_ack(b.ctx.vpid, 3)  # cumulative: seqs 0,1,2 confirmed
    assert ch.unacked_count() == 2
    ch._handle_ack(b.ctx.vpid, 5)
    assert ch.unacked_count() == 0


def test_close_cancels_timers():
    cluster, a, b = make_pair()
    ch = a.reliable

    def body(t):
        yield from ch.send(t, b.ctx.vpid, np.zeros(4, np.uint8))

    cluster.nodes[0].spawn_thread(body)
    cluster.run(until=cluster.sim.now + 10.0)
    ch.close()
    before = ch.retransmissions
    cluster.run()  # any armed timer would fire here
    assert ch.retransmissions == before
    assert ch.unacked_count() == 0


def test_stash_reorders_gap():
    """Simulate a gap: deliver seqs 1,2 then 0 through on_receive."""
    from repro.elan4.qdma import QdmaMessage

    cluster, a, b = make_pair()
    ch = b.reliable
    out = []

    def msg(seq):
        return QdmaMessage(
            src_vpid=a.ctx.vpid, nbytes=4,
            data=np.full(4, seq, np.uint8),
            meta={"rel_seq": seq},
        )

    def body(t):
        out.append((yield from ch.on_receive(t, msg(1))))
        out.append((yield from ch.on_receive(t, msg(2))))
        out.append((yield from ch.on_receive(t, msg(0))))

    cluster.nodes[1].spawn_thread(body)
    cluster.run()
    assert out[0] == [] and out[1] == []
    assert [int(m.data[0]) for m in out[2]] == [0, 1, 2]


def test_duplicate_detection():
    from repro.elan4.qdma import QdmaMessage

    cluster, a, b = make_pair()
    ch = b.reliable

    def msg(seq):
        return QdmaMessage(src_vpid=a.ctx.vpid, nbytes=0,
                           data=np.empty(0, np.uint8), meta={"rel_seq": seq})

    out = []

    def body(t):
        out.append((yield from ch.on_receive(t, msg(0))))
        out.append((yield from ch.on_receive(t, msg(0))))  # dup

    cluster.nodes[1].spawn_thread(body)
    cluster.run()
    assert len(out[0]) == 1 and out[1] == []
    assert ch.duplicates_dropped == 1


def test_untracked_messages_pass_through():
    from repro.elan4.qdma import QdmaMessage

    cluster, a, b = make_pair()
    ch = b.reliable
    plain = QdmaMessage(src_vpid=a.ctx.vpid, nbytes=0,
                        data=np.empty(0, np.uint8), meta={"compl": 7})
    out = []

    def body(t):
        out.append((yield from ch.on_receive(t, plain)))

    cluster.nodes[1].spawn_thread(body)
    cluster.run()
    assert out[0] == [plain]
    assert ch.acks_sent == 0  # untracked traffic is not acknowledged
