"""Multirail Quadrics (§8 future work): several Elan4 rails per node, with
the PML striping messages across them (rail-per-message allocation, [6])."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import launch_job

RAIL_TRANSPORTS = ("elan4", "elan4:1")


def run_multirail(app, nodes=2, np_=2, rails=2, transports=RAIL_TRANSPORTS):
    cluster = Cluster(nodes=nodes, rails=rails)
    results = launch_job(
        cluster, app, np=np_, transports=transports,
        stack_factory=make_mpi_stack_factory(),
    )
    cluster.assert_no_drops()
    return results, cluster


def test_two_rails_build_two_modules():
    def app(mpi):
        yield mpi.sim.timeout(0)
        return sorted(m.name for m in mpi.stack.pml.modules)

    results, _ = run_multirail(app)
    assert results[0] == ["elan4", "elan4:1"]


def test_rails_have_independent_vpids():
    def app(mpi):
        yield mpi.sim.timeout(0)
        return {m.rail: m.ctx.vpid for m in mpi.stack.pml.modules}

    results, cluster = run_multirail(app)
    # each rail's capability allocated its own vpid space
    assert cluster.rail_capabilities[0].live_vpids == []
    assert set(results[0]) == {0, 1}


def test_messages_stripe_across_rails():
    def app(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(8):
                buf = mpi.alloc(64)
                buf.fill(i)
                reqs.append((yield from mpi.comm_world.isend(buf, dest=1, tag=i)))
            yield from mpi.waitall(reqs)
            return {m.name: m.eager_sends for m in mpi.stack.pml.modules}
        else:
            for i in range(8):
                yield from mpi.comm_world.recv(source=0, tag=i, nbytes=64)

    results, _ = run_multirail(app)
    sends = results[0]
    assert sends["elan4"] == 4 and sends["elan4:1"] == 4  # round-robin


def test_ordering_preserved_across_rails():
    """Same (source, tag) messages alternate rails yet match in order."""

    def app(mpi):
        if mpi.rank == 0:
            for i in range(10):
                buf = mpi.alloc(32)
                buf.fill(i)
                yield from mpi.comm_world.send(buf, dest=1, tag=0)
        else:
            got = []
            for _ in range(10):
                data, _ = yield from mpi.comm_world.recv(source=0, tag=0, nbytes=32)
                got.append(int(data[0]))
            return got

    results, _ = run_multirail(app)
    assert results[1] == list(range(10))


def test_large_messages_lossless_across_rails():
    n = 150_000
    payload = np.random.default_rng(0).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            oks = []
            for i in range(4):
                buf = mpi.alloc(n)
                buf.write(payload)
                yield from mpi.comm_world.send(buf, dest=1, tag=i)
            return "sent"
        else:
            oks = []
            for i in range(4):
                data, _ = yield from mpi.comm_world.recv(source=0, tag=i, nbytes=n)
                oks.append(np.array_equal(data, payload))
            return all(oks)

    results, _ = run_multirail(app)
    assert results[1] is True


def test_multirail_aggregates_streaming_bandwidth():
    """The §8 goal: two rails should stream close to twice one rail."""

    def bandwidth(rails, transports):
        n, messages, window = 262_144, 16, 8
        out = {}

        def app(mpi):
            if mpi.rank == 0:
                bufs = [mpi.alloc(n) for _ in range(window)]
                t0 = mpi.now
                reqs = []
                for i in range(messages):
                    if len(reqs) >= window:
                        yield from mpi.wait(reqs.pop(0))
                    reqs.append((yield from mpi.comm_world.isend(
                        bufs[i % window], dest=1, tag=1, nbytes=n)))
                yield from mpi.waitall(reqs)
                yield from mpi.comm_world.recv(source=1, tag=2, nbytes=0)
                out["bw"] = messages * n / (mpi.now - t0)
            else:
                buf = mpi.alloc(n)
                reqs = []
                for i in range(messages):
                    if len(reqs) >= window:
                        yield from mpi.wait(reqs.pop(0))
                    reqs.append((yield from mpi.comm_world.irecv(
                        n, source=0, tag=1, buffer=buf)))
                yield from mpi.waitall(reqs)
                yield from mpi.comm_world.send(b"", dest=0, tag=2, nbytes=0)

        cluster = Cluster(nodes=2, rails=rails)
        launch_job(cluster, app, np=2, transports=transports,
                   stack_factory=make_mpi_stack_factory())
        return out["bw"]

    one = bandwidth(1, ("elan4",))
    two = bandwidth(2, RAIL_TRANSPORTS)
    assert two > 1.6 * one, (one, two)


def test_single_rail_cluster_rejects_second_rail_transport():
    def app(mpi):
        yield mpi.sim.timeout(0)

    cluster = Cluster(nodes=2, rails=1)
    with pytest.raises(Exception, match="rail 1"):
        launch_job(cluster, app, np=2, transports=RAIL_TRANSPORTS,
                   stack_factory=make_mpi_stack_factory())
