"""Tests for requests and the datatype (DTP vs memcpy) engines."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.datatype import DatatypeEngine
from repro.core.request import RecvRequest, Request, SendRequest, Status
from repro.hw.cpu import CpuScheduler
from repro.hw.memory import AddressSpace
from repro.sim import Simulator


# ----------------------------------------------------------------- requests
def test_request_completes_at_full_progress():
    sim = Simulator()
    req = Request(sim, 100)
    assert not req.add_progress(60)
    assert not req.completed
    assert req.add_progress(40)
    assert req.completed
    assert req.completed_at == sim.now


def test_zero_byte_request_completes_on_zero_progress():
    sim = Simulator()
    req = Request(sim, 0)
    assert req.add_progress(0)
    assert req.completed


def test_progress_after_completion_is_error():
    sim = Simulator()
    req = Request(sim, 10)
    req.add_progress(10)
    with pytest.raises(RuntimeError):
        req.add_progress(1)


def test_completion_event_fires_waiters():
    sim = Simulator()
    req = Request(sim, 10)
    ev = req.completion_event()
    req.add_progress(10)
    sim.run()
    assert ev.value is req


def test_completion_event_after_completion():
    sim = Simulator()
    req = Request(sim, 10)
    req.add_progress(10)
    ev = req.completion_event()
    assert ev.triggered


def test_request_failure():
    sim = Simulator()
    req = Request(sim, 10)
    req.fail(ConnectionError("peer died"))
    assert req.completed
    assert isinstance(req.error, ConnectionError)


def test_recv_request_wildcard_matching_and_resolution():
    sim = Simulator()
    req = RecvRequest(sim, None, 100, -1, -1, 0)
    assert req.match_against(5, 9)
    req.mark_matched(5, 9, 40)
    assert req.status.source == 5 and req.status.tag == 9
    assert req.status.nbytes == 40
    assert req.nbytes == 40  # shrunk to the shorter message


def test_recv_request_truncates_longer_message():
    sim = Simulator()
    req = RecvRequest(sim, None, 10, -1, -1, 0)
    req.mark_matched(0, 0, 100)
    assert req.status.nbytes == 10
    assert req.nbytes == 10


def test_send_request_fields():
    sim = Simulator()
    req = SendRequest(sim, None, 64, dst_rank=3, tag=7, ctx_id=1, seq=42)
    assert req.seq == 42 and req.dst_rank == 3
    assert not req.acked


# ----------------------------------------------------------------- datatype
def make_thread_env():
    sim = Simulator()
    cfg = default_config()
    sched = CpuScheduler(sim, cfg)
    space = AddressSpace("p")
    return sim, cfg, sched, space


def test_dtp_request_init_costs_more_than_memcpy():
    """The convertor-initialisation cost is per request, not per copy."""
    sim, cfg, sched, space = make_thread_env()
    times = {}

    def run(mode):
        eng = DatatypeEngine(cfg, mode=mode)

        def body(t):
            start = sim.now
            yield from eng.request_init(t)
            times[mode] = sim.now - start

        sched.spawn(body)
        sim.run()

    run("memcpy")
    run("dtp")
    assert times["dtp"] - times["memcpy"] == pytest.approx(cfg.dtp_start_us)
    assert times["memcpy"] == 0.0


def test_pack_cost_independent_of_mode():
    sim, cfg, sched, space = make_thread_env()
    src = space.alloc(1024)
    dst = space.alloc(1024)
    times = {}

    def run(mode):
        eng = DatatypeEngine(cfg, mode=mode)

        def body(t):
            start = sim.now
            yield from eng.pack(t, dst, src, 1024)
            times[mode] = sim.now - start

        sched.spawn(body)
        sim.run()

    run("memcpy")
    run("dtp")
    assert times["dtp"] == pytest.approx(times["memcpy"])


def test_pack_moves_bytes():
    sim, cfg, sched, space = make_thread_env()
    src = space.alloc(256)
    dst = space.alloc(512)
    src.write(np.arange(256, dtype=np.uint8))
    eng = DatatypeEngine(cfg, mode="memcpy")

    def body(t):
        yield from eng.pack(t, dst, src, 256, dst_off=64)

    sched.spawn(body)
    sim.run()
    assert np.array_equal(dst.read(offset=64, nbytes=256), src.read())
    assert eng.packs == 1


def test_unpack_from_ndarray():
    sim, cfg, sched, space = make_thread_env()
    dst = space.alloc(128)
    data = np.full(100, 3, dtype=np.uint8)
    eng = DatatypeEngine(cfg)

    def body(t):
        yield from eng.unpack(t, dst, data, 100, dst_off=8)

    sched.spawn(body)
    sim.run()
    assert (dst.read(offset=8, nbytes=100) == 3).all()
    assert eng.unpacks == 1


def test_pack_bytes_returns_copy():
    sim, cfg, sched, space = make_thread_env()
    src = space.alloc(64)
    src.fill(7)
    eng = DatatypeEngine(cfg)
    out = []

    def body(t):
        data = yield from eng.pack_bytes(t, src, 64)
        out.append(data)

    sched.spawn(body)
    sim.run()
    assert (out[0] == 7).all()
    src.fill(9)
    assert (out[0] == 7).all()  # detached from the source


def test_zero_byte_operations():
    sim, cfg, sched, space = make_thread_env()
    eng = DatatypeEngine(cfg)
    dst = space.alloc(16)

    def body(t):
        yield from eng.pack(t, dst, dst, 0)
        data = yield from eng.pack_bytes(t, dst, 0)
        assert data.nbytes == 0

    sched.spawn(body)
    sim.run()


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        DatatypeEngine(default_config(), mode="turbo")
