"""Tests for the 64-byte fragment header."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.header import (
    FLAG_INLINE,
    FragmentHeader,
    HDR_ACK,
    HDR_FIN,
    HDR_FIN_ACK,
    HDR_MATCH,
    HDR_RNDV,
    HEADER_BYTES,
)
from repro.elan4.addr import E4Addr


def test_header_is_exactly_64_bytes():
    """The paper's stated Open MPI header size (§6.3)."""
    assert HEADER_BYTES == 64
    hdr = FragmentHeader(
        type=HDR_MATCH, src_rank=0, ctx_id=0, tag=0, seq=0, msg_len=0,
        frag_len=0, frag_offset=0, src_req=0, dst_req=0,
    )
    assert len(hdr.encode()) == 64


def test_roundtrip_with_e4_address():
    hdr = FragmentHeader(
        type=HDR_RNDV, src_rank=3, ctx_id=7, tag=-5, seq=9,
        msg_len=1 << 20, frag_len=1984, frag_offset=0,
        src_req=77, dst_req=0, flags=FLAG_INLINE, e4=E4Addr(0x400, 0x123456),
    )
    back = FragmentHeader.decode(hdr.encode())
    assert back == hdr
    assert back.has_inline
    assert back.e4 == E4Addr(0x400, 0x123456)


def test_roundtrip_without_e4():
    hdr = FragmentHeader(
        type=HDR_FIN, src_rank=1, ctx_id=2, tag=3, seq=4,
        msg_len=10, frag_len=10, frag_offset=0, src_req=5, dst_req=6,
    )
    back = FragmentHeader.decode(hdr.encode())
    assert back.e4 is None
    assert back == hdr


def test_negative_tags_supported():
    """Collective tags and MPI_ANY_TAG sentinels are negative."""
    hdr = FragmentHeader(
        type=HDR_MATCH, src_rank=0, ctx_id=0, tag=-2147483648, seq=0,
        msg_len=0, frag_len=0, frag_offset=0, src_req=0, dst_req=0,
    )
    assert FragmentHeader.decode(hdr.encode()).tag == -2147483648


def test_type_names():
    for t, name in [(HDR_MATCH, "MATCH"), (HDR_RNDV, "RNDV"), (HDR_ACK, "ACK"),
                    (HDR_FIN, "FIN"), (HDR_FIN_ACK, "FIN_ACK")]:
        hdr = FragmentHeader(type=t, src_rank=0, ctx_id=0, tag=0, seq=0,
                             msg_len=0, frag_len=0, frag_offset=0,
                             src_req=0, dst_req=0)
        assert hdr.type_name == name


def test_decode_ignores_trailing_payload():
    hdr = FragmentHeader(type=HDR_ACK, src_rank=9, ctx_id=1, tag=2, seq=0,
                         msg_len=100, frag_len=0, frag_offset=0,
                         src_req=1, dst_req=2)
    raw = hdr.encode() + b"payload-bytes-follow"
    assert FragmentHeader.decode(raw) == hdr


@settings(max_examples=80, deadline=None)
@given(
    type=st.sampled_from([HDR_MATCH, HDR_RNDV, HDR_ACK, HDR_FIN, HDR_FIN_ACK]),
    src_rank=st.integers(0, 65535),
    ctx_id=st.integers(0, 2**32 - 1),
    tag=st.integers(-(2**31), 2**31 - 1),
    seq=st.integers(0, 2**32 - 1),
    msg_len=st.integers(0, 2**63 - 1),
    frag_len=st.integers(0, 2**32 - 1),
    frag_offset=st.integers(0, 2**63 - 1),
    src_req=st.integers(0, 2**63 - 1),
    dst_req=st.integers(0, 2**63 - 1),
    flags=st.integers(0, 255),
    e4=st.one_of(
        st.none(),
        st.builds(E4Addr, st.integers(1, 2**32 - 1), st.integers(0, 2**63 - 1)),
    ),
)
def test_property_encode_decode_roundtrip(**fields):
    hdr = FragmentHeader(**fields)
    back = FragmentHeader.decode(hdr.encode())
    assert back == hdr
