"""Regression tests for the resource-lifecycle leaks the static lifecycle
pass surfaced: per-transfer MMU registrations must come back at each
transfer's terminal point (completion, FIN, give-up), preallocated send
buffers must recycle when a send aborts mid-flight, and a failed dynamic
join must return its capability slot."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.ptl.base import PtlError
from repro.core.ptl.elan4.module import Elan4PtlComponent, Elan4PtlOptions
from repro.core.request import SendRequest
from repro.elan4.nic import NicError
from repro.elan4.tport import TPORT_EAGER_BYTES
from tests.conftest import run_mpi_app


def _mmu_entries(ctx) -> int:
    """Live translations registered for one hardware context."""
    table = ctx.nic.mmu._ctx.get(ctx.ctx)
    return 0 if table is None else len(table.entries)


def _elan4_module(mpi):
    return next(m for m in mpi.stack.registry.modules if hasattr(m, "ctx"))


# --------------------------------------------------------- dynamic join
def test_claim_context_failed_attach_releases_slot():
    """A join that dies between the capability claim and the context
    attach must return the hardware context to the free pool."""
    cluster = Cluster(nodes=2)
    cap = cluster.rail_capabilities[0]
    free_before = set(cap._free[0])

    def boom(label):
        raise RuntimeError("address space allocation failed")

    cluster.nodes[0].new_address_space = boom
    with pytest.raises(RuntimeError):
        cluster.claim_context(0)
    assert set(cap._free[0]) == free_before

    del cluster.nodes[0].new_address_space  # restore the class method
    ctx = cluster.claim_context(0)
    assert ctx.ctx in free_before  # the leaked slot came back into rotation


# --------------------------------------------------------- send buffers
class _FakeProcess:
    def __init__(self, cluster, node_id=0, rank=0):
        self.job = type("J", (), {"cluster": cluster})()
        self.node = cluster.nodes[node_id]
        self.rank = rank
        self.space = self.node.new_address_space(f"rank{rank}")
        self.main_thread = None


def _module_under_test(cluster):
    proc = _FakeProcess(cluster)
    comp = Elan4PtlComponent(proc, cluster.config)
    out = {}

    def setup(t):
        yield from comp.open(t)
        out["modules"] = yield from comp.init(t)

    cluster.nodes[0].spawn_thread(setup)
    cluster.run()
    return out["modules"][0]


def test_send_fragment_refused_recycles_buffer():
    """A QDMA refused at issue fires no release chain — the preallocated
    buffer must come back to the pool on the error path itself."""
    cluster = Cluster(nodes=1)
    module = _module_under_test(cluster)
    pool = module._send_bufs
    full = len(pool._items)

    def refused(thread, vpid, qid, payload, meta=None):
        raise NicError("destination VPID released")
        yield  # pragma: no cover - generator shape

    module.ctx.qdma_send = refused
    fired = {}

    def flow(t):
        buf = yield pool.get()
        assert len(pool._items) == full - 1
        try:
            yield from module._send_fragment(t, 0, buf, 16)
        except NicError:
            fired["raised"] = True

    cluster.nodes[0].spawn_thread(flow)
    cluster.run()
    assert fired.get("raised")
    assert len(pool._items) == full


def test_eager_pack_abort_recycles_buffer():
    """An eager send aborted during datatype pack (before the buffer is
    handed to the NIC) must recycle its slot."""
    cluster = Cluster(nodes=1)
    module = _module_under_test(cluster)
    pool = module._send_bufs
    full = len(pool._items)

    class _BoomDatatype:
        def pack(self, thread, dst, src, nbytes, dst_off=0):
            raise RuntimeError("unpackable datatype")
            yield  # pragma: no cover - generator shape

    module.pml = type("P", (), {"datatype": _BoomDatatype()})()
    module.peers[1] = 0
    buf = module.process.space.alloc(64)
    req = SendRequest(cluster.sim, buf, 64, dst_rank=1, tag=0, ctx_id=0, seq=0)
    fired = {}

    def flow(t):
        try:
            yield from module._send_eager(t, req)
        except RuntimeError:
            fired["raised"] = True

    cluster.nodes[0].spawn_thread(flow)
    cluster.run()
    assert fired.get("raised")
    assert len(pool._items) == full


# --------------------------------------------------------- tport mappings
def test_tport_rendezvous_returns_mmu_registrations():
    """The RTS source mapping dies at FIN and the receiver's get mapping
    dies at completion — a tagged rendezvous leaves the tables as it
    found them."""
    cluster = Cluster(nodes=2)
    a = cluster.claim_context(0)
    b = cluster.claim_context(1)
    src_ep, dst_ep = a.tport_endpoint(), b.tport_endpoint()
    before = (_mmu_entries(a), _mmu_entries(b))

    n = TPORT_EAGER_BYTES * 8
    payload = np.random.default_rng(3).integers(0, 256, n, dtype=np.uint8)
    src_buf = a.space.alloc(n)
    dst_buf = b.space.alloc(n)
    src_buf.write(payload)

    def sender(t):
        ev = yield from src_ep.send(t, dst_ep.vpid, 5, src_buf, n)
        yield from t.block_on(ev.attach_host_word())

    def receiver(t):
        ev = yield from dst_ep.post_recv(t, -1, 5, dst_buf)
        yield from t.block_on(ev.host_word)

    cluster.nodes[0].spawn_thread(sender)
    cluster.nodes[1].spawn_thread(receiver)
    cluster.run()

    assert np.array_equal(dst_buf.read(0, n), payload)
    assert (_mmu_entries(a), _mmu_entries(b)) == before
    cluster.assert_no_drops()


# --------------------------------------------------------- PTL rendezvous
@pytest.mark.parametrize(
    "scheme,chained",
    [("read", True), ("read", False), ("write", True), ("write", False)],
)
def test_ptl_rendezvous_mmu_balanced(scheme, chained):
    """Every rendezvous maps per-transfer windows (source exposure, and
    the receive window on the write scheme); all of them must be unmapped
    by the time the transfer completes, on both schemes and both FIN
    styles."""
    n = 60_000
    payload = np.random.default_rng(n).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        peer = 1 - mpi.rank
        mod = _elan4_module(mpi)

        def xchg(first):
            for turn in (0, 1):
                if (mpi.rank == 0) == (turn == first):
                    buf = mpi.alloc(n)
                    buf.write(payload)
                    yield from mpi.comm_world.send(buf, dest=peer, tag=9, nbytes=n)
                else:
                    data, _ = yield from mpi.comm_world.recv(
                        source=peer, tag=9, nbytes=n
                    )
                    assert np.array_equal(data, payload)

        yield from xchg(0)  # warm-up settles lazy per-peer state
        before = _mmu_entries(mod.ctx)
        for _ in range(3):
            yield from xchg(0)
            yield from xchg(1)
        return _mmu_entries(mod.ctx) - before

    opts = Elan4PtlOptions(rdma_scheme=scheme, chained_fin=chained)
    results, cluster = run_mpi_app(app, elan4_options=opts)
    cluster.assert_no_drops()
    assert results == {0: 0, 1: 0}, f"leaked registrations per rank: {results}"


def test_rndv_read_giveup_unmaps_receive_window():
    """A rendezvous read that stalls through every host retry fails the
    request — and the give-up path must drop the receive-window mapping
    exactly once (no leak, no double-unmap trap)."""
    n = 60_000
    cluster = Cluster(nodes=2)
    cluster.config.rdma_timeout_us = 50.0
    cluster.config.rdma_timeout_us_per_byte = 0.0
    cluster.config.rdma_max_retries = 2

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            req = yield from mpi.comm_world.isend(buf, dest=1, tag=3, nbytes=n)
            # the receiver gives up unilaterally; no FIN_ACK will ever come
            # back, so abandon the send locally to let finalize drain
            yield mpi.sim.timeout(2_000)
            req.fail(PtlError("test: peer abandoned the transfer"))
            mpi.stack.pml.retire(req)
            return "sent"
        mod = _elan4_module(mpi)

        def stalled(thread, desc):
            # the descriptor is accepted but its data dies in the fabric
            yield mod.sim.timeout(0)

        mod.ctx.rdma_issue = stalled
        before = _mmu_entries(mod.ctx)
        try:
            yield from mpi.comm_world.recv(source=0, tag=3, nbytes=n)
        except PtlError as exc:
            assert "giving up" in str(exc)
            return _mmu_entries(mod.ctx) - before
        return "unexpectedly completed"

    opts = Elan4PtlOptions(rdma_scheme="read")
    results, cluster = run_mpi_app(app, elan4_options=opts, cluster=cluster)
    assert results[0] == "sent"
    assert results[1] == 0, f"receiver leaked {results[1]} registration(s)"
    assert cluster.nics[1].mmu.traps == 0
