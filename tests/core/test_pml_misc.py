"""PML odds and ends: request registry, error paths, mode validation."""

import pytest

from repro.cluster import Cluster
from repro.core.pml.teg import Pml, PmlError
from repro.core.request import Request
from tests.conftest import run_mpi_app


class _FakeProcess:
    def __init__(self, cluster):
        self.node = cluster.nodes[0]
        self.rank = 0
        self.space = self.node.new_address_space("p")
        self.main_thread = None


def make_pml(**kwargs):
    cluster = Cluster(nodes=1)
    return cluster, Pml(_FakeProcess(cluster), cluster.config, **kwargs)


def test_unknown_progress_mode_rejected():
    cluster = Cluster(nodes=1)
    with pytest.raises(PmlError, match="progress mode"):
        Pml(_FakeProcess(cluster), cluster.config, progress_mode="clairvoyant")


def test_lookup_unknown_request():
    _, pml = make_pml()
    with pytest.raises(PmlError, match="unknown request"):
        pml.lookup_request(424242)


def test_register_retire_cycle():
    cluster, pml = make_pml()
    req = Request(cluster.sim, 10)
    pml.register(req)
    assert pml.lookup_request(req.req_id) is req
    pml.retire(req)
    with pytest.raises(PmlError):
        pml.lookup_request(req.req_id)
    pml.retire(req)  # idempotent


def test_module_for_unreachable_rank():
    _, pml = make_pml()
    with pytest.raises(PmlError, match="no PTL reaches"):
        pml.module_for(7)


def test_wait_on_completed_request_is_immediate():
    def app(mpi):
        other = 1 - mpi.rank
        buf = mpi.alloc(16)
        req = yield from mpi.comm_world.isend(buf, dest=other, tag=1)
        yield from mpi.wait(req)
        t = mpi.now
        yield from mpi.wait(req)  # second wait: no time passes
        assert mpi.now == t
        yield from mpi.comm_world.recv(source=other, tag=1, nbytes=16)
        return True

    results, _ = run_mpi_app(app)
    assert all(results.values())


def test_wait_reraises_failed_request():
    cluster, pml = make_pml()
    req = Request(cluster.sim, 10)
    pml.register(req)
    req.fail(ConnectionError("injected"))
    seen = []

    def body(t):
        try:
            yield from pml.wait(t, req)
        except ConnectionError as e:
            seen.append(str(e))

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    assert seen == ["injected"]


def test_pending_requests_counter():
    cluster, pml = make_pml()
    a = Request(cluster.sim, 10)
    b = Request(cluster.sim, 10)
    pml.register(a)
    pml.register(b)
    assert pml.pending_requests() == 2
    a.add_progress(10)
    assert pml.pending_requests() == 1


def test_iprobe_does_not_consume():
    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(32)
            yield from mpi.comm_world.send(buf, dest=1, tag=9)
        else:
            yield from mpi.thread.sleep(200.0)
            st1 = yield from mpi.comm_world.iprobe(source=0, tag=9)
            st2 = yield from mpi.comm_world.iprobe(source=0, tag=9)
            assert st1 is not None and st2 is not None  # still there
            yield from mpi.comm_world.recv(source=0, tag=9, nbytes=32)
            st3 = yield from mpi.comm_world.iprobe(source=0, tag=9)
            assert st3 is None  # consumed by the receive
            return True

    results, _ = run_mpi_app(app)
    assert results[1] is True


def test_rail_round_robin_cursor_skips_lower_priority():
    """The multirail round robin must never rotate onto the TCP module."""

    def app(mpi):
        if mpi.rank == 0:
            mods = {m.name: m for m in mpi.stack.pml.modules}
            buf = mpi.alloc(16)
            for i in range(6):
                yield from mpi.comm_world.send(buf, dest=1, tag=i)
            return (mods["elan4"].eager_sends, mods["tcp"].eager_sends)
        else:
            for i in range(6):
                yield from mpi.comm_world.recv(source=0, tag=i, nbytes=16)

    results, _ = run_mpi_app(app, transports=("elan4", "tcp"))
    assert results[0] == (6, 0)
