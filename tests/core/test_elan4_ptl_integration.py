"""Integration tests of the full stack over PTL/Elan4: correctness of every
protocol path (eager, rendezvous read/write, inline/no-inline, chained/host
FIN, all completion-queue modes), data integrity, and the latency relations
the paper reports."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ptl.elan4.module import Elan4PtlOptions
from tests.conftest import pingpong_app, pingpong_latency, run_mpi_app


def transfer_ok(n, opts=None, **kwargs):
    payload = np.random.default_rng(n + 1).integers(0, 256, max(n, 1), dtype=np.uint8)[:n]
    results, cluster = run_mpi_app(
        pingpong_app(n, iters=2, payload=payload), elan4_options=opts, **kwargs
    )
    cluster.assert_no_drops()
    return results[1] is True


# ------------------------------------------------------------- correctness
@pytest.mark.parametrize("n", [0, 1, 4, 64, 1024, 1984, 1985, 4096, 65536])
def test_default_stack_all_sizes(n):
    assert transfer_ok(n)


@pytest.mark.parametrize(
    "scheme,inline,chained,cq",
    list(
        itertools.product(
            ["read", "write"], [False, True], [True, False],
            ["none", "one-queue", "two-queue"],
        )
    ),
)
def test_every_option_combination_is_lossless(scheme, inline, chained, cq):
    opts = Elan4PtlOptions(
        rdma_scheme=scheme,
        inline_rndv_data=inline,
        chained_fin=chained,
        completion_queue=cq,
    )
    assert transfer_ok(100_000, opts)


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(0, 200_000),
    scheme=st.sampled_from(["read", "write"]),
    inline=st.booleans(),
)
def test_property_any_size_any_scheme_lossless(n, scheme, inline):
    opts = Elan4PtlOptions(rdma_scheme=scheme, inline_rndv_data=inline)
    assert transfer_ok(n, opts)


def test_unexpected_rendezvous_matched_late():
    """RNDV arriving before the receive is posted must wait on the
    unexpected queue and complete once posted."""
    n = 50_000
    payload = np.random.default_rng(7).integers(0, 256, n, dtype=np.uint8)

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            buf.write(payload)
            yield from mpi.comm_world.send(buf, dest=1, tag=1)
            return "sent"
        else:
            # dawdle so the RNDV is long unexpected
            yield from mpi.thread.sleep(200.0)
            data, st = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=n)
            return bool(np.array_equal(data, payload))

    results, cluster = run_mpi_app(app)
    assert results[1] is True


def test_many_outstanding_messages_same_pair():
    """A window of isends against preposted irecvs — exercises send-buffer
    recycling and per-peer ordering."""
    window, n = 24, 512

    def app(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(window):
                buf = mpi.alloc(n)
                buf.fill(i)
                reqs.append((yield from mpi.comm_world.isend(buf, dest=1, tag=i)))
            yield from mpi.waitall(reqs)
            return "sent"
        else:
            reqs = []
            for i in range(window):
                reqs.append((yield from mpi.comm_world.irecv(n, source=0, tag=i)))
            yield from mpi.waitall(reqs)
            vals = [int(r.transport["user_buffer"].read()[0]) for r in reqs]
            return vals

    results, cluster = run_mpi_app(app)
    assert results[1] == list(range(window))
    cluster.assert_no_drops()


def test_messages_to_many_peers():
    def app(mpi):
        me = mpi.rank
        reqs = []
        for peer in range(mpi.size):
            if peer == me:
                continue
            buf = mpi.alloc(128)
            buf.fill(me)
            reqs.append((yield from mpi.comm_world.isend(buf, dest=peer, tag=me)))
        got = {}
        for peer in range(mpi.size):
            if peer == me:
                continue
            data, st = yield from mpi.comm_world.recv(source=peer, tag=peer, nbytes=128)
            got[peer] = int(data[0])
        yield from mpi.waitall(reqs)
        return got

    results, cluster = run_mpi_app(app, nodes=4, np_=4)
    for me, got in results.items():
        assert got == {p: p for p in range(4) if p != me}


def test_send_to_self():
    def app(mpi):
        buf = mpi.alloc(256)
        buf.fill(9)
        req = yield from mpi.comm_world.isend(buf, dest=mpi.rank, tag=1)
        data, st = yield from mpi.comm_world.recv(source=mpi.rank, tag=1, nbytes=256)
        yield from mpi.wait(req)
        return int(data[0])

    results, _ = run_mpi_app(app, nodes=1, np_=1)
    assert results[0] == 9


# --------------------------------------------------------- paper relations
def test_read_beats_write_above_threshold():
    """§6.1: "RDMA read is able to deliver better performance compared to
    RDMA write ... saves a control packet"."""
    n = 4096
    lat_read = pingpong_latency(n, elan4_options=Elan4PtlOptions(rdma_scheme="read"))
    lat_write = pingpong_latency(n, elan4_options=Elan4PtlOptions(rdma_scheme="write"))
    assert lat_read < lat_write


def test_no_inline_beats_inline():
    """§6.1: transmitting the rendezvous without inlined data improves all
    sizes (saves the pack copy; RDMA places data directly)."""
    n = 8192
    lat_no = pingpong_latency(n, elan4_options=Elan4PtlOptions(inline_rndv_data=False))
    lat_in = pingpong_latency(n, elan4_options=Elan4PtlOptions(inline_rndv_data=True))
    assert lat_no < lat_in


def test_dtp_costs_about_0_4us():
    """§6.1: the datatype engine adds ≈0.4 µs per one-way transfer."""
    lat_memcpy = pingpong_latency(64, datatype_mode="memcpy")
    lat_dtp = pingpong_latency(64, datatype_mode="dtp")
    assert 0.2 < lat_dtp - lat_memcpy < 0.7


def test_chained_fin_helps_long_messages():
    """Fig. 8: chaining the FIN_ACK gives a (marginal) improvement."""
    n = 16384
    lat_chain = pingpong_latency(n, elan4_options=Elan4PtlOptions(chained_fin=True))
    lat_host = pingpong_latency(n, elan4_options=Elan4PtlOptions(chained_fin=False))
    assert lat_chain < lat_host


def test_completion_queue_costs_something():
    """Fig. 8: the shared completion queue's chained QDMA is measurable."""
    n = 16384
    lat_none = pingpong_latency(n, elan4_options=Elan4PtlOptions(completion_queue="none"))
    lat_one = pingpong_latency(
        n, elan4_options=Elan4PtlOptions(completion_queue="one-queue")
    )
    lat_two = pingpong_latency(
        n, elan4_options=Elan4PtlOptions(completion_queue="two-queue")
    )
    assert lat_none < lat_one
    assert lat_none < lat_two
    # §6.2: one-queue ≈ two-queue under polling
    assert abs(lat_one - lat_two) < 1.0


def test_eager_threshold_switches_protocol():
    """Crossing 1984 B switches eager → rendezvous (verified structurally;
    latency stays comparable at the boundary because the read scheme's
    zero-copy path offsets the extra handshake — the §6.1 no-inline story)."""

    def run(n):
        counts = {}

        def app(mpi):
            buf = mpi.alloc(n)
            if mpi.rank == 0:
                yield from mpi.comm_world.send(buf, dest=1, tag=1, nbytes=n)
            else:
                yield from mpi.comm_world.recv(source=0, tag=1, nbytes=n)
            m = mpi.stack.pml.modules[0]
            counts[mpi.rank] = (m.eager_sends, m.rndv_sends)

        run_mpi_app(app)
        return counts[0]

    assert run(1984) == (1, 0)  # at the threshold: still eager
    assert run(1985) == (0, 1)  # one byte over: rendezvous
    # and the latencies stay in the same regime (no cliff in either direction)
    assert abs(pingpong_latency(1985) - pingpong_latency(1984)) < 3.0
