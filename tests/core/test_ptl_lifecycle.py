"""Tests for the five-stage PTL lifecycle and registry (§2.2), and for the
dynamic disjoin/drain semantics (§4.1)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.ptl.base import PtlComponent, PtlError, PtlRegistry
from repro.core.ptl.elan4.module import Elan4PtlComponent, Elan4PtlOptions
from repro.rte.environment import RteJob
from tests.conftest import run_mpi_app


class _FakeProcess:
    """Just enough process for lifecycle unit tests."""

    def __init__(self, cluster, node_id=0, rank=0):
        self.job = type("J", (), {"cluster": cluster})()
        self.node = cluster.nodes[node_id]
        self.rank = rank
        self.space = self.node.new_address_space(f"rank{rank}")
        self.main_thread = None


def drive(cluster, gen_fn):
    """Run a generator on a host thread of node 0; return its value."""
    out = []

    def body(t):
        out.append((yield from gen_fn(t)))

    cluster.nodes[0].spawn_thread(body)
    cluster.run()
    return out[0] if out else None


def test_lifecycle_stages_in_order():
    cluster = Cluster(nodes=1)
    proc = _FakeProcess(cluster)
    comp = Elan4PtlComponent(proc, cluster.config)

    def flow(t):
        assert comp.state == "closed"
        yield from comp.open(t)
        assert comp.state == "opened"
        modules = yield from comp.init(t)
        assert comp.state == "initialized"
        assert len(modules) == 1
        yield from comp.finalize(t)
        assert comp.state == "finalized"
        yield from comp.close(t)
        assert comp.state == "closed"
        return True

    assert drive(cluster, flow)


def test_lifecycle_violations_rejected():
    cluster = Cluster(nodes=1)
    proc = _FakeProcess(cluster)
    comp = Elan4PtlComponent(proc, cluster.config)

    def flow(t):
        with pytest.raises(PtlError):
            yield from comp.init(t)  # init before open
        yield from comp.open(t)
        with pytest.raises(PtlError):
            yield from comp.open(t)  # double open
        with pytest.raises(PtlError):
            yield from comp.finalize(t)  # finalize before init
        return True

    assert drive(cluster, flow)


def test_close_from_initialized_auto_finalizes():
    cluster = Cluster(nodes=1)
    proc = _FakeProcess(cluster)
    comp = Elan4PtlComponent(proc, cluster.config)

    def flow(t):
        yield from comp.open(t)
        yield from comp.init(t)
        yield from comp.close(t)
        assert comp.state == "closed"
        return True

    assert drive(cluster, flow)


def test_open_fails_without_nic():
    cluster = Cluster(nodes=1)
    proc = _FakeProcess(cluster)
    del cluster.nodes[0].devices["elan4"]
    comp = Elan4PtlComponent(proc, cluster.config)

    def flow(t):
        with pytest.raises(PtlError, match="no Elan4 NIC"):
            yield from comp.open(t)
        return True

    assert drive(cluster, flow)


def test_registry_load_unload():
    cluster = Cluster(nodes=1)
    proc = _FakeProcess(cluster)
    registry = PtlRegistry(proc, cluster.config)
    comp = Elan4PtlComponent(proc, cluster.config)

    def flow(t):
        modules = yield from registry.load(t, comp)
        assert registry.modules == modules
        yield from registry.unload(t, comp)
        assert registry.modules == []
        with pytest.raises(PtlError):
            yield from registry.unload(t, comp)
        return True

    assert drive(cluster, flow)


def test_init_claims_context_finalize_releases_it():
    """Dynamic join/disjoin: the component's lifetime is the context's."""
    cluster = Cluster(nodes=1, contexts_per_node=1)
    proc = _FakeProcess(cluster)

    def flow(t):
        for _ in range(3):  # would exhaust contexts without release
            comp = Elan4PtlComponent(proc, cluster.config)
            yield from comp.open(t)
            yield from comp.init(t)
            assert cluster.capability.free_contexts(0) == 0
            yield from comp.close(t)
            assert cluster.capability.free_contexts(0) == 1
        return True

    assert drive(cluster, flow)


def test_options_validation():
    with pytest.raises(ValueError):
        Elan4PtlOptions(rdma_scheme="teleport").validate()
    with pytest.raises(ValueError):
        Elan4PtlOptions(completion_queue="three-queue").validate()


def test_finalize_drains_inflight_rendezvous():
    """A process that finalizes right after a big isend must not leave a
    dangling descriptor: finalize completes the transfer first (§4.1)."""
    n = 256 * 1024
    payload = np.random.default_rng(0).integers(0, 256, n, dtype=np.uint8)
    got = {}

    def app(mpi):
        if mpi.rank == 0:
            buf = mpi.alloc(n)
            buf.write(payload)
            req = yield from mpi.comm_world.isend(buf, dest=1, tag=1)
            # return immediately: PML finalize must complete `req`
            return "sent"
        else:
            data, st = yield from mpi.comm_world.recv(source=0, tag=1, nbytes=n)
            got["ok"] = np.array_equal(data, payload)
            return "received"

    results, cluster = run_mpi_app(app)
    assert results == {0: "sent", 1: "received"}
    assert got["ok"]
    cluster.assert_no_drops()
    # every context went back to the capability — nothing leaked
    assert cluster.capability.live_vpids == []
