"""Shared helpers for stack-level integration tests and benchmarks."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.ptl.elan4.module import Elan4PtlOptions
from repro.mpi.world import make_mpi_stack_factory
from repro.rte.environment import launch_job


def run_mpi_app(
    app,
    nodes=2,
    np_=2,
    transports=("elan4",),
    datatype_mode="memcpy",
    progress_mode="polling",
    elan4_options=None,
    cluster=None,
):
    """Launch ``app`` on a fresh cluster with the given stack options and
    return ``(results, cluster)``."""
    cluster = cluster or Cluster(nodes=nodes)
    factory = make_mpi_stack_factory(
        datatype_mode=datatype_mode,
        progress_mode=progress_mode,
        elan4_options=elan4_options,
    )
    results = launch_job(
        cluster, app, np=np_, transports=transports, stack_factory=factory
    )
    return results, cluster


def pingpong_app(nbytes, iters=5, payload=None, tag_a=1, tag_b=2):
    """A standard two-rank ping-pong; rank 0 returns the one-way latency,
    rank 1 returns True once every payload verified."""

    def app(mpi):
        buf = mpi.alloc(max(nbytes, 1))
        if mpi.rank == 0:
            if payload is not None:
                buf.write(payload)
            t0 = mpi.now
            for _ in range(iters):
                yield from mpi.comm_world.send(buf, dest=1, tag=tag_a, nbytes=nbytes)
                data, st = yield from mpi.comm_world.recv(
                    source=1, tag=tag_b, nbytes=nbytes
                )
            return (mpi.now - t0) / (2 * iters)
        else:
            ok = True
            for _ in range(iters):
                data, st = yield from mpi.comm_world.recv(
                    source=0, tag=tag_a, nbytes=nbytes
                )
                if payload is not None and not np.array_equal(
                    data, payload[: st.nbytes]
                ):
                    ok = False
                reply = mpi.alloc(max(nbytes, 1))
                if payload is not None:
                    reply.write(data)
                yield from mpi.comm_world.send(reply, dest=0, tag=tag_b, nbytes=nbytes)
            return ok

    return app


def pingpong_latency(nbytes, iters=5, **kwargs):
    """One-way ping-pong latency in µs under the given stack options."""
    results, cluster = run_mpi_app(pingpong_app(nbytes, iters), **kwargs)
    cluster.assert_no_drops()
    assert results[1] is True or results[1] is None or results[1]
    return results[0]


# ---------------------------------------------------------------------------
# REPRO_SANITIZE=1 gate: after every test, tear down each sanitizer created
# during the test and fail on findings, unless the test declares that it
# deliberately provokes them (@pytest.mark.sanitizer_expected).
# ---------------------------------------------------------------------------

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sanitizer_expected: test deliberately provokes runtime-sanitizer "
        "findings (seeded races/leaks/deadlocks); the REPRO_SANITIZE gate "
        "does not fail it",
    )


@pytest.fixture(autouse=True)
def _repro_sanitizer_gate(request):
    from repro.analysis import sanitize

    if not sanitize.enabled():
        yield
        return
    sanitize.reset_session()
    yield
    findings = sanitize.session_report()
    sanitize.reset_session()
    if request.node.get_closest_marker("sanitizer_expected"):
        return
    if findings:
        pytest.fail(
            "runtime sanitizer findings:\n"
            + "\n".join(f.format() for f in findings),
            pytrace=False,
        )
