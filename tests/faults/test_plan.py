"""Fault-plan DSL and injector mechanics (no MPI stack involved)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.elan4.network import Packet
from repro.faults import FaultEvent, FaultInjector, FaultPlan, random_campaign


# ---------------------------------------------------------------- the DSL
def test_builders_chain_and_sort_by_time():
    plan = (
        FaultPlan("p")
        .rail_down(300.0, rail=1)
        .switch_death(100.0, "sw1.0")
        .nic_stall(200.0, 3, duration_us=50.0)
    )
    assert [e.kind for e in plan] == ["switch_death", "nic_stall", "rail_down"]
    assert [e.at_us for e in plan] == [100.0, 200.0, 300.0]
    assert len(plan) == 3


def test_equal_times_keep_append_order():
    plan = FaultPlan().packet_loss(50.0, 0.1).packet_corruption(50.0, 0.2)
    assert [e.kind for e in plan] == ["packet_loss", "packet_corruption"]


def test_bad_events_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan().switch_death(-1.0, "sw0.0")
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan()._add(FaultEvent(0.0, "gremlins"))


def test_describe_mentions_the_essentials():
    e = FaultEvent(10.0, "switch_death", "sw1.0", rail=1, duration_us=25.0)
    text = e.describe()
    assert "switch_death" in text and "sw1.0" in text
    assert "rail=1" in text and "25" in text


def test_random_campaign_is_seed_deterministic():
    kwargs = dict(
        duration_us=1000.0,
        n_faults=6,
        switches=["sw1.0", "sw1.0p1"],
        nodes=[0, 1, 2],
        rails=2,
    )
    a = random_campaign(seed=3, **kwargs)
    b = random_campaign(seed=3, **kwargs)
    c = random_campaign(seed=4, **kwargs)
    assert a.events == b.events
    assert a.events != c.events
    assert len(a) == 6


# ------------------------------------------------------------- the injector
def test_injector_arms_once():
    cluster = Cluster(nodes=2)
    inj = FaultInjector(cluster, FaultPlan().packet_loss(10.0, 0.5))
    inj.arm()
    with pytest.raises(RuntimeError, match="armed"):
        inj.arm()


def test_switch_death_and_restore_appear_in_trace():
    cluster = Cluster(nodes=16)
    plan = FaultPlan().switch_death(10.0, "sw1.0", duration_us=40.0)
    inj = FaultInjector(cluster, plan)
    inj.arm()
    cluster.sim.run(until=100.0)
    assert [k for _, k, _ in inj.trace] == ["switch_death", "switch_restore"]
    assert "sw1.0" not in cluster.topology.dead_switches
    assert cluster.tracer.counters["fault.switch_death"] == 1


def test_nic_stall_delays_but_delivers():
    """A stalled NIC parks arriving work and replays it on resume: the
    packet lands late, intact."""
    cluster = Cluster(nodes=2)
    times = []
    cluster.nics[1]._dispatch["test"] = lambda pkt: times.append(cluster.sim.now)
    plan = FaultPlan().nic_stall(0.0, 1, duration_us=500.0)
    inj = FaultInjector(cluster, plan)
    inj.arm()
    pkt = Packet(0, 1, 64, "test", data=np.arange(64, dtype=np.uint8))
    cluster.sim.spawn(cluster.fabric.transmit(pkt))
    cluster.run()
    assert len(times) == 1
    assert times[0] >= 500.0  # held for the stall, then replayed
    assert [k for _, k, _ in inj.trace] == ["nic_stall", "nic_resume"]


def test_packet_loss_event_sets_fabric_rate():
    cluster = Cluster(nodes=2)
    plan = FaultPlan(seed=9).packet_loss(5.0, 0.25)
    FaultInjector(cluster, plan).arm()
    cluster.sim.run(until=10.0)
    assert cluster.fabric._loss_rate == 0.25


def test_stats_without_job_cover_fabric_counters():
    cluster = Cluster(nodes=16)
    plan = FaultPlan().switch_death(1.0, "sw1.0")
    inj = FaultInjector(cluster, plan)
    inj.arm()
    cluster.sim.run(until=5.0)
    stats = inj.stats()
    assert stats["faults_applied"] == 1
    assert stats["failovers"] == 0
    assert stats["tracer"]["fault.switch_death"] == 1
