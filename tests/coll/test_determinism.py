"""Same seed, same workload — the framework-routed collectives (hardware
paths included) must finish at bit-identical simulated times with
identical algorithm pick counts."""

import numpy as np

from repro.coll import framework
from tests.conftest import run_mpi_app


def _mixed_workload():
    picks = []

    def app(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        for seq in range(3):
            out = yield from comm.bcast(
                bytes([seq]) * 4096 if comm.rank == 0 else None, nbytes=4096
            )
            assert bytes(out) == bytes([seq]) * 4096
            arr = np.full(512, comm.rank + seq + 1, dtype=np.uint8)
            total = yield from comm.allreduce(arr, op="sum")
            picks.append(int(total[0]))
            yield from framework.run_named(comm, "barrier", "hw-tree")
            chunks = [bytes([comm.rank * 8 + dst]) * 256
                      for dst in range(comm.size)]
            yield from comm.alltoall(chunks)
        return mpi.now

    return app, picks


def _run_once():
    app, picks = _mixed_workload()
    results, cluster = run_mpi_app(app, nodes=8, np_=8)
    cluster.assert_no_drops()
    return results, picks, cluster.coll_hw.hw_fallbacks


def test_framework_collectives_are_deterministic():
    a_times, a_picks, a_fb = _run_once()
    b_times, b_picks, b_fb = _run_once()
    assert a_times == b_times
    assert a_picks == b_picks
    assert a_fb == b_fb
