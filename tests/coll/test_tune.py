"""Tuner: table construction, compression, CLI, and determinism."""

import json

import pytest

from repro.coll import tune
from repro.coll.decision import DecisionTable
from repro.coll.tune import _compress_sizes, _rank_bands, build_table


def test_rank_bands_cover_every_group_size():
    bands = _rank_bands([2, 4, 8])
    assert bands == [(1, 2, 2), (3, 4, 4), (5, None, 8)]
    # every conceivable size falls in exactly one band
    for n in range(1, 32):
        hits = [b for b in bands if b[0] <= n and (b[1] is None or n <= b[1])]
        assert len(hits) == 1


def test_compress_sizes_merges_runs():
    winners = {0: "a", 64: "a", 1024: "b", 65536: "b"}
    bands = _compress_sizes([0, 64, 1024, 65536], winners.__getitem__)
    assert bands == [
        {"max_bytes": 64, "alg": "a"},
        {"max_bytes": None, "alg": "b"},
    ]
    # a single winner compresses to one unbounded band
    assert _compress_sizes([0, 64], lambda s: "x") == [
        {"max_bytes": None, "alg": "x"}
    ]


@pytest.fixture(scope="module")
def tiny_table():
    """One real (but minimal) sweep: 2 ranks, two sizes, one iteration."""
    return build_table(ranks=[2], sizes=[0, 1024], iters=1,
                       ops=["barrier", "bcast"])


def test_build_table_emits_valid_table(tiny_table):
    DecisionTable(tiny_table, source="<test>")
    assert set(tiny_table["ops"]) == {"barrier", "bcast"}
    assert tiny_table["sweep"] == {
        "ranks": [2], "sizes": [0, 1024], "iters": 1, "seed": 0,
        "backend": "elan4",
    }
    (row,) = tiny_table["ops"]["barrier"]
    assert row["min_ranks"] == 1 and row["max_ranks"] is None
    assert "bands" not in row  # barrier is size-independent


def test_build_table_is_deterministic(tiny_table):
    again = build_table(ranks=[2], sizes=[0, 1024], iters=1,
                        ops=["barrier", "bcast"])
    assert again == tiny_table


def test_cli_smoke_writes_loadable_table(tmp_path):
    out = tmp_path / "table.json"
    rc = tune.main(["--out", str(out), "--ranks", "2", "--sizes", "0,1024",
                    "--iters", "1"])
    assert rc == 0
    table = DecisionTable.load(out)
    assert set(table.raw["ops"]) == set(tune.TUNED_OPS)
    # round-trips as stable JSON
    assert json.loads(out.read_text())["version"] == 1


def test_committed_table_matches_regeneration_inputs():
    """The committed artifact must record the full sweep that produced it,
    so `python -m repro.coll.tune` reproduces it."""
    from repro.coll.decision import DEFAULT_TABLE_PATH

    raw = json.loads(DEFAULT_TABLE_PATH.read_text())
    assert raw["generated_by"] == "python -m repro.coll.tune"
    assert raw["sweep"]["ranks"] == tune.FULL_RANKS
    assert raw["sweep"]["sizes"] == sorted(tune.FULL_SIZES)
