"""Fault-aware degradation: hardware collectives must fall back to their
software counterparts — symmetrically at every rank, with correct results —
when a fault campaign breaks the fabric, when the group spans dynamically
spawned ranks, or when a member has no Elan endpoint at all."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.coll import framework
from repro.coll.hw import HwCollRegistry
from repro.config import default_config
from repro.faults import FaultInjector, FaultPlan
from tests.conftest import run_mpi_app


def test_switch_death_degrades_hw_to_software_and_completes():
    """Acceptance scenario: a campaign kills a spine switch between two
    collective phases.  Phase A runs on the NIC; phase B sees the faulty
    topology, degrades to software, and still delivers correct bytes over
    the rerouted fat tree."""
    config = default_config()
    # route bcast+barrier through the hw algorithms regardless of the table
    config.coll_overrides = "bcast=hw,barrier=hw-tree"
    cluster = Cluster(nodes=16, config=config)
    fault_at = 3000.0
    plan = FaultPlan("spine-death").switch_death(fault_at, "sw1.0")
    inj = FaultInjector(cluster, plan)
    inj.arm()
    payload = bytes(range(256)) * 64  # 16 KB
    phase_a_hw = {}

    def app(mpi):
        comm = mpi.comm_world
        yield from framework.run_named(comm, "barrier", "dissemination")
        # phase A: healthy fabric, the override picks the NIC path
        yield from comm.barrier()
        out = yield from comm.bcast(payload if comm.rank == 0 else None)
        assert bytes(out) == payload
        phase_a_hw[comm.rank] = mpi.comm_world.stack.process.job.cluster \
            .coll_hw.hw_fallbacks
        # sit out the switch death (plus reroute margin)
        while mpi.now < fault_at + 200.0:
            yield from mpi.thread.sleep(100.0)
        # phase B: topology is faulty -> symmetric software fallback
        yield from comm.barrier()
        out = yield from comm.bcast(payload if comm.rank == 3 else None,
                                    root=3)
        return bytes(out) == payload

    results = cluster.run_mpi(app, np=8)
    assert all(results.values()), results
    # phase A ran on hardware at every rank...
    assert all(v == 0 for v in phase_a_hw.values())
    # ...phase B degraded: one fallback per rank per hw-selected collective
    assert cluster.coll_hw.hw_fallbacks == 16  # 8 ranks x (barrier + bcast)
    assert [k for _, k, _ in inj.trace] == ["switch_death"]
    assert cluster.topology.faulty


def test_tcp_only_ranks_always_use_software():
    """No Elan endpoint, no hardware path — but the table may still name
    hw algorithms; the gate degrades every call without ever latching."""
    config = default_config()
    config.coll_overrides = "barrier=hw-tree"

    def app(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        yield from comm.barrier()
        return True

    results, cluster = run_mpi_app(
        app, nodes=2, np_=2, transports=("tcp",),
        cluster=Cluster(nodes=2, config=config),
    )
    assert all(results.values())
    assert cluster.coll_hw.hw_fallbacks == 4  # 2 ranks x 2 barriers
    # no Elan ctx is a soft condition, not a latched failure
    state = cluster.coll_hw._shared[(0, (0, 1))]
    assert not state.static_failed


def test_dynamic_member_latches_static_failure():
    """A rank claimed after the cohort sealed (an MPI_Comm_spawn child,
    §4.1) permanently disqualifies its communicator from hw collectives."""
    cluster = Cluster(nodes=4)
    reg: HwCollRegistry = cluster.coll_hw
    ctxs = [cluster.claim_context(i) for i in range(3)]
    for rank, ctx in enumerate(ctxs):
        reg.register_rank(rank, ctx, "world", group_count=3)
    assert cluster.capability.cohort_sealed
    # a post-seal claim: dynamically spawned, outside the static cohort
    late = cluster.claim_context(3)
    reg.register_rank(3, late, "spawn", group_count=1)
    assert not cluster.capability.in_static_cohort(late.vpid)

    class FakeComm:
        ctx_id = 0x123
        group = [0, 1, 2, 3]

    state = reg.shared_for(FakeComm())
    assert state.decide(0, "barrier") is False
    assert state.static_failed
    # latched: even a later healthy check stays software
    assert state.decide(1, "barrier") is False


def test_sealed_world_passes_the_gate():
    cluster = Cluster(nodes=2)
    reg: HwCollRegistry = cluster.coll_hw
    ctxs = [cluster.claim_context(i) for i in range(2)]
    for rank, ctx in enumerate(ctxs):
        reg.register_rank(rank, ctx, "world", group_count=2)

    class FakeComm:
        ctx_id = 0
        group = [0, 1]

    state = reg.shared_for(FakeComm())
    assert state.decide(0, "barrier") is True
    assert state.barrier_group is not None


def test_unsealed_world_is_soft_not_latched():
    """Before every rank has wired up, the gate must refuse without
    latching — startup is staggered, not a permanent failure."""
    cluster = Cluster(nodes=2)
    reg: HwCollRegistry = cluster.coll_hw
    ctx0 = cluster.claim_context(0)
    reg.register_rank(0, ctx0, "world", group_count=2)  # rank 1 not yet

    class FakeComm:
        ctx_id = 0
        group = [0, 1]

    state = reg.shared_for(FakeComm())
    assert state.decide(0, "barrier") is False
    assert state.decide(0, "barrier") is False  # second member, same seq
    assert not state.static_failed
    # rank 1 arrives; the cohort seals; the next call goes hardware
    ctx1 = cluster.claim_context(1)
    reg.register_rank(1, ctx1, "world", group_count=2)
    assert state.decide(1, "barrier") is True
    assert not state.static_failed


def test_nic_stall_degrades_without_latching():
    cluster = Cluster(nodes=2)
    reg: HwCollRegistry = cluster.coll_hw
    ctxs = [cluster.claim_context(i) for i in range(2)]
    for rank, ctx in enumerate(ctxs):
        reg.register_rank(rank, ctx, "world", group_count=2)

    class FakeComm:
        ctx_id = 0
        group = [0, 1]

    state = reg.shared_for(FakeComm())
    cluster.nics[1].stall()
    assert state.decide(0, "barrier") is False
    assert not state.static_failed
    cluster.nics[1].resume()
    assert state.decide(1, "barrier") is True


def test_config_kill_switch_disables_hw():
    config = default_config()
    config.coll_hw_enabled = False
    cluster = Cluster(nodes=2, config=config)
    reg: HwCollRegistry = cluster.coll_hw
    ctxs = [cluster.claim_context(i) for i in range(2)]
    for rank, ctx in enumerate(ctxs):
        reg.register_rank(rank, ctx, "world", group_count=2)

    class FakeComm:
        ctx_id = 0
        group = [0, 1]

    assert reg.shared_for(FakeComm()).decide(0, "barrier") is False
