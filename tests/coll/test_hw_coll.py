"""NIC-offloaded barrier and broadcast on a healthy 8-node fabric: they
must work, interleave, and beat their software counterparts (the paper's
testbed size)."""

import numpy as np
import pytest

from repro.coll import framework
from repro.coll.registry import CollError
from tests.conftest import run_mpi_app


def _timed_app(op, alg, iters=20, nbytes=0):
    def app(mpi):
        comm = mpi.comm_world
        yield from framework.run_named(comm, "barrier", "dissemination")
        payload = b"\xa5" * nbytes if comm.rank == 0 else None
        t0 = mpi.now
        for _ in range(iters):
            if op == "barrier":
                yield from framework.run_named(comm, "barrier", alg)
            else:
                out = yield from framework.run_named(
                    comm, "bcast", alg, data=payload, root=0
                )
                assert len(out) == nbytes
        return (mpi.now - t0) / iters

    return app


def _latency(op, alg, nbytes=0):
    results, cluster = run_mpi_app(_timed_app(op, alg, nbytes=nbytes),
                                   nodes=8, np_=8)
    cluster.assert_no_drops()
    assert cluster.coll_hw.hw_fallbacks == 0
    return max(results.values())


def test_nic_barrier_beats_software_at_8_nodes():
    hw = _latency("barrier", "hw-tree")
    sw = _latency("barrier", "dissemination")
    assert hw < sw, f"hw-tree {hw:.2f}us not faster than dissemination {sw:.2f}us"


def test_hw_bcast_beats_software_at_8_nodes():
    nbytes = 65536
    hw = _latency("bcast", "hw", nbytes)
    sw = min(_latency("bcast", "binomial", nbytes),
             _latency("bcast", "chain", nbytes))
    assert hw < sw, f"hw {hw:.2f}us not faster than software {sw:.2f}us"


def test_hw_rounds_interleave_roots_and_empty_payloads():
    """Back-to-back hw broadcasts from different roots (fragments of
    consecutive rounds overlap in flight) plus hw barriers must all
    assemble on the right round."""

    def app(mpi):
        comm = mpi.comm_world
        yield from framework.run_named(comm, "barrier", "dissemination")
        yield from framework.run_named(comm, "barrier", "hw-tree")
        got = []
        for root, payload in [(0, b"x" * 5000), (3, b"yz"), (1, b""),
                              (7, b"q" * 3000)]:
            data = payload if comm.rank == root else None
            out = yield from framework.run_named(
                comm, "bcast", "hw", data=data, root=root
            )
            got.append(bytes(out) == payload)
        yield from framework.run_named(comm, "barrier", "hw-tree")
        return got

    results, cluster = run_mpi_app(app, nodes=8, np_=8)
    cluster.assert_no_drops()
    assert all(all(v) for v in results.values()), results
    assert cluster.coll_hw.hw_fallbacks == 0


def test_hw_barrier_actually_synchronizes():
    entered = {}
    exited = {}

    def app(mpi):
        comm = mpi.comm_world
        yield from framework.run_named(comm, "barrier", "dissemination")
        yield from mpi.thread.sleep(comm.rank * 40.0)  # staggered arrival
        entered[comm.rank] = mpi.now
        yield from framework.run_named(comm, "barrier", "hw-tree")
        exited[comm.rank] = mpi.now

    _, cluster = run_mpi_app(app, nodes=8, np_=8)
    cluster.assert_no_drops()
    latest_entry = max(entered.values())
    assert all(t >= latest_entry for t in exited.values())


def test_run_named_hw_raises_when_disabled(monkeypatch):
    """Forcing a hw algorithm while hw is off must raise, not silently
    substitute software."""
    monkeypatch.setenv("REPRO_COLL_HW", "0")

    def app(mpi):
        comm = mpi.comm_world
        yield from framework.run_named(comm, "barrier", "dissemination")
        with pytest.raises(CollError, match="unavailable"):
            yield from framework.run_named(comm, "barrier", "hw-tree")
        return True

    results, _ = run_mpi_app(app, nodes=2, np_=2)
    assert all(results.values())


def test_default_table_routes_large_bcast_to_hw():
    """The committed tuned table must send a large-count bcast down the hw
    path at the testbed size (acceptance: the tuner's winners are live)."""

    def app(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        payload = np.full(65536, 7, dtype=np.uint8).tobytes()
        out = yield from comm.bcast(
            payload if comm.rank == 0 else None, nbytes=len(payload)
        )
        return bytes(out) == payload

    results, cluster = run_mpi_app(app, nodes=8, np_=8)
    assert all(results.values())
    from repro.coll.decision import active_table

    assert active_table(cluster.config).lookup("bcast", 8, 65536) == "hw"
    assert cluster.coll_hw.hw_fallbacks == 0
