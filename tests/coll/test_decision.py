"""Decision layer: table validation, (ranks, nbytes) lookup, overrides."""

import json

import pytest

from repro.coll import framework  # noqa: F401  (imports populate the registry)
from repro.coll.decision import (
    BUILTIN_TABLE,
    DEFAULT_TABLE_PATH,
    DecisionTable,
    active_table,
    clear_cache,
    override_for,
)
from repro.coll.registry import CollError
from repro.config import default_config


def _table(ops):
    return DecisionTable({"version": 1, "ops": ops})


# ------------------------------------------------------------- validation
def test_builtin_table_is_valid():
    DecisionTable(BUILTIN_TABLE, source="<builtin>")


def test_committed_table_exists_and_validates():
    """The tuner-emitted artifact ships with the repo and must stay
    loadable — the framework consults it by default."""
    assert DEFAULT_TABLE_PATH.exists(), "run python -m repro.coll.tune"
    table = DecisionTable.load(DEFAULT_TABLE_PATH)
    assert set(table.raw["ops"]) >= {"barrier", "bcast", "allreduce",
                                     "alltoall", "reduce_scatter"}


def test_unknown_algorithm_rejected():
    with pytest.raises(CollError, match="unknown algorithm"):
        _table({"bcast": [{"min_ranks": 1, "max_ranks": None,
                           "default": "quantum"}]})


def test_bands_must_ascend():
    with pytest.raises(CollError, match="strictly ascending"):
        _table({"bcast": [{
            "min_ranks": 1, "max_ranks": None, "default": "binomial",
            "bands": [{"max_bytes": 4096, "alg": "binomial"},
                      {"max_bytes": 1024, "alg": "chain"},
                      {"max_bytes": None, "alg": "chain"}],
        }]})


def test_final_band_must_be_unbounded():
    with pytest.raises(CollError, match="final size band"):
        _table({"bcast": [{
            "min_ranks": 1, "max_ranks": None, "default": "binomial",
            "bands": [{"max_bytes": 1024, "alg": "binomial"}],
        }]})
    with pytest.raises(CollError, match="final rank band"):
        _table({"bcast": [{"min_ranks": 1, "max_ranks": 8,
                           "default": "binomial"}]})


def test_missing_ops_mapping_rejected():
    with pytest.raises(CollError, match="missing 'ops'"):
        DecisionTable({"version": 1})


# ---------------------------------------------------------------- lookup
SAMPLE = {
    "bcast": [
        {"min_ranks": 1, "max_ranks": 4, "default": "binomial"},
        {"min_ranks": 5, "max_ranks": None, "default": "chain",
         "bands": [{"max_bytes": 2048, "alg": "binomial"},
                   {"max_bytes": None, "alg": "hw"}]},
    ],
}


def test_lookup_rank_bands_and_size_bands():
    t = _table(SAMPLE)
    assert t.lookup("bcast", 2, 1 << 20) == "binomial"   # small-comm row
    assert t.lookup("bcast", 8, 100) == "binomial"       # first size band
    assert t.lookup("bcast", 8, 2048) == "binomial"      # inclusive bound
    assert t.lookup("bcast", 8, 2049) == "hw"            # unbounded band
    assert t.lookup("bcast", 8, None) == "chain"         # no hint: default


def test_lookup_uncovered_op_falls_back_to_builtin():
    t = _table(SAMPLE)
    assert t.lookup("barrier", 8, None) == "dissemination"
    with pytest.raises(CollError, match="no decision entry"):
        t.lookup("gatherv", 8, None)


# -------------------------------------------------------------- overrides
def test_env_override_beats_config(monkeypatch):
    config = default_config()
    config.coll_overrides = "bcast=chain"
    assert override_for("bcast", config) == "chain"
    monkeypatch.setenv("REPRO_COLL_BCAST", "binomial")
    assert override_for("bcast", config) == "binomial"
    assert override_for("barrier", config) is None


def test_config_override_parsing():
    config = default_config()
    config.coll_overrides = " bcast = chain , barrier=hw-tree,,"
    assert override_for("bcast", config) == "chain"
    assert override_for("barrier", config) == "hw-tree"
    assert override_for("allreduce", config) is None


# ----------------------------------------------------------- active table
def test_active_table_env_path_and_cache(monkeypatch, tmp_path):
    path = tmp_path / "table.json"
    path.write_text(json.dumps({"version": 1, "ops": SAMPLE}))
    monkeypatch.setenv("REPRO_COLL_TABLE", str(path))
    clear_cache()
    config = default_config()
    t = active_table(config)
    assert t.source == str(path)
    assert t.lookup("bcast", 8, None) == "chain"
    # cached: a rewrite is invisible until clear_cache()
    path.write_text(json.dumps({"version": 1, "ops": {
        "bcast": [{"min_ranks": 1, "max_ranks": None, "default": "binomial"}],
    }}))
    assert active_table(config).lookup("bcast", 8, None) == "chain"
    clear_cache()
    assert active_table(config).lookup("bcast", 8, None) == "binomial"
    clear_cache()


def test_active_table_config_path(tmp_path):
    path = tmp_path / "cfg_table.json"
    path.write_text(json.dumps({"version": 1, "ops": SAMPLE}))
    config = default_config()
    config.coll_decision_table = str(path)
    clear_cache()
    assert active_table(config).source == str(path)
    clear_cache()


def test_active_table_default_is_committed_artifact():
    clear_cache()
    t = active_table(default_config())
    assert t.source == str(DEFAULT_TABLE_PATH)


def test_broken_table_file_raises(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(CollError, match="cannot load decision table"):
        DecisionTable.load(path)
