"""Registry contract: catalogue shape, lookup errors, registration rules."""

import pytest

from repro.coll import framework  # noqa: F401  (imports populate the registry)
from repro.coll.registry import CollError, algorithms_for, get, ops, register


def test_every_major_op_has_at_least_two_algorithms():
    for op in ("barrier", "bcast", "allreduce", "alltoall", "reduce_scatter"):
        names = [a.name for a in algorithms_for(op)]
        assert len(names) >= 2, f"{op} has only {names}"


def test_expected_catalogue():
    assert {"binomial", "chain", "hw"} <= {a.name for a in algorithms_for("bcast")}
    assert {"recursive-doubling", "ring"} <= {
        a.name for a in algorithms_for("allreduce")
    }
    assert {"dissemination", "hw-tree"} <= {a.name for a in algorithms_for("barrier")}
    assert {"pairwise", "bruck"} <= {a.name for a in algorithms_for("alltoall")}
    assert {"barrier", "bcast", "allreduce", "alltoall", "reduce_scatter"} <= set(
        ops()
    )


def test_hw_algorithms_declare_software_fallbacks():
    for op in ops():
        for alg in algorithms_for(op):
            if alg.hw:
                fb = get(op, alg.fallback)  # must resolve
                assert not fb.hw, f"{op}/{alg.name} falls back to hw {fb.name}"


def test_get_unknown_algorithm_lists_choices():
    with pytest.raises(CollError, match="unknown algorithm .* have .*binomial"):
        get("bcast", "quantum")


def test_get_unknown_op():
    with pytest.raises(CollError, match="unknown collective op"):
        get("gatherv", "linear")
    with pytest.raises(CollError, match="unknown collective op"):
        algorithms_for("gatherv")


def test_register_rejects_duplicates_and_hw_without_fallback():
    def fake(comm):
        yield None

    register("bcast_test_only", "x", fake)
    with pytest.raises(CollError, match="registered twice"):
        register("bcast_test_only", "x", fake)
    with pytest.raises(CollError, match="must declare a software fallback"):
        register("bcast_test_only", "y", fake, hw=True)
