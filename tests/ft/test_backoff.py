"""The shared deterministic jittered-backoff helper (repro.ft.backoff)."""

import numpy as np
import pytest

from repro.ft.backoff import JitteredBackoff


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        JitteredBackoff(rng, 0.0)
    with pytest.raises(ValueError):
        JitteredBackoff(rng, 100.0, factor=0.5)
    with pytest.raises(ValueError):
        JitteredBackoff(rng, 100.0, cap_us=50.0)
    with pytest.raises(ValueError):
        JitteredBackoff(rng, 100.0, jitter_frac=1.5)


def test_delay_bounds_and_growth():
    b = JitteredBackoff(
        np.random.default_rng(1), 100.0, factor=2.0, cap_us=800.0, jitter_frac=0.25
    )
    for attempt in range(8):
        d = b.delay(attempt)
        base = min(100.0 * 2.0**attempt, 800.0)
        assert base <= d <= base * 1.25
    # deep attempts saturate at the cap (plus jitter)
    assert b.delay(20) <= 800.0 * 1.25


def test_same_seed_same_sequence():
    a = JitteredBackoff(np.random.default_rng(42), 50.0, cap_us=400.0)
    b = JitteredBackoff(np.random.default_rng(42), 50.0, cap_us=400.0)
    assert [a.delay(i) for i in range(10)] == [b.delay(i) for i in range(10)]


def test_stateful_next_and_reset():
    b = JitteredBackoff(np.random.default_rng(3), 10.0, cap_us=80.0, jitter_frac=0.0)
    seq = [b.next() for _ in range(5)]
    assert seq == [10.0, 20.0, 40.0, 80.0, 80.0]
    assert b.attempt == 5
    b.reset()
    assert b.attempt == 0
    assert b.next() == 10.0


def test_zero_jitter_is_pure_exponential():
    b = JitteredBackoff(np.random.default_rng(9), 100.0, cap_us=1600.0, jitter_frac=0.0)
    assert [b.delay(i) for i in range(5)] == [100.0, 200.0, 400.0, 800.0, 1600.0]


def test_reliability_channel_uses_shared_helper():
    """PR 1's retransmission backoff and the FT detector/recovery pacing
    are one implementation (no drift between the two formulas)."""
    from repro.core.ptl.elan4 import reliability

    assert reliability.JitteredBackoff is JitteredBackoff
