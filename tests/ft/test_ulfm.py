"""ULFM recovery ops: revoke, agree, shrink — and their isolation."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ft import CommRevokedError, RankDeadError, enable
from repro.mpi.communicator import MpiError
from repro.rte.environment import RteJob


def _ft_job(nodes, np_, app, seed=0):
    cluster = Cluster(nodes=nodes, seed=seed)
    job = RteJob(cluster)
    ft = enable(job)
    for r in range(np_):
        job.launch(r, app, group="world", group_count=np_)
    return cluster, job, ft


def test_kill_mid_allreduce_revoke_agree_shrink_completes():
    """The core self-healing loop at 8 ranks: a death mid-allreduce turns
    into clean errors (never a hang), the survivors revoke, agree, shrink,
    and the shrunken communicator computes a correct allreduce."""
    out = {}

    def app(api):
        comm = api.comm_world
        data = np.arange(8, dtype=np.float64)
        try:
            while True:
                data = yield from comm.allreduce(data)
        except (RankDeadError, CommRevokedError) as e:
            comm.revoke()
            ok = yield from comm.agree(True)
            shrunk = yield from comm.shrink()
            result = yield from shrunk.allreduce(
                np.ones(4, dtype=np.float64) * (api.rank + 1)
            )
            out[api.rank] = (type(e).__name__, ok, shrunk.size, shrunk.group, result)
        return "done"

    cluster, job, ft = _ft_job(8, 8, app, seed=7)
    plan = FaultPlan("kill3").proc_kill(3000.0, 3)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=5_000_000)

    survivors = [0, 1, 2, 4, 5, 6, 7]
    assert sorted(out) == survivors
    expected = float(sum(r + 1 for r in survivors))
    for rank in survivors:
        kind, ok, size, group, result = out[rank]
        assert kind in ("RankDeadError", "CommRevokedError")
        assert ok is True  # fault-tolerant agreement over the live members
        assert size == 7 and group == survivors
        np.testing.assert_array_equal(result, np.full(4, expected))
        assert results[rank] == "done"
    # every member derived the same shrunken context id
    assert cluster.tracer.counters["ft.shrink_done"] == 1
    assert cluster.tracer.counters["ft.comm_revoked"] == 1


def test_agree_ands_flags_and_false_propagates():
    out = {}

    def app(api):
        comm = api.comm_world
        flag = api.rank != 1  # rank 1 votes no
        out[api.rank] = yield from comm.agree(flag)
        return "done"

    cluster, job, ft = _ft_job(4, 4, app, seed=1)
    job.wait(until=1_000_000)
    assert out == {r: False for r in range(4)}


def test_agree_completes_when_contributor_dies_mid_call():
    """agree() must tolerate failures *during* the agreement: the killed
    rank never contributes, and its death releases the waiting members."""
    out = {}

    def app(api):
        comm = api.comm_world
        if api.rank == 2:
            yield from api.thread.sleep(1_000_000.0)  # killed long before this
            return "unreachable"
        out[api.rank] = yield from comm.agree(True)
        return "done"

    cluster, job, ft = _ft_job(4, 4, app, seed=2)
    plan = FaultPlan("kill2").proc_kill(1500.0, 2)
    FaultInjector(cluster, plan, job=job).arm()
    job.wait(until=5_000_000)
    assert out == {0: True, 1: True, 3: True}


def test_revoked_comm_fails_new_ops_but_agree_still_works():
    out = {}

    def app(api):
        comm = api.comm_world
        if api.rank == 0:
            comm.revoke()
        else:
            # wait for the staggered revoke poison to land everywhere
            yield from api.thread.sleep(500.0)
        with pytest.raises(CommRevokedError):
            yield from comm.send(b"x", dest=(api.rank + 1) % 2)
        out[api.rank] = yield from comm.agree(True)
        return "done"

    cluster, job, ft = _ft_job(2, 2, app, seed=3)
    job.wait(until=1_000_000)
    assert out == {0: True, 1: True}


def test_disjoint_communicator_traffic_is_untouched():
    """A death only poisons communicators containing the dead rank: the
    other half of a split world keeps collective-ing, error-free."""
    half_b_done = {}
    half_a_out = {}

    def app(api):
        comm = api.comm_world
        sub = yield from comm.split(color=api.rank // 4)
        if api.rank >= 4:  # half B: no dead member, must never see an error
            data = np.ones(4)
            for _ in range(40):
                data = yield from sub.allreduce(np.ones(4))
            half_b_done[api.rank] = data.tolist()
            return "b-done"
        try:
            while True:
                yield from sub.allreduce(np.ones(4))
        except (RankDeadError, CommRevokedError):
            sub.revoke()
            shrunk = yield from sub.shrink()
            result = yield from shrunk.allreduce(np.ones(2))
            half_a_out[api.rank] = (shrunk.group, result.tolist())
        return "a-done"

    cluster, job, ft = _ft_job(8, 8, app, seed=4)
    plan = FaultPlan("kill2").proc_kill(4000.0, 2)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=10_000_000)

    assert sorted(half_b_done) == [4, 5, 6, 7]
    for rank in (4, 5, 6, 7):
        assert half_b_done[rank] == [4.0, 4.0, 4.0, 4.0]
        assert results[rank] == "b-done"
    assert sorted(half_a_out) == [0, 1, 3]
    for rank in (0, 1, 3):
        group, result = half_a_out[rank]
        assert group == [0, 1, 3]
        assert result == [3.0, 3.0]


def test_ft_ops_require_enabled_daemon():
    cluster = Cluster(nodes=2, seed=0)
    job = RteJob(cluster)  # no enable()
    failures = {}

    def app(api):
        try:
            api.comm_world.revoke()
        except MpiError as e:
            failures[api.rank] = str(e)
        yield cluster.sim.timeout(0)

    for r in range(2):
        job.launch(r, app, group="world", group_count=2)
    job.wait(until=1_000_000)
    assert sorted(failures) == [0, 1]
    assert "fault tolerance is not enabled" in failures[0]
