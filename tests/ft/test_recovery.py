"""Recovery driver: respawn-and-rejoin, retry budget, graceful degradation."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ft import CommRevokedError, RankDeadError, RecoveryDriver, enable
from repro.rte.checkpoint import CheckpointImage, restart_rank
from repro.rte.environment import RteJob


def _survivor_app(results, ft):
    def app(api):
        comm = api.comm_world
        api.ft_checkpoint({"step": 7})
        try:
            while True:
                yield from comm.allreduce(np.ones(4))
        except (RankDeadError, CommRevokedError):
            comm.revoke()
            dead = ft.membership.dead_ranks()[0]
            yield from api.ft_wait_recovered(dead)
            comm2 = yield from api.ft_rebuild_world()
            out = yield from comm2.allreduce(np.ones(4, dtype=np.float64))
            results[api.rank] = (comm2.size, out.tolist())
        return "done"

    return app


def test_respawn_and_rejoin_full_world():
    cluster = Cluster(nodes=8, seed=21)
    job = RteJob(cluster)
    results = {}

    def factory(rank, image):
        def app(api):
            yield from api.rejoin_world()
            comm = yield from api.ft_rebuild_world()
            out = yield from comm.allreduce(np.ones(4, dtype=np.float64))
            results[api.rank] = (comm.size, out.tolist(), api.restart_image.app_state)
            return "recovered"

        return app

    driver = RecoveryDriver(job, app_factory=factory)
    ft = job.ft
    for r in range(8):
        job.launch(r, _survivor_app(results, ft), group="world", group_count=8)
    plan = FaultPlan("kill3").proc_kill(3000.0, 3)
    FaultInjector(cluster, plan, job=job).arm()
    res = job.wait(until=10_000_000)

    assert driver.states == {3: "recovered"}
    assert res[3] == "recovered"
    assert results[3][0] == 8  # full world rebuilt
    assert results[3][1] == [8.0] * 4
    assert results[3][2] == {"step": 7}  # checkpoint image round-tripped
    for rank in (0, 1, 2, 4, 5, 6, 7):
        assert results[rank] == (8, [8.0] * 4)
    # recovery timeline: detect -> reclaim -> respawn -> re-attach (MTTR)
    mttr = cluster.tracer.samples["ft.mttr_us"]
    assert len(mttr) == 1 and 0.0 < mttr[0] < 1_000_000.0
    assert ft.membership.dead_ranks() == []
    assert ft.membership.recovered_ranks() == [3]


def test_no_app_factory_degrades_to_shrink_only():
    cluster = Cluster(nodes=4, seed=22)
    job = RteJob(cluster)
    driver = RecoveryDriver(job)  # no factory: shrink-only mode
    results = {}

    def app(api):
        comm = api.comm_world
        try:
            while True:
                yield from comm.allreduce(np.ones(4))
        except (RankDeadError, CommRevokedError):
            comm.revoke()
            shrunk = yield from comm.shrink()
            results[api.rank] = shrunk.size
        return "done"

    for r in range(4):
        job.launch(r, app, group="world", group_count=4)
    plan = FaultPlan("kill2").proc_kill(2000.0, 2)
    FaultInjector(cluster, plan, job=job).arm()
    job.wait(until=5_000_000)

    assert driver.states == {2: "degraded"}
    assert driver.degraded == {2}
    assert cluster.tracer.counters["ft.degraded_shrink_only"] == 1
    assert results == {0: 3, 1: 3, 3: 3}


def test_respawn_budget_exhaustion_degrades():
    cluster = Cluster(nodes=2, seed=23)
    job = RteJob(cluster)
    calls = []

    def broken_factory(rank, image):
        calls.append(rank)
        raise RuntimeError("no binary for this rank")

    driver = RecoveryDriver(job, app_factory=broken_factory)

    def app(api):
        yield from api.thread.sleep(200_000.0)
        return "ok"

    for r in range(2):
        job.launch(r, app, group="world", group_count=2)
    plan = FaultPlan("kill1").proc_kill(1000.0, 1)
    FaultInjector(cluster, plan, job=job).arm()
    job.wait(until=5_000_000)

    assert driver.states == {1: "degraded"}
    assert len(calls) == driver.config.respawn_max_attempts
    assert cluster.tracer.counters["ft.respawn_failed"] == 3
    assert cluster.tracer.counters["ft.degraded_shrink_only"] == 1


def test_restart_of_killed_rank_requires_reclaim():
    cluster = Cluster(nodes=2, seed=24)
    job = RteJob(cluster)
    ft = enable(job)

    def app(api):
        yield from api.thread.sleep(500_000.0)
        return "ok"

    for r in range(2):
        job.launch(r, app, group="world", group_count=2)
    plan = FaultPlan("kill1").proc_kill(1000.0, 1)
    FaultInjector(cluster, plan, job=job).arm()

    # run past the kill but stop before detection + reclaim complete
    cluster.sim.run(until=1500.0)
    assert job.processes[1].killed
    assert not ft.reclaimed(1)
    with pytest.raises(RuntimeError, match="has not been reclaimed"):
        restart_rank(job, CheckpointImage(1), app)

    # once the daemon reclaimed the corpse's NIC state, restart is legal
    deadline = cluster.sim.now + 100_000.0
    while not ft.reclaimed(1) and cluster.sim.now < deadline:
        cluster.sim.run(until=cluster.sim.now + 1000.0)
    assert ft.reclaimed(1)
    proc2 = restart_rank(job, CheckpointImage(1), app)
    job.wait(until=1_000_000)
    assert proc2.epoch == 1  # registry epoch bumped for the new incarnation


def test_restart_of_killed_rank_without_ft_is_refused():
    cluster = Cluster(nodes=2, seed=25)
    job = RteJob(cluster)  # FT never enabled

    def app(api):
        yield from api.thread.sleep(10_000.0)
        return "ok"

    for r in range(2):
        job.launch(r, app, group="world", group_count=2)
    cluster.sim.schedule(1000.0, lambda: job.processes[1].kill())
    job.wait(until=1_000_000)
    with pytest.raises(RuntimeError, match="enable repro.ft"):
        restart_rank(job, CheckpointImage(1), app)
