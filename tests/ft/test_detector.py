"""Failure detector: heartbeats, sweep, starvation safety, evidence."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ft import CommRevokedError, RankDeadError, enable
from repro.rte.environment import RteJob


def _launch_ft_job(nodes, np_, app, seed=0, config=None):
    cluster = Cluster(nodes=nodes, seed=seed)
    job = RteJob(cluster)
    ft = enable(job, config)
    for r in range(np_):
        job.launch(r, app, group="world", group_count=np_)
    return cluster, job, ft


def test_proc_kill_is_detected_with_finite_latency():
    seen = {}

    def app(api):
        comm = api.comm_world
        data = np.ones(4)
        try:
            while True:
                data = yield from comm.allreduce(data)
        except (RankDeadError, CommRevokedError) as e:
            seen[api.rank] = e
            comm.revoke()  # unblock survivors still paired with live ranks
        return "survived"

    cluster, job, ft = _launch_ft_job(4, 4, app, seed=3)
    plan = FaultPlan("kill").proc_kill(2000.0, 2)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=1_000_000)

    assert ft.membership.dead_ranks() == [2]
    rec = ft.membership.record(2)
    assert rec.kill_at_us == 2000.0
    assert rec.at_us >= 2000.0
    # detection latency is finite and bounded by timeout + sweep + slack
    latencies = cluster.tracer.samples["ft.detect_latency_us"]
    assert len(latencies) == 1
    cfg = ft.config
    assert 0.0 < latencies[0] < cfg.heartbeat_timeout_us + 4 * cfg.sweep_period_us
    # every survivor observed the death; the killed rank returns nothing
    assert sorted(seen) == [0, 1, 3]
    assert results[2] is None
    assert all(results[r] == "survived" for r in (0, 1, 3))


def test_killed_rank_failure_not_reraised_by_wait():
    def app(api):
        yield from api.thread.sleep(50_000.0)
        return "ok"

    cluster, job, ft = _launch_ft_job(2, 2, app, seed=1)
    plan = FaultPlan("kill").proc_kill(1000.0, 1)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=1_000_000)  # must not raise
    assert results[0] == "ok"
    proc = job.processes[1]
    assert proc.killed and proc.finished and proc.failure is not None


def test_live_but_silent_rank_is_only_suspected():
    """Starvation safety: heartbeat silence alone never declares a death —
    the process must actually have exited uncooperatively."""
    cluster, job, ft = _launch_ft_job(2, 2, lambda api: iter(()), seed=2)
    # fake silence for a rank whose process is alive and well
    proc = job.processes[0]
    ft._last_hb[0] = -1e9
    ft._monitored[0] = proc
    ft._sweep()
    assert ft.membership.dead_ranks() == []
    assert 0 in ft.suspected
    job.wait(until=1_000_000)


def test_pml_evidence_requires_actual_exit():
    cluster, job, ft = _launch_ft_job(2, 2, lambda api: iter(()), seed=4)
    job.wait(until=1_000_000)
    # after cooperative completion evidence about a finished, *unkilled*
    # process is suspicion at most (it exited cleanly, it is not dead)
    ft.evidence(0, 1, RuntimeError("retries exhausted"))
    assert not ft.membership.is_dead(1)


def test_proc_kill_on_finished_rank_is_noop():
    cluster, job, ft = _launch_ft_job(2, 2, lambda api: iter(()), seed=5)
    job.wait(until=1_000_000)
    plan = FaultPlan("late").proc_kill(cluster.sim.now + 10.0, 0)
    FaultInjector(cluster, plan, job=job).arm()
    cluster.sim.run(until=cluster.sim.now + 1000.0)
    assert ft.membership.dead_ranks() == []


def test_proc_kill_requires_job():
    cluster = Cluster(nodes=2, seed=0)
    plan = FaultPlan("kill").proc_kill(10.0, 0)
    inj = FaultInjector(cluster, plan, job=None)
    inj.arm()
    with pytest.raises(RuntimeError, match="requires an injector armed with a job"):
        cluster.sim.run(until=100.0)
