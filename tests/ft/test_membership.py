"""MembershipView: epochs, idempotence, listeners, change events."""

from repro.ft.membership import MembershipView
from repro.sim.core import Simulator


def test_mark_dead_is_idempotent_and_bumps_epoch_once():
    sim = Simulator()
    view = MembershipView(sim)
    assert view.epoch == 0
    rec = view.mark_dead(3, "test", kill_at_us=1.5)
    assert view.epoch == 1
    assert view.is_dead(3)
    assert view.dead_ranks() == [3]
    assert view.record(3) is rec
    assert rec.kill_at_us == 1.5
    # second declaration of the same rank changes nothing
    assert view.mark_dead(3, "other") is rec
    assert view.epoch == 1


def test_first_dead_scans_sorted():
    view = MembershipView(Simulator())
    view.mark_dead(7, "x")
    view.mark_dead(2, "x")
    assert view.first_dead([0, 1, 5]) is None
    assert view.first_dead([7, 2, 5]) == 2
    assert view.any_dead([5, 7])
    assert not view.any_dead([0, 1])


def test_recovery_flips_dead_and_records_timeline():
    sim = Simulator()
    view = MembershipView(sim)
    view.mark_dead(1, "killed")
    rec = view.mark_recovered(1)
    assert rec is not None
    assert not view.is_dead(1)
    assert view.recovered_ranks() == [1]
    assert view.epoch == 2
    assert rec.recovered_at_us is not None
    # recovering a rank that is not dead is a no-op
    assert view.mark_recovered(1) is None
    assert view.epoch == 2


def test_listeners_and_change_event():
    sim = Simulator()
    view = MembershipView(sim)
    deaths, recoveries = [], []
    view.on_death(lambda rec: deaths.append(rec.rank))
    view.on_recovery(recoveries.append)
    ev = view.change_event()
    view.mark_dead(4, "x")
    assert deaths == [4]
    assert ev.triggered and ev.value == 1  # completed with the new epoch
    ev2 = view.change_event()
    view.mark_recovered(4)
    assert recoveries == [4]
    assert ev2.triggered and ev2.value == 2
