"""A rank death during NIC-offloaded collectives must abort, not hang.

The hw barrier/bcast engines park the host on a NIC event word until
tokens arrive; a dead member means those tokens never come.  The FT guard
(:meth:`FtCommState.block_on_word`) races the word against the
membership abort channel, so the wait raises cleanly at declaration —
and the shrunken communicator re-registers a fresh hw cohort (§4.1
permitting) instead of degrading forever.
"""

import numpy as np

from repro.cluster import Cluster
from repro.coll import framework
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ft import CommRevokedError, RankDeadError, enable
from repro.rte.environment import RteJob


def _ft_job(nodes, np_, app, seed=0):
    cluster = Cluster(nodes=nodes, seed=seed)
    job = RteJob(cluster)
    ft = enable(job)
    for r in range(np_):
        job.launch(r, app, group="world", group_count=np_)
    return cluster, job, ft


def test_kill_mid_hw_barrier_aborts_and_shrunken_cohort_rebuilds():
    out = {}

    def app(api):
        comm = api.comm_world
        try:
            while True:
                yield from framework.run_named(comm, "barrier", "hw-tree")
        except (RankDeadError, CommRevokedError) as e:
            comm.revoke()
            shrunk = yield from comm.shrink()
            # the surviving members are still the synchronously-started
            # static cohort: the shrunken comm gets its own hw barrier
            yield from framework.run_named(shrunk, "barrier", "hw-tree")
            out[api.rank] = (type(e).__name__, shrunk.ctx_id, tuple(shrunk.group))
        return "done"

    cluster, job, ft = _ft_job(4, 4, app, seed=11)
    plan = FaultPlan("kill1").proc_kill(3000.0, 1)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=5_000_000)

    assert sorted(out) == [0, 2, 3]
    ctxs = {out[r][1] for r in out}
    assert len(ctxs) == 1  # symmetric shrink derivation
    new_ctx = ctxs.pop()
    shared = cluster.coll_hw._shared[(new_ctx, (0, 2, 3))]
    assert shared.barrier_group is not None
    assert shared.barrier_group.barriers_completed >= 1
    assert all(results[r] == "done" for r in (0, 2, 3))


def test_kill_of_bcast_root_aborts_receivers():
    out = {}

    def app(api):
        comm = api.comm_world
        payload = b"\xa5" * 4096 if comm.rank == 1 else None
        try:
            while True:
                data = yield from framework.run_named(
                    comm, "bcast", "hw", data=payload, root=1
                )
                assert len(data) == 4096
        except (RankDeadError, CommRevokedError) as e:
            comm.revoke()
            ok = yield from comm.agree(True)
            out[api.rank] = (type(e).__name__, ok)
        return "done"

    cluster, job, ft = _ft_job(4, 4, app, seed=12)
    plan = FaultPlan("killroot").proc_kill(2500.0, 1)
    FaultInjector(cluster, plan, job=job).arm()
    job.wait(until=5_000_000)

    assert sorted(out) == [0, 2, 3]
    assert all(out[r][1] is True for r in out)
    assert ft.membership.dead_ranks() == [1]
