"""Acceptance: seeded 16-rank proc_kill campaigns, bit-identical replays.

Two variants of the same campaign (kill rank 5 mid-allreduce):

* **shrink-only** — survivors detect, revoke, agree, shrink, and complete
  a correct allreduce on the shrunken communicator, with zero hangs;
* **respawn** — the recovery driver restarts the rank from its checkpoint
  and everyone completes on a rebuilt full-world communicator.

Each variant runs twice from identical seeds and must produce identical
results, membership timelines, and metric samples.
"""

import numpy as np

from repro.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ft import CommRevokedError, RankDeadError, RecoveryDriver, enable
from repro.rte.environment import RteJob

NP = 16
KILL_RANK = 5
KILL_AT = 4000.0


def _signature(cluster, job, ft, results, out):
    tr = cluster.tracer
    return (
        dict(results),
        dict(out),
        ft.membership.dead_ranks(),
        ft.membership.recovered_ranks(),
        tuple(tr.samples.get("ft.detect_latency_us", ())),
        tuple(tr.samples.get("ft.mttr_us", ())),
        {k: v for k, v in sorted(tr.counters.items()) if k.startswith("ft.")},
        cluster.sim.now,
    )


def _run_shrink(seed):
    cluster = Cluster(nodes=NP, seed=seed)
    job = RteJob(cluster)
    ft = enable(job)
    out = {}

    def app(api):
        comm = api.comm_world
        data = np.arange(8, dtype=np.float64)
        try:
            while True:
                data = yield from comm.allreduce(data)
        except (RankDeadError, CommRevokedError) as e:
            comm.revoke()
            ok = yield from comm.agree(True)
            shrunk = yield from comm.shrink()
            result = yield from shrunk.allreduce(
                np.ones(4, dtype=np.float64) * (api.rank + 1)
            )
            out[api.rank] = (type(e).__name__, ok, tuple(shrunk.group),
                             result.tolist())
        return "done"

    for r in range(NP):
        job.launch(r, app, group="world", group_count=NP)
    plan = FaultPlan("kill", seed=seed).proc_kill(KILL_AT, KILL_RANK)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=20_000_000)
    return _signature(cluster, job, ft, results, out)


def _run_respawn(seed):
    cluster = Cluster(nodes=NP, seed=seed)
    job = RteJob(cluster)
    out = {}

    def factory(rank, image):
        def app(api):
            yield from api.rejoin_world()
            comm = yield from api.ft_rebuild_world()
            result = yield from comm.allreduce(np.ones(4, dtype=np.float64))
            out[api.rank] = ("respawned", image.app_state["iter"],
                             comm.size, result.tolist())
            return "recovered"

        return app

    driver = RecoveryDriver(job, app_factory=factory)
    ft = job.ft

    def app(api):
        comm = api.comm_world
        api.ft_checkpoint({"iter": 0})
        data = np.arange(8, dtype=np.float64)
        try:
            while True:
                data = yield from comm.allreduce(data)
        except (RankDeadError, CommRevokedError):
            comm.revoke()
            yield from api.ft_wait_recovered(KILL_RANK)
            comm2 = yield from api.ft_rebuild_world()
            result = yield from comm2.allreduce(np.ones(4, dtype=np.float64))
            out[api.rank] = ("survivor", comm2.size, result.tolist())
        return "done"

    for r in range(NP):
        job.launch(r, app, group="world", group_count=NP)
    plan = FaultPlan("kill", seed=seed).proc_kill(KILL_AT, KILL_RANK)
    FaultInjector(cluster, plan, job=job).arm()
    results = job.wait(until=20_000_000)
    return _signature(cluster, job, ft, results, out)


def test_shrink_campaign_correct_and_deterministic():
    sig_a = _run_shrink(seed=99)

    results, out, dead, recovered, latency, mttr, counters, _t = sig_a
    survivors = [r for r in range(NP) if r != KILL_RANK]
    assert dead == [KILL_RANK] and recovered == []
    assert sorted(out) == survivors
    expected = float(sum(r + 1 for r in survivors))
    for rank in survivors:
        kind, ok, group, result = out[rank]
        assert ok is True
        assert group == tuple(survivors)
        assert result == [expected] * 4
        assert results[rank] == "done"
    assert len(latency) == 1 and 0.0 < latency[0] < 10_000.0

    # bit-identical replay from the same seeds
    assert _run_shrink(seed=99) == sig_a
    # and a different seed still recovers (timing differs, outcome holds)
    sig_b = _run_shrink(seed=123)
    assert sig_b[2] == [KILL_RANK]


def test_respawn_campaign_correct_and_deterministic():
    sig_a = _run_respawn(seed=77)

    results, out, dead, recovered, latency, mttr, counters, _t = sig_a
    assert dead == [] and recovered == [KILL_RANK]
    assert sorted(out) == list(range(NP))
    assert out[KILL_RANK][0] == "respawned"
    assert out[KILL_RANK][2] == NP
    for rank in range(NP):
        if rank != KILL_RANK:
            assert out[rank] == ("survivor", NP, [float(NP)] * 4)
    assert results[KILL_RANK] == "recovered"
    assert len(mttr) == 1 and 0.0 < mttr[0] < 1_000_000.0

    assert _run_respawn(seed=77) == sig_a
