"""Static and runtime analysis for the reproduction (DESIGN.md §7).

Two halves, both serving the same contract — the simulator must stay
bit-deterministic and resource-clean while the stack grows:

* :mod:`repro.analysis.lint` — an AST linter (``python -m
  repro.analysis.lint src/repro``) that statically forbids nondeterminism
  hazards: wall-clock reads, unseeded randomness outside
  :mod:`repro.sim.rng`, iteration over unordered sets, ``id()``-based
  tie-breaks, and :meth:`~repro.sim.core.Simulator.schedule_pooled` handles
  escaping the kernel's free list.

* :mod:`repro.analysis.sanitize` (+ :mod:`~repro.analysis.leakcheck`,
  :mod:`~repro.analysis.deadlock`) — opt-in runtime sanitizers, enabled
  with ``REPRO_SANITIZE=1``: an event-race detector for count-N Elan event
  resets, a resource-leak tracker (QSLOTS, command-queue/pending slots,
  MMU registrations, RDMA descriptor pools) reported at sim teardown, and
  a deadlock detector that dumps blocked processes with wait-chains when
  the event queue drains with live waiters.
"""

from __future__ import annotations

from repro.analysis.sanitize import Finding, Sanitizer, attach, enabled

__all__ = ["Finding", "Sanitizer", "attach", "enabled"]
