"""NIC resource-leak probes, run at sim teardown.

The resources the paper's design is most careful about are exactly the
ones a fault-injection abort path can strand:

* **QSLOTS** — a receive-queue slot is taken when a delivery starts and
  freed when the owner polls the message out (or the queue is destroyed);
  an aborted delivery must not strand it.  Invariant checked per queue:
  ``taken slots == queued messages + in-flight deliveries``.
* **Command-queue / pending-operation slots** — ``Elan4Nic.track_pending``
  per-context counts gate the §4.1 finalization drain; a leak here makes
  ``finalize`` hang forever.  Checked only when the simulator is
  *quiescent* (no event can ever run again), when any nonzero count is
  provably stranded.
* **MMU registrations** — a released context (capability freed) whose
  translations survive is the §4.1 stale-descriptor hazard; checked
  unconditionally via :meth:`ElanCapability.released_ctxs`.
* **Descriptor pools** — DMA-engine units held and RDMA read descriptors
  outstanding at quiescence can never be released or completed.

Probes are observation-only and deterministic: findings name stable model
labels (node ids, contexts, queue ids), never object addresses.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitize import Sanitizer

__all__ = ["check_nic"]


def _quiescent(sim: Any) -> bool:
    """True when no live event remains — nothing can ever run again."""
    return sim.peek() is None


def check_nic(sanitizer: "Sanitizer", nic: Any) -> List[Any]:
    """Run every leak probe against one NIC; records findings and returns
    the findings added."""
    before = len(sanitizer.findings)
    _check_qslots(sanitizer, nic)
    _check_mmu(sanitizer, nic)
    if _quiescent(nic.sim):
        _check_pending(sanitizer, nic)
        _check_descriptor_pools(sanitizer, nic)
        _check_stalled_work(sanitizer, nic)
    return sanitizer.findings[before:]


def _check_qslots(sanitizer: "Sanitizer", nic: Any) -> None:
    for (ctx, queue_id), q in nic.qdma.queues.items():
        taken = q.nslots - q.free_slots
        accounted = len(q._ready) + q.inflight_deliveries
        if taken != accounted:
            sanitizer.record(
                "leak",
                "qslot",
                f"node {nic.node_id} queue ({ctx:#x}, {queue_id}): "
                f"{taken} QSLOT(s) taken but only {accounted} accounted for "
                f"({len(q._ready)} queued message(s), "
                f"{q.inflight_deliveries} in-flight deliveries)"
                + (" — double free" if taken < accounted else ""),
            )


def _check_mmu(sanitizer: "Sanitizer", nic: Any) -> None:
    for ctx in nic.capability.released_ctxs(nic.node_id):
        if nic.mmu.has_context(ctx):
            table = nic.mmu._ctx[ctx]
            sanitizer.record(
                "leak",
                "mmu-registration",
                f"node {nic.node_id}: context {ctx:#x} was released back to "
                f"the capability but {len(table.entries)} MMU "
                f"registration(s) survive — a stale descriptor could "
                f"regenerate traffic into recycled memory (§4.1)",
            )


def _check_pending(sanitizer: "Sanitizer", nic: Any) -> None:
    # contexts torn down uncooperatively by the FT layer (owner died; no
    # drain possible) are accounted-for: their orphaned counts are the
    # *expected* debris of a kill, not a leak
    reclaimed = getattr(nic, "reclaimed_ctxs", ())
    for ctx, count in nic._pending.items():
        if count > 0 and ctx not in reclaimed:
            sanitizer.record(
                "leak",
                "pending-op",
                f"node {nic.node_id}: context {ctx:#x} holds {count} "
                f"pending-operation slot(s) at quiescence; finalize/drain "
                f"of this context would hang forever",
            )
    waiting = [c for c in nic._drain_waiters if c not in reclaimed]
    if waiting:
        ctxs = ", ".join(f"{c:#x}" for c in waiting)
        sanitizer.record(
            "leak",
            "pending-op",
            f"node {nic.node_id}: drain waiter(s) for context(s) {ctxs} "
            f"still blocked at quiescence",
        )


def _check_descriptor_pools(sanitizer: "Sanitizer", nic: Any) -> None:
    if nic.dma_engines.in_use:
        sanitizer.record(
            "leak",
            "dma-engine",
            f"node {nic.node_id}: {nic.dma_engines.in_use} DMA engine "
            f"descriptor(s) of {nic.dma_engines.capacity} still held at "
            f"quiescence",
        )
    if nic.rdma._reads:
        req_ids = ", ".join(str(r) for r in nic.rdma._reads)
        sanitizer.record(
            "leak",
            "rdma-descriptor",
            f"node {nic.node_id}: RDMA read descriptor(s) {req_ids} "
            f"outstanding at quiescence (never completed nor cancelled)",
        )


def _check_stalled_work(sanitizer: "Sanitizer", nic: Any) -> None:
    if nic.stalled and nic._stalled_work:
        kinds = ", ".join(kind for kind, _ in nic._stalled_work)
        sanitizer.record(
            "leak",
            "stalled-work",
            f"node {nic.node_id}: NIC still stalled at quiescence with "
            f"{len(nic._stalled_work)} parked item(s) ({kinds}); this work "
            f"can never replay",
        )
