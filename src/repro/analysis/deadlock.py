"""Deadlock detection: blocked processes at event-queue drain.

A discrete-event deadlock is unambiguous: the event queue has drained (no
callback can ever run again), yet coroutine processes are still suspended
on events.  Nothing inside the simulation can complete those events — they
are blocked forever.  The classic shape is a wait *cycle* (P0 joins P1
while P1 joins P0), but a process waiting on an Elan event no engine will
ever fire is just as dead; both are reported, cycles prominently.

The detector runs from :meth:`Sanitizer.on_drain`, which the kernel calls
only when :meth:`~repro.sim.core.Simulator.run` exits because the queue
emptied naturally (not on ``stop()``/``until``/``max_events`` exits, where
blocked processes are expected).  Repeated drains with the same blocked set
(``run_until_idle`` loops) report once.

Alongside the wait chains, the dump lists every resource still **held** at
the drain — open tracer spans, taken QSLOTs, pending-operation slots, DMA
engine units, outstanding RDMA read descriptors — because a blocked
process is usually blocked *on* one of them.  Each held resource is
labelled through the lifecycle annotation registry
(:func:`repro.annotations.describe_kind`): its owning layer and the
``file:line`` of the registered acquire primitive, so the dump points
straight at the code that took the resource that never came back.
"""

from __future__ import annotations

from typing import Any, List, Tuple, TYPE_CHECKING

from repro.annotations import describe_kind

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitize import Sanitizer

__all__ = ["check_drain", "blocked_processes", "wait_chain", "held_resources"]


def blocked_processes(sanitizer: "Sanitizer") -> List[Any]:
    """Live non-daemon processes suspended on an event, in spawn order.

    Daemon processes (accept loops, connection servers spawned with
    ``daemon=True``) legitimately block on external input forever and are
    excluded, matching daemon-thread semantics.
    """
    return [
        p
        for p in sanitizer.processes
        if not p.triggered
        and p._waiting_on is not None
        and not getattr(p, "daemon", False)
    ]


def wait_chain(proc: Any) -> List[Any]:
    """Follow ``proc``'s wait edges through joined processes.

    Returns ``[proc, target, ...]`` ending at either a plain event (the
    terminal wait) or — for a cycle — at the first repeated process.  A
    :class:`~repro.sim.process.Process` is itself a SimEvent, so a join
    (``yield child``) forms an edge worth following; any other event type
    terminates the chain.
    """
    chain: List[Any] = [proc]
    target = proc._waiting_on
    while target is not None:
        chain.append(target)
        if any(target is seen for seen in chain[:-1]):
            return chain  # cycle closed
        target = getattr(target, "_waiting_on", None)
    return chain


def held_resources(sanitizer: "Sanitizer") -> List[Tuple[str, int, str]]:
    """``(kind, count, where)`` for every lifecycle-tracked resource still
    held at the drain, in registration order (deterministic).

    Sources are the same objects the teardown leak probes use — registered
    tracers and NICs — but here *any* held unit is reported (a deadlocked
    run is not quiescent teardown; held resources are context for the wait
    chains, not necessarily leaks).
    """
    out: List[Tuple[str, int, str]] = []
    for tracer in sanitizer.tracers:
        spans = tracer.open_spans()
        if spans:
            keys = sorted(str(k) for k in spans)
            shown = ", ".join(keys[:3]) + (", ..." if len(keys) > 3 else "")
            out.append(("tracer-span", len(spans), f"open spans: {shown}"))
    for nic in sanitizer.nics:
        node = f"node {nic.node_id}"
        for (ctx, queue_id), q in nic.qdma.queues.items():
            taken = q.nslots - q.free_slots
            if taken:
                out.append(
                    ("qslot", taken, f"{node} queue ({ctx:#x}, {queue_id})")
                )
        reclaimed = getattr(nic, "reclaimed_ctxs", ())
        for ctx, count in nic._pending.items():
            if count > 0 and ctx not in reclaimed:
                out.append(("pending-op", count, f"{node} ctx {ctx:#x}"))
        if nic.dma_engines.in_use:
            out.append(("dma-engine", nic.dma_engines.in_use, node))
        if nic.rdma._reads:
            reqs = ", ".join(str(r) for r in nic.rdma._reads)
            out.append(("rdma-descriptor", len(nic.rdma._reads), f"{node} req(s) {reqs}"))
    return out


def _is_cycle(chain: List[Any]) -> bool:
    last = chain[-1]
    return len(chain) > 1 and any(last is seen for seen in chain[:-1])


def _describe(obj: Any) -> str:
    name = getattr(obj, "name", None)
    label = name if name else type(obj).__name__
    return f"{type(obj).__name__}({label!r})"


def check_drain(sanitizer: "Sanitizer") -> None:
    """Record a finding if the drained queue left processes blocked."""
    blocked = blocked_processes(sanitizer)
    if not blocked:
        sanitizer._last_drain_sig = ()
        return
    signature = tuple(p.name for p in blocked)
    if signature == sanitizer._last_drain_sig:
        return
    sanitizer._last_drain_sig = signature
    chains = [wait_chain(p) for p in blocked]
    cyclic = any(_is_cycle(c) for c in chains)
    lines = []
    for chain in chains:
        arrow = " -> ".join(_describe(obj) for obj in chain)
        suffix = "  [CYCLE]" if _is_cycle(chain) else ""
        lines.append(f"  {arrow}{suffix}")
    held = held_resources(sanitizer)
    if held:
        lines.append("held resources at drain:")
        for kind, count, where in held:
            # describe_kind labels the kind with its owning layer and the
            # registered acquire primitive's file:line
            lines.append(f"  {count} x {describe_kind(kind)} ({where})")
    sanitizer.record(
        "deadlock",
        "wait-cycle" if cyclic else "blocked-at-drain",
        f"event queue drained with {len(blocked)} blocked process(es); "
        "wait chains:\n" + "\n".join(lines),
    )
