"""Deadlock detection: blocked processes at event-queue drain.

A discrete-event deadlock is unambiguous: the event queue has drained (no
callback can ever run again), yet coroutine processes are still suspended
on events.  Nothing inside the simulation can complete those events — they
are blocked forever.  The classic shape is a wait *cycle* (P0 joins P1
while P1 joins P0), but a process waiting on an Elan event no engine will
ever fire is just as dead; both are reported, cycles prominently.

The detector runs from :meth:`Sanitizer.on_drain`, which the kernel calls
only when :meth:`~repro.sim.core.Simulator.run` exits because the queue
emptied naturally (not on ``stop()``/``until``/``max_events`` exits, where
blocked processes are expected).  Repeated drains with the same blocked set
(``run_until_idle`` loops) report once.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitize import Sanitizer

__all__ = ["check_drain", "blocked_processes", "wait_chain"]


def blocked_processes(sanitizer: "Sanitizer") -> List[Any]:
    """Live non-daemon processes suspended on an event, in spawn order.

    Daemon processes (accept loops, connection servers spawned with
    ``daemon=True``) legitimately block on external input forever and are
    excluded, matching daemon-thread semantics.
    """
    return [
        p
        for p in sanitizer.processes
        if not p.triggered
        and p._waiting_on is not None
        and not getattr(p, "daemon", False)
    ]


def wait_chain(proc: Any) -> List[Any]:
    """Follow ``proc``'s wait edges through joined processes.

    Returns ``[proc, target, ...]`` ending at either a plain event (the
    terminal wait) or — for a cycle — at the first repeated process.  A
    :class:`~repro.sim.process.Process` is itself a SimEvent, so a join
    (``yield child``) forms an edge worth following; any other event type
    terminates the chain.
    """
    chain: List[Any] = [proc]
    target = proc._waiting_on
    while target is not None:
        chain.append(target)
        if any(target is seen for seen in chain[:-1]):
            return chain  # cycle closed
        target = getattr(target, "_waiting_on", None)
    return chain


def _is_cycle(chain: List[Any]) -> bool:
    last = chain[-1]
    return len(chain) > 1 and any(last is seen for seen in chain[:-1])


def _describe(obj: Any) -> str:
    name = getattr(obj, "name", None)
    label = name if name else type(obj).__name__
    return f"{type(obj).__name__}({label!r})"


def check_drain(sanitizer: "Sanitizer") -> None:
    """Record a finding if the drained queue left processes blocked."""
    blocked = blocked_processes(sanitizer)
    if not blocked:
        sanitizer._last_drain_sig = ()
        return
    signature = tuple(p.name for p in blocked)
    if signature == sanitizer._last_drain_sig:
        return
    sanitizer._last_drain_sig = signature
    chains = [wait_chain(p) for p in blocked]
    cyclic = any(_is_cycle(c) for c in chains)
    lines = []
    for chain in chains:
        arrow = " -> ".join(_describe(obj) for obj in chain)
        suffix = "  [CYCLE]" if _is_cycle(chain) else ""
        lines.append(f"  {arrow}{suffix}")
    sanitizer.record(
        "deadlock",
        "wait-cycle" if cyclic else "blocked-at-drain",
        f"event queue drained with {len(blocked)} blocked process(es); "
        "wait chains:\n" + "\n".join(lines),
    )
