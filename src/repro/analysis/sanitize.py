"""Runtime sanitizer core: findings, hooks, and the per-test session registry.

Design constraints (DESIGN.md §7):

* **Opt-in and invisible when off.**  Models guard every hook behind
  ``sim.sanitizer is not None`` — one attribute load on cold paths, nothing
  on the kernel hot paths.  ``REPRO_SANITIZE=1`` attaches a
  :class:`Sanitizer` to every new :class:`~repro.sim.core.Simulator`.

* **Observation only.**  A sanitizer never schedules events, never touches
  modelled time, and never mutates model state — a sanitized run is
  bit-identical to an unsanitized one (the determinism harness depends on
  this).

* **Deterministic reports.**  Findings carry the simulated time and stable
  labels, never wall-clock or memory addresses, so a failing run reports
  identically on every machine.

This module is deliberately import-light: it duck-types the simulator,
process, and NIC objects so the kernel can import it lazily without cycles.
"""

from __future__ import annotations

import os
from typing import Any, List

__all__ = [
    "Finding",
    "Sanitizer",
    "attach",
    "enabled",
    "reset_session",
    "session_report",
    "session_sanitizers",
]


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for runtime sanitizers."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


class Finding:
    """One sanitizer finding: what detector fired, where, and why."""

    __slots__ = ("detector", "kind", "time", "message")

    def __init__(self, detector: str, kind: str, time: float, message: str):
        self.detector = detector
        self.kind = kind
        self.time = time
        self.message = message

    def format(self) -> str:
        return f"[{self.detector}:{self.kind}] t={self.time:.3f}us {self.message}"

    def __repr__(self) -> str:
        return f"<Finding {self.format()}>"


class Sanitizer:
    """The runtime detectors attached to one simulator.

    Models call the ``on_*`` hooks at the few places where hazards can
    occur; :meth:`teardown` runs the leak probes (quiescence-guarded) and
    returns every finding accumulated over the simulator's life.
    """

    def __init__(self, sim: Any):
        self.sim = sim
        self.findings: List[Finding] = []
        #: every coroutine Process ever spawned (filtered live at checks)
        self.processes: List[Any] = []
        #: NICs registered for teardown leak probes
        self.nics: List[Any] = []
        #: Tracers registered for the teardown open-span probe
        self.tracers: List[Any] = []
        #: dedupe key of the last drain dump, so ``run_until_idle`` loops
        #: report one finding per distinct blocked-set, not one per run()
        self._last_drain_sig: tuple = ()
        self._torn_down = False

    # -- recording -------------------------------------------------------
    def record(self, detector: str, kind: str, message: str) -> Finding:
        finding = Finding(detector, kind, float(self.sim.now), message)
        self.findings.append(finding)
        return finding

    # -- kernel hooks ----------------------------------------------------
    def on_process(self, proc: Any) -> None:
        """A coroutine process started (``Process.__init__``)."""
        self.processes.append(proc)

    def on_drain(self) -> None:
        """The event queue drained naturally (``Simulator.run``)."""
        from repro.analysis.deadlock import check_drain

        check_drain(self)

    # -- model hooks -----------------------------------------------------
    def on_event_reset_race(self, event: Any) -> None:
        """A fire landed inside an Elan event's non-atomic count reset
        window (``ElanEvent.fire`` while ``host_reset_count`` is mid
        read-modify-write) — the Fig. 5c/5d lost-completion race."""
        self.record(
            "race",
            "count-reset",
            f"fire on Elan event {event.name!r} landed inside a host "
            f"read-modify-write reset window (count read as "
            f"{event._reset_in_flight}); the completion will be "
            f"obliterated by the reset write (lost_fires={event.lost_fires})",
        )

    def on_nic(self, nic: Any) -> None:
        """An Elan4 NIC came up; register it for teardown leak probes."""
        self.nics.append(nic)

    def on_tracer(self, tracer: Any) -> None:
        """A :class:`~repro.sim.trace.Tracer` was created; register it so
        teardown can flag spans opened via ``span_begin`` that were never
        ``span_end``-ed or ``abandon``-ed (the open-span leak)."""
        self.tracers.append(tracer)

    # -- teardown --------------------------------------------------------
    def teardown(self) -> List[Finding]:
        """Run end-of-life probes (leak tracker) and return all findings.

        Idempotent: probes run once; later calls return the same list.
        """
        if not self._torn_down:
            self._torn_down = True
            from repro.analysis.leakcheck import check_nic

            for nic in self.nics:
                check_nic(self, nic)
            for tracer in self.tracers:
                open_spans = tracer.open_spans()
                if open_spans:
                    keys = sorted(str(k) for k in open_spans)
                    shown = ", ".join(keys[:5])
                    if len(keys) > 5:
                        shown += f", ... ({len(keys) - 5} more)"
                    self.record(
                        "leak",
                        "open-span",
                        f"{len(open_spans)} tracer span(s) never closed "
                        f"(span_end/abandon missing on abort paths): {shown}",
                    )
        return self.findings


def attach(sim: Any) -> Sanitizer:
    """Attach a fresh :class:`Sanitizer` to ``sim`` and register it with
    the session (the pytest gate collects per-test findings from here)."""
    sanitizer = Sanitizer(sim)
    sim.sanitizer = sanitizer
    _session.append(sanitizer)
    return sanitizer


#: sanitizers created since the last :func:`reset_session`
_session: List[Sanitizer] = []


def reset_session() -> None:
    _session.clear()


def session_sanitizers() -> List[Sanitizer]:
    return list(_session)


def session_report() -> List[Finding]:
    """Teardown every sanitizer of the current session; return all findings."""
    out: List[Finding] = []
    for sanitizer in _session:
        out.extend(sanitizer.teardown())
    return out
