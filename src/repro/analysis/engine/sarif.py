"""SARIF 2.1.0 emission (and validation support) for engine findings.

The emitter produces a minimal-but-conformant ``sarif-2.1.0`` log: one
run, driver metadata with per-rule descriptions, one result per finding
with a physical location and the engine's content-addressed fingerprint
under ``partialFingerprints`` (so SARIF consumers track findings across
line shifts exactly like the committed baseline does).

:data:`SARIF_SUBSET_SCHEMA` vendors the subset of the official 2.1.0
JSON schema the emitter exercises — the container image has no network
access, and the full 3 MB schema would be dead weight; the subset pins
every structural requirement SARIF consumers rely on (version literal,
runs/tool/driver shape, result levels, location shape).
:func:`validate` checks a document against it with :mod:`jsonschema`
when available, falling back to structural assertions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.analysis.engine.model import AnalysisFinding

__all__ = ["to_sarif", "validate", "RULE_DESCRIPTIONS", "SARIF_SUBSET_SCHEMA"]

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: stable rule id -> short description (SARIF driver.rules metadata)
RULE_DESCRIPTIONS: Dict[str, str] = {
    "atomicity": (
        "Shared state read before a yield is used to update the same state "
        "after resuming, without revalidation (Fig. 5c/5d count-reset class)"
    ),
    "lifecycle": (
        "A registered resource acquisition can reach a function exit — "
        "including exception paths — without a release or ownership transfer"
    ),
    "layering": (
        "An import crosses the declared layer lattice upward or sideways"
    ),
    "suppression": (
        "A '# repro-lint: allow[...]' directive is missing its mandatory "
        "'-- reason'"
    ),
    "wallclock": "Host wall-clock read; use modelled time (sim.now)",
    "random": "Unseeded/global randomness; use repro.sim.rng substreams",
    "set-iter": "Iteration over an unordered set; wrap in sorted(...)",
    "id-order": "id()-based value; object addresses are not deterministic",
    "pool-escape": "schedule_pooled handle escaping the kernel free list",
}


def to_sarif(
    findings: Iterable[AnalysisFinding],
    tool_version: str,
    baselined_fingerprints: Iterable[str] = (),
) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 log dict for ``findings``."""
    baselined = set(baselined_fingerprints)
    rule_ids = sorted(RULE_DESCRIPTIONS)
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}
    rules: List[Dict[str, Any]] = [
        {
            "id": rule,
            "shortDescription": {"text": RULE_DESCRIPTIONS[rule]},
        }
        for rule in rule_ids
    ]
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproAnalysis/v1": finding.fingerprint},
            "properties": {
                "passId": finding.pass_id,
                "baselined": finding.fingerprint in baselined,
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        if finding.function:
            result["properties"]["function"] = finding.function
        results.append(result)
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


#: the subset of the official SARIF 2.1.0 schema this emitter exercises
SARIF_SUBSET_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"}
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                                "properties": {"type": "object"},
                            },
                        },
                    },
                },
            },
        },
    },
}


def validate(doc: Dict[str, Any]) -> None:
    """Raise if ``doc`` is not a conformant SARIF 2.1.0 subset log."""
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - image always has jsonschema
        _validate_structural(doc)
        return
    jsonschema.validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)


def _validate_structural(doc: Dict[str, Any]) -> None:
    if doc.get("version") != "2.1.0":
        raise ValueError("SARIF version must be the literal '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("SARIF log must contain a non-empty 'runs' array")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            raise ValueError("each run needs tool.driver.name")
        for result in run.get("results", []):
            if "text" not in result.get("message", {}):
                raise ValueError("each result needs message.text")
