"""Finding model shared by every engine pass: severity, suppression,
fingerprints, and the committed-baseline workflow.

A finding's **fingerprint** is content-addressed — pass id, rule, path,
and the source text of the offending line (not its number) — so baselined
findings survive unrelated edits above them but expire when the offending
code itself changes.
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Set

__all__ = [
    "Severity",
    "AnalysisFinding",
    "Suppressions",
    "Baseline",
    "SEVERITY_BY_RULE",
]

#: one suppression comment grammar across the whole engine (inherited from
#: the PR 3 linter): ``# repro-lint: allow[rule1,rule2] -- reason``; the
#: reason is mandatory — a reasonless suppression never parses and the
#: check CLI additionally reports it as a finding of its own.
_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([a-z0-9_,\s\-]+)\]\s*(?:--\s*(\S.*))?$"
)


class Severity(enum.Enum):
    """Maps onto SARIF result levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: default severity per rule id; passes may override per finding
SEVERITY_BY_RULE: Dict[str, Severity] = {
    "atomicity": Severity.ERROR,
    "lifecycle": Severity.ERROR,
    "layering": Severity.ERROR,
    "wallclock": Severity.ERROR,
    "random": Severity.ERROR,
    "set-iter": Severity.ERROR,
    "id-order": Severity.WARNING,
    "pool-escape": Severity.ERROR,
    "suppression": Severity.ERROR,
}


@dataclass(frozen=True)
class AnalysisFinding:
    """One engine finding at a source location.

    ``rule`` is the stable rule id (also the suppression name); ``message``
    is the human explanation; ``snippet`` is the stripped source line the
    fingerprint hashes over.
    """

    pass_id: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    severity: Severity = Severity.ERROR
    function: str = ""

    def format(self) -> str:
        where = f"{self.path}:{self.line}:{self.col + 1}"
        scope = f" [{self.function}]" if self.function else ""
        return f"{where}: {self.rule}: {self.message}{scope}"

    @property
    def fingerprint(self) -> str:
        """Stable content hash for baselining (line-number independent)."""
        basis = "\0".join(
            (self.pass_id, self.rule, self.path.replace("\\", "/"), self.snippet)
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]


class Suppressions:
    """Per-file ``# repro-lint: allow[...]`` directives.

    Parsed once per module; :meth:`allowed` answers for a (line, rule)
    pair, and :meth:`reasonless` lists directives whose mandatory reason
    is missing — those are themselves reported by the check CLI, so a
    suppression can never silently lose its justification.
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._reasonless: List[int] = []
        self._used: Set[int] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            if match.group(2) is None:
                self._reasonless.append(lineno)
                continue  # reasonless: never suppresses anything
            self._by_line[lineno] = rules

    def allowed(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        if rules is not None and rule in rules:
            self._used.add(line)
            return True
        return False

    def reasonless(self) -> List[int]:
        return list(self._reasonless)


class Baseline:
    """Committed set of accepted historical findings.

    Schema: ``{"version": 1, "entries": {fingerprint: reason}}``.  The
    check CLI subtracts baselined findings from its report and exits
    non-zero on anything new; ``--write-baseline`` snapshots the current
    findings.  The shipped tree carries an *empty* baseline — the file
    exists to document the workflow, not to carry debt.
    """

    VERSION = 1

    def __init__(self, entries: Mapping[str, str] | None = None) -> None:
        self.entries: Dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: 'entries' must be an object")
        return cls({str(k): str(v) for k, v in entries.items()})

    def save(self, path: Path) -> None:
        doc = {"version": self.VERSION, "entries": dict(sorted(self.entries.items()))}
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: Iterable[AnalysisFinding]
    ) -> tuple[List[AnalysisFinding], List[AnalysisFinding]]:
        """Partition into (new, baselined) by fingerprint."""
        new: List[AnalysisFinding] = []
        old: List[AnalysisFinding] = []
        for finding in findings:
            (old if finding.fingerprint in self.entries else new).append(finding)
        return new, old


@dataclass
class PassResult:
    """What one pass produced over the whole project."""

    pass_id: str
    findings: List[AnalysisFinding] = field(default_factory=list)
