"""``python -m repro.analysis check`` — run every engine pass.

Workflow:

* run the selected passes over the given paths (default ``src/repro``);
* add a finding for every reasonless ``# repro-lint: allow[...]``
  directive (the mandatory ``-- reason`` is how suppressions stay
  auditable);
* subtract findings whose fingerprint appears in the committed baseline
  (``analysis-baseline.json``; the shipped file is empty — it documents
  the workflow, not debt);
* print the remainder human-readably, optionally emit the full SARIF
  2.1.0 log (``--sarif out.sarif``), and exit 1 iff anything new was
  found.

``--write-baseline`` snapshots the current findings into the baseline
file; ``--list-rules`` prints every rule id with its description.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from repro.analysis.engine.model import AnalysisFinding, Baseline, Severity
from repro.analysis.engine.passes import PASS_RUNNERS
from repro.analysis.engine.project import Project
from repro.analysis.engine.sarif import RULE_DESCRIPTIONS, to_sarif
from repro.version import __version__

__all__ = ["run_analysis", "main"]

_DEFAULT_BASELINE = "analysis-baseline.json"


def _suppression_findings(project: Project) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    for module in project.modules:
        for line in module.suppressions.reasonless():
            findings.append(
                AnalysisFinding(
                    pass_id="suppression",
                    rule="suppression",
                    path=module.rel_path,
                    line=line,
                    col=0,
                    message=(
                        "suppression directive is missing its mandatory "
                        "reason: write '# repro-lint: allow[rule] -- why'"
                    ),
                    snippet=module.line_text(line),
                    severity=Severity.ERROR,
                )
            )
    return findings


def run_analysis(
    project: Project, pass_ids: Optional[Iterable[str]] = None
) -> List[AnalysisFinding]:
    """Run ``pass_ids`` (default: all) plus the suppression audit."""
    selected = list(pass_ids) if pass_ids is not None else sorted(PASS_RUNNERS)
    unknown = [p for p in selected if p not in PASS_RUNNERS]
    if unknown:
        raise ValueError(
            f"unknown pass(es) {unknown}; available: {sorted(PASS_RUNNERS)}"
        )
    findings: List[AnalysisFinding] = []
    for pass_id in selected:
        findings.extend(PASS_RUNNERS[pass_id](project))
    findings.extend(_suppression_findings(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis check",
        description="whole-tree static analysis (atomicity, lifecycle, "
        "layering, determinism) with SARIF 2.1.0 output",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--passes",
        default=None,
        help="comma-separated subset of passes to run "
        f"(default: all of {','.join(sorted(PASS_RUNNERS))})",
    )
    parser.add_argument("--sarif", default=None, help="write a SARIF 2.1.0 log here")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {_DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--root", default=None, help="root anchoring module/package names"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DESCRIPTIONS):
            print(f"{rule:12s} {RULE_DESCRIPTIONS[rule]}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    pass_ids = None
    if args.passes is not None:
        pass_ids = [p.strip() for p in args.passes.split(",") if p.strip()]
    root = Path(args.root) if args.root is not None else None
    project = Project.load(args.paths, root=root)
    try:
        findings = run_analysis(project, pass_ids)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(_DEFAULT_BASELINE)
    baseline = Baseline()
    if (args.baseline is not None or baseline_path.exists()) and not (
        args.write_baseline and not baseline_path.exists()
    ):
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        baseline.entries = {f.fingerprint: f.format() for f in findings}
        baseline.save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    new, baselined = baseline.split(findings)
    if args.sarif:
        doc = to_sarif(findings, __version__, baseline.entries)
        Path(args.sarif).write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )

    for finding in new:
        print(finding.format())
    nfiles = len(project.modules)
    if new:
        print(
            f"\n{len(new)} finding(s) in {nfiles} file(s)"
            + (f" ({len(baselined)} baselined)" if baselined else "")
        )
        return 1
    suffix = f" ({len(baselined)} baselined)" if baselined else ""
    print(f"clean: 0 findings in {nfiles} file(s){suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
