"""Per-function control-flow graphs, with exception edges.

Statement-granularity CFG: every simple statement is one node; compound
statements (``if``/``while``/``for``/``try``/``with``/``match``) become
their header node plus the graph of their bodies.  Two synthetic nodes
bracket the function: ``ENTRY`` and the two exits —

* ``EXIT``       — normal completion (``return`` or falling off the end);
* ``RAISE_EXIT`` — the function unwound on an uncaught exception.

Exception edges are what make the lifecycle pass able to see abort
paths: every node whose statement *may raise* (it contains a call,
attribute access, subscript, binary operation, ``raise`` or ``assert``)
gets an edge to the innermost enclosing handler — or, when no handler
catches unconditionally, to ``RAISE_EXIT``.  A handler for a catch-all
type (bare ``except``, ``Exception``, ``BaseException``) is treated as
definitely catching, so releases performed in catch-all cleanup handlers
kill the leak fact before it can reach ``RAISE_EXIT``.  ``finally``
bodies are modelled once, on both the normal and the exceptional route
(a conservative over-approximation: the analysis sees a superset of the
real paths, so it can miss-rank but never miss a path).

``yield``/``yield from``/``await`` anywhere in a statement marks the
node ``is_yield`` — the suspension points the atomicity pass reasons
about.  Nested function and class bodies are opaque (their statements do
not join this graph).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

__all__ = ["CfgNode", "Cfg", "build_cfg"]

#: statement classes that can never raise by themselves
_SAFE_STMTS = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

_CATCH_ALL_NAMES = {"Exception", "BaseException"}


class CfgNode:
    """One statement (or synthetic entry/exit) in a function's CFG."""

    __slots__ = (
        "index",
        "stmt",
        "kind",
        "is_yield",
        "can_raise",
        "succ",
        "exc_succ",
        "pred",
    )

    def __init__(self, index: int, stmt: Optional[ast.stmt], kind: str) -> None:
        self.index = index
        self.stmt = stmt
        #: 'entry' | 'exit' | 'raise-exit' | 'stmt' | 'except'
        self.kind = kind
        self.is_yield = False
        self.can_raise = False
        #: normal-flow successors
        self.succ: List["CfgNode"] = []
        #: exceptional successors (handler entry or RAISE_EXIT)
        self.exc_succ: List["CfgNode"] = []
        self.pred: List["CfgNode"] = []

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0

    @property
    def col(self) -> int:
        return getattr(self.stmt, "col_offset", 0) if self.stmt is not None else 0

    def all_succ(self) -> List["CfgNode"]:
        return self.succ + self.exc_succ

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = type(self.stmt).__name__ if self.stmt is not None else self.kind
        return f"<CfgNode {self.index} {self.kind}:{label} L{self.line}>"


class Cfg:
    """The graph for one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.nodes: List[CfgNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise-exit")

    def _new(self, stmt: Optional[ast.stmt], kind: str) -> CfgNode:
        node = CfgNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    def add_edge(self, src: CfgNode, dst: CfgNode, exceptional: bool = False) -> None:
        target = src.exc_succ if exceptional else src.succ
        if dst not in target:
            target.append(dst)
            dst.pred.append(src)

    def stmt_nodes(self) -> List[CfgNode]:
        return [n for n in self.nodes if n.stmt is not None]


class _ScopedWalker(ast.NodeVisitor):
    """Walk an expression/statement without descending into nested
    function/class bodies or lambdas."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return None


class _Props(_ScopedWalker):
    def __init__(self) -> None:
        self.has_yield = False
        self.may_raise = False

    def visit_Yield(self, node: ast.Yield) -> None:
        self.has_yield = True
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.has_yield = True
        self.may_raise = True  # the delegated generator can raise into us
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        self.has_yield = True
        self.may_raise = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.may_raise = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.may_raise = True
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self.may_raise = True
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self.may_raise = True
        self.generic_visit(node)


def _stmt_props(stmt: ast.stmt) -> Tuple[bool, bool]:
    """(is_yield, can_raise) for one statement, ignoring nested scopes."""
    if isinstance(stmt, _SAFE_STMTS):
        return False, False
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        walker = _Props()
        _walk_stmt_exprs(stmt, walker)
        return walker.has_yield, True
    walker = _Props()
    _walk_stmt_exprs(stmt, walker)
    return walker.has_yield, walker.may_raise


def _walk_stmt_exprs(stmt: ast.stmt, walker: _Props) -> None:
    """Visit only the expressions owned by ``stmt`` itself, not the bodies
    of compound statements (those become their own CFG nodes)."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        if isinstance(value, ast.expr):
            walker.visit(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    walker.visit(item)
                elif isinstance(item, (ast.withitem,)):
                    walker.visit(item.context_expr)
                    if item.optional_vars is not None:
                        walker.visit(item.optional_vars)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    t = handler.type
    if isinstance(t, ast.Name) and t.id in _CATCH_ALL_NAMES:
        return True
    if isinstance(t, ast.Attribute) and t.attr in _CATCH_ALL_NAMES:
        return True
    if isinstance(t, ast.Tuple):
        return any(
            (isinstance(e, ast.Name) and e.id in _CATCH_ALL_NAMES)
            or (isinstance(e, ast.Attribute) and e.attr in _CATCH_ALL_NAMES)
            for e in t.elts
        )
    return False


class _TryFrame:
    """Exception-routing context for one ``try`` statement."""

    __slots__ = ("handler_entries", "catches_all", "finally_entry")

    def __init__(
        self,
        handler_entries: List[CfgNode],
        catches_all: bool,
        finally_entry: Optional[CfgNode],
    ) -> None:
        self.handler_entries = handler_entries
        self.catches_all = catches_all
        self.finally_entry = finally_entry


class _Builder:
    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        #: innermost-last stack of enclosing try frames (for raise routing)
        self._tries: List[_TryFrame] = []
        #: loop stack: (continue_target_resolver, break_collector)
        self._loops: List[Tuple[CfgNode, List[CfgNode]]] = []

    # -- exception routing ---------------------------------------------
    def _route_exception(self, node: CfgNode) -> None:
        """Wire ``node``'s exceptional edge to the innermost handlers,
        stopping at the first frame that definitely catches."""
        for frame in reversed(self._tries):
            for handler_entry in frame.handler_entries:
                self.cfg.add_edge(node, handler_entry, exceptional=True)
            if frame.catches_all:
                return
            if frame.finally_entry is not None and not frame.handler_entries:
                # try/finally with no except: unwinding runs the finally
                self.cfg.add_edge(node, frame.finally_entry, exceptional=True)
                return
        self.cfg.add_edge(node, self.cfg.raise_exit, exceptional=True)

    # -- statement dispatch --------------------------------------------
    def build_body(
        self, stmts: Sequence[ast.stmt], preds: List[CfgNode]
    ) -> List[CfgNode]:
        """Wire ``stmts`` after ``preds``; returns the frontier (the nodes
        whose normal successor is whatever follows this body)."""
        frontier = preds
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _link(self, preds: List[CfgNode], node: CfgNode) -> None:
        for p in preds:
            self.cfg.add_edge(p, node)

    def _simple(self, stmt: ast.stmt, preds: List[CfgNode]) -> CfgNode:
        node = self.cfg._new(stmt, "stmt")
        node.is_yield, node.can_raise = _stmt_props(stmt)
        self._link(preds, node)
        if node.can_raise:
            self._route_exception(node)
        return node

    def _build_stmt(self, stmt: ast.stmt, preds: List[CfgNode]) -> List[CfgNode]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # nested scope: opaque single node, never raises for our purposes
            node = self.cfg._new(stmt, "stmt")
            self._link(preds, node)
            return [node]
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, preds)
            self.cfg.add_edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._simple(stmt, preds)  # _simple routes the exception
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new(stmt, "stmt")
            self._link(preds, node)
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new(stmt, "stmt")
            self._link(preds, node)
            if self._loops:
                self.cfg.add_edge(node, self._loops[-1][0])
            return []
        if isinstance(stmt, ast.If):
            header = self._simple(stmt, preds)
            then_out = self.build_body(stmt.body, [header])
            else_out = self.build_body(stmt.orelse, [header]) if stmt.orelse else [header]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self._simple(stmt, preds)
            return self.build_body(stmt.body, [header])
        if isinstance(stmt, ast.Match):
            header = self._simple(stmt, preds)
            outs: List[CfgNode] = []
            exhaustive = False
            for case in stmt.cases:
                outs.extend(self.build_body(case.body, [header]))
                if (
                    isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                    and case.guard is None
                ):
                    exhaustive = True
            if not exhaustive:
                outs.append(header)  # no case matched: fall through
            return outs
        node = self._simple(stmt, preds)
        return [node]

    def _build_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, preds: List[CfgNode]
    ) -> List[CfgNode]:
        header = self._simple(stmt, preds)
        breaks: List[CfgNode] = []
        self._loops.append((header, breaks))
        body_out = self.build_body(stmt.body, [header])
        self._loops.pop()
        for node in body_out:
            self.cfg.add_edge(node, header)  # back edge
        # loop exit: condition false / iterator exhausted, plus breaks
        outs: List[CfgNode] = [header] + breaks
        if stmt.orelse:
            outs = self.build_body(stmt.orelse, [header]) + breaks
        return outs

    def _build_try(self, stmt: ast.Try, preds: List[CfgNode]) -> List[CfgNode]:
        cfg = self.cfg
        # Handler entry nodes exist before the body builds, so body raises
        # can route to them.
        handler_entries: List[CfgNode] = []
        catches_all = False
        for handler in stmt.handlers:
            entry = cfg._new(handler, "except")
            entry.can_raise = False
            handler_entries.append(entry)
            if _is_catch_all(handler):
                catches_all = True
        finally_entry: Optional[CfgNode] = None
        if stmt.finalbody:
            finally_entry = cfg._new(stmt.finalbody[0], "stmt")
            finally_entry.is_yield, finally_entry.can_raise = _stmt_props(
                stmt.finalbody[0]
            )

        frame = _TryFrame(handler_entries, catches_all, finally_entry)
        self._tries.append(frame)
        body_out = self.build_body(stmt.body, preds)
        self._tries.pop()

        # else-block runs when the body completed normally
        if stmt.orelse:
            body_out = self.build_body(stmt.orelse, body_out)

        handler_outs: List[CfgNode] = []
        for entry in handler_entries:
            handler = entry.stmt
            assert isinstance(handler, ast.ExceptHandler)
            outs = self.build_body(handler.body, [entry])
            handler_outs.extend(outs)

        frontier = body_out + handler_outs
        if stmt.finalbody:
            assert finally_entry is not None
            # Normal routes converge on the finally body (modelled once;
            # finally_entry already represents its first statement).
            for node in frontier:
                cfg.add_edge(node, finally_entry)
            if finally_entry.can_raise:
                self._route_exception_from(finally_entry)
            rest = self.build_body(stmt.finalbody[1:], [finally_entry])
            # The exceptional route re-raises after the finally: the last
            # finally nodes also unwind outward.
            for node in rest:
                self._route_exception_from(node)
            return rest
        return frontier

    def _route_exception_from(self, node: CfgNode) -> None:
        """Route an exceptional continuation for a node built *outside*
        the frame that owns it (finally bodies)."""
        for frame in reversed(self._tries):
            for handler_entry in frame.handler_entries:
                self.cfg.add_edge(node, handler_entry, exceptional=True)
            if frame.catches_all:
                return
        self.cfg.add_edge(node, self.cfg.raise_exit, exceptional=True)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """Build the control-flow graph for one function definition."""
    cfg = Cfg(func)
    builder = _Builder(cfg)
    frontier = builder.build_body(func.body, [cfg.entry])
    for node in frontier:
        cfg.add_edge(node, cfg.exit)
    if not func.body:  # pragma: no cover - empty bodies cannot parse
        cfg.add_edge(cfg.entry, cfg.exit)
    return cfg


def contains_yield(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when ``func`` is a generator/coroutine body (has a suspension
    point in its own scope)."""
    walker = _Props()
    for stmt in func.body:
        walker.visit(stmt)
    return walker.has_yield


class NameUses(_ScopedWalker):
    """Collect loads and stores of plain names in one statement's own
    expressions (helper shared by the passes)."""

    def __init__(self) -> None:
        self.loads: Set[str] = set()
        self.stores: Set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads.add(node.id)
        else:
            self.stores.add(node.id)
        self.generic_visit(node)


def name_uses(stmt: ast.stmt) -> NameUses:
    uses = NameUses()
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        if isinstance(value, ast.expr):
            uses.visit(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    uses.visit(item)
    return uses
