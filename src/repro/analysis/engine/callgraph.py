"""Name-resolved call graph and may-release callee summaries.

Python offers no static types to resolve calls against, so the graph is
*name-based*: a call ``x.frob(...)`` has edges to every project function
named ``frob``.  That over-approximation is exactly what the lifecycle
pass needs for its two questions:

* **may this callee release kind K?** — used to recognise ownership
  transfer (``self._return_buf(buf)`` hands the obligation to a helper
  that puts the buffer back); computed as a whole-graph fixpoint so
  recursion and cycles terminate;
* **is this call resolved at all?** — a call that resolves to *no*
  project function is external (stdlib/numpy); passing a handle to it is
  conservatively treated as a transfer, keeping false positives out of
  code that hands resources to foreign APIs.

Caches are keyed by the AST/function objects themselves (identity
hashing, insertion-ordered iteration), so results never depend on
interpreter address order.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine.project import FunctionInfo, Project
from repro.analysis.engine.registry import ResourceRegistry, call_method_and_tail

__all__ = ["CallGraph"]


def _calls_in(fn: FunctionInfo) -> Iterator[ast.Call]:
    """Every call expression in the function, nested scopes included
    (closures run with the enclosing frame's resources in scope)."""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            yield node


class CallGraph:
    """Call edges + release summaries over one :class:`Project`."""

    def __init__(self, project: Project, registry: ResourceRegistry) -> None:
        self.project = project
        self.registry = registry
        self._summaries: Dict[FunctionInfo, FrozenSet[str]] = {}
        self._release_verdicts: Dict[Tuple[ast.Call, str], Optional[bool]] = {}

    # -- resolution ------------------------------------------------------
    def resolve_call(self, call: ast.Call) -> List[FunctionInfo]:
        """Project functions a call may target (empty = external)."""
        method, _ = call_method_and_tail(call)
        if method is None:
            return []
        return self.project.functions_by_name.get(method, [])

    def callees(self, fn: FunctionInfo) -> List[FunctionInfo]:
        seen: Set[FunctionInfo] = set()
        out: List[FunctionInfo] = []
        for call in _calls_in(fn):
            for callee in self.resolve_call(call):
                if callee not in seen:
                    seen.add(callee)
                    out.append(callee)
        return out

    # -- summaries -------------------------------------------------------
    def may_release(self, fn: FunctionInfo) -> FrozenSet[str]:
        """Kinds ``fn`` may release — directly (a matching release call or
        its own ``@releases`` decorator) or through any name-resolved
        callee, transitively."""
        if not self._summaries:
            self._compute_summaries()
        return self._summaries.get(fn, frozenset())

    def _compute_summaries(self) -> None:
        """Whole-graph fixpoint: seed each function with its direct
        releases, then propagate along call edges until stable.  Cycles
        converge because the kind sets only grow and are finite."""
        functions = list(self.project.functions())
        direct: Dict[FunctionInfo, Set[str]] = {}
        edges: Dict[FunctionInfo, List[FunctionInfo]] = {}
        for fn in functions:
            kinds: Set[str] = {
                kind
                for role, kind in fn.decorator_resource_tags()
                if role == "release"
            }
            direct[fn] = kinds
            edges[fn] = []
            seen: Set[FunctionInfo] = set()
            for call in _calls_in(fn):
                kinds.update(self.registry.released_kinds(call))
                for callee in self.resolve_call(call):
                    if callee not in seen:
                        seen.add(callee)
                        edges[fn].append(callee)
        current: Dict[FunctionInfo, Set[str]] = {
            fn: set(kinds) for fn, kinds in direct.items()
        }
        changed = True
        while changed:
            changed = False
            for fn, callees in edges.items():
                mine = current[fn]
                before = len(mine)
                for callee in callees:
                    mine |= current.get(callee, set())
                if len(mine) != before:
                    changed = True
        self._summaries = {fn: frozenset(kinds) for fn, kinds in current.items()}

    def call_may_release(self, call: ast.Call, kind: str) -> Optional[bool]:
        """Does this call site possibly release ``kind``?

        ``True`` — yes (registry effect or a resolved callee's summary);
        ``False`` — resolved to project code that never releases it;
        ``None`` — unresolved/external call (caller decides the policy).
        """
        key = (call, kind)
        if key in self._release_verdicts:
            return self._release_verdicts[key]
        verdict: Optional[bool]
        if kind in self.registry.released_kinds(call):
            verdict = True
        else:
            targets = self.resolve_call(call)
            if not targets:
                verdict = None
            else:
                verdict = any(kind in self.may_release(t) for t in targets)
        self._release_verdicts[key] = verdict
        return verdict
