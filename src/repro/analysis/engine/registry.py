"""Static view of the ``@acquires``/``@releases`` annotation registry.

The lifecycle pass cannot import the analysed tree, so this module
re-discovers the same registry :mod:`repro.annotations` builds at runtime
— but from the AST: every function carrying an ``@acquires("kind")`` /
``@releases("kind")`` decorator, plus the declarative
:data:`~repro.annotations.CALL_SITE_PATTERNS` for primitives whose bare
name is too generic to match call sites by name alone (``get``, ``put``,
``release``...).

Matching a call site yields ``(role, kind)`` effects:

* if the called method name has a declared pattern, the receiver tail
  must match (``self._send_bufs.get()`` is a send-buffer acquire;
  ``self._pending.get(ctx, 0)`` is a dict read and matches nothing);
* otherwise the bare name matches iff it is **unambiguous**: not in
  :data:`~repro.annotations.GENERIC_NAMES`, and every project definition
  of that name carries the same annotation (so ``track_pending`` matches
  anywhere, while an unannotated local helper named ``span_end`` would
  veto name matching for that module's calls).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.annotations import CALL_SITE_PATTERNS, GENERIC_NAMES, RESOURCE_KINDS
from repro.analysis.engine.project import Project

__all__ = ["ResourceRegistry", "call_method_and_tail"]

#: one matched effect at a call site
Effect = Tuple[str, str]  # (role, kind)


def call_method_and_tail(call: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """``(method, receiver_tail)`` of a call: ``a.b.c(...)`` -> ``("c",
    "b")``; ``f(...)`` -> ``("f", None)``; anything else ``(None, None)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Attribute):
            return func.attr, value.attr
        if isinstance(value, ast.Name):
            return func.attr, value.id
        return func.attr, None
    return None, None


class ResourceRegistry:
    """AST-derived acquire/release tables for one :class:`Project`."""

    def __init__(
        self,
        name_effects: Dict[str, Tuple[Effect, ...]],
        patterns: Tuple[Tuple[str, str, str, str], ...] = CALL_SITE_PATTERNS,
    ) -> None:
        #: unambiguous bare name -> its effects
        self.name_effects = name_effects
        #: method name -> [(role, kind, receiver_tail)]
        self.pattern_by_method: Dict[str, List[Tuple[str, str, str]]] = {}
        for role, kind, tail, method in patterns:
            self.pattern_by_method.setdefault(method, []).append((role, kind, tail))

    @classmethod
    def from_project(cls, project: Project) -> "ResourceRegistry":
        tags_by_name: Dict[str, List[Tuple[Effect, ...]]] = {}
        for fn in project.functions():
            tags = tuple(fn.decorator_resource_tags())
            tags_by_name.setdefault(fn.name, []).append(tags)
        name_effects: Dict[str, Tuple[Effect, ...]] = {}
        for name, tag_lists in tags_by_name.items():
            if name in GENERIC_NAMES:
                continue  # pattern-matched only
            distinct = set(tag_lists)
            if len(distinct) != 1:
                continue  # annotated and unannotated defs share the name
            (tags,) = distinct
            if tags:
                name_effects[name] = tags
        for tags in name_effects.values():
            for _, kind in tags:
                if kind not in RESOURCE_KINDS:  # pragma: no cover - guarded
                    raise ValueError(f"annotation uses undeclared kind {kind!r}")
        return cls(name_effects)

    def effects_of_call(self, call: ast.Call) -> List[Effect]:
        """Every ``(role, kind)`` effect this call site performs."""
        method, tail = call_method_and_tail(call)
        if method is None:
            return []
        patterns = self.pattern_by_method.get(method)
        if patterns is not None:
            return [
                (role, kind)
                for role, kind, want_tail in patterns
                if tail == want_tail
            ]
        return list(self.name_effects.get(method, ()))

    def acquired_kinds(self, call: ast.Call) -> List[str]:
        return [k for role, k in self.effects_of_call(call) if role == "acquire"]

    def released_kinds(self, call: ast.Call) -> List[str]:
        return [k for role, k in self.effects_of_call(call) if role == "release"]
