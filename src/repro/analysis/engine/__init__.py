"""Whole-tree static analysis engine (DESIGN.md §7).

The engine parses every module under a root (normally ``src/repro``) once,
builds per-function control-flow graphs with exception edges
(:mod:`~repro.analysis.engine.cfg`), a name-resolved call graph
(:mod:`~repro.analysis.engine.callgraph`), and a worklist dataflow solver
(:mod:`~repro.analysis.engine.dataflow`), and runs the registered passes
(:mod:`~repro.analysis.engine.passes`) over the result:

* ``atomicity``   — yield-aware stale-read race lint (Fig. 5c/5d class);
* ``lifecycle``   — ``@acquires``/``@releases`` pairing across all CFG
  paths including exception edges (the QDMA-abort leak class);
* ``layering``    — the declared import lattice, violations at the import;
* ``determinism`` — the PR 3 AST determinism rules, hosted on the engine.

Entry point: ``python -m repro.analysis check`` (see
:mod:`repro.analysis.engine.check`), emitting human-readable or SARIF
2.1.0 output, honouring ``# repro-lint: allow[rule] -- reason``
suppressions and a committed baseline file.
"""

from __future__ import annotations

from repro.analysis.engine.model import AnalysisFinding, Severity
from repro.analysis.engine.project import Module, Project

__all__ = ["AnalysisFinding", "Severity", "Module", "Project"]
