"""Determinism pass: the PR 3 AST rules, hosted on the engine.

:mod:`repro.analysis.lint` remains importable and CLI-compatible
(``python -m repro.analysis.lint``); this pass runs the same rules over
an engine :class:`Project` so one invocation of ``python -m
repro.analysis check`` covers every rule family with one suppression
grammar, one baseline, and one SARIF report.  Suppressions are honoured
inside :func:`~repro.analysis.lint.lint_source` itself.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine.model import SEVERITY_BY_RULE, AnalysisFinding, Severity
from repro.analysis.engine.project import Project
from repro.analysis.lint import lint_source

__all__ = ["run"]

PASS_ID = "determinism"


def run(project: Project) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    for module in project.modules:
        # lint_source keys its kernel-only exemptions (pool-escape, the
        # rng home) off the path string; rel_path is rooted at src/repro,
        # so restore the package prefix for the rule logic while findings
        # keep the project-relative path.
        for f in lint_source(module.source, "repro/" + module.rel_path):
            findings.append(
                AnalysisFinding(
                    pass_id=PASS_ID,
                    rule=f.rule,
                    path=module.rel_path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    snippet=module.line_text(f.line),
                    severity=SEVERITY_BY_RULE.get(f.rule, Severity.ERROR),
                )
            )
    return findings
