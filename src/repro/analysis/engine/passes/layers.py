"""Layer-enforcement pass: the declared import lattice.

The tree is layered; an import may only reach *downward* (or sideways
within its own package).  The declared lattice, refined from DESIGN.md
§7's ``sim < hw/elan4/tcpip < core < coll/ft/obs/faults < bench``:

====  =========================================
rank  packages
====  =========================================
0     version, config, annotations (leaf data)
1     sim            (the discrete-event kernel)
2     hw             (node, CPU, memory, PCI-X)
3     elan4, tcpip   (interconnect models — peers, never coupled)
4     core           (PML/PTL engine)
5     rte            (runtime environment)
6     mpi, baselines (API surface)
7     coll, ft, obs, faults, apps  (services/programs over the API)
8     cluster        (whole-machine assembly)
9     bench, analysis, sched (harnesses; may import anything)
====  =========================================

Violations are reported **at the offending import**, whether module
level or deferred inside a function: a lazy upward import is still an
upward dependency, it just hides from the import graph — intentional
inversions (e.g. the simulator attaching the sanitizer on demand) carry
a ``# repro-lint: allow[layering] -- reason`` suppression instead.
``if TYPE_CHECKING:`` imports are exempt (they never execute).
Importing a package missing from the table is itself an error, so the
lattice cannot silently rot as the tree grows.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.engine.model import AnalysisFinding, Severity
from repro.analysis.engine.project import Module, Project

__all__ = ["run", "LAYER_RANK"]

PASS_ID = "layering"
RULE = "layering"

#: package (first path component under src/repro) -> lattice rank
LAYER_RANK: Dict[str, int] = {
    "version": 0,
    "config": 0,
    "annotations": 0,
    "sim": 1,
    "hw": 2,
    "elan4": 3,
    "tcpip": 3,
    "ib": 3,
    "core": 4,
    "rte": 5,
    "mpi": 6,
    "baselines": 6,
    "coll": 7,
    "ft": 7,
    "obs": 7,
    "faults": 7,
    "apps": 7,
    "cluster": 8,
    "bench": 9,
    "analysis": 9,
    "sched": 9,
}

#: the root package re-exports the version; importing bare ``repro``
#: resolves to rank 0
_ROOT_RANK = 0


def _type_checking_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (exempt)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if not is_tc:
            continue
        for sub in node.body:
            for inner in ast.walk(sub):
                lineno = getattr(inner, "lineno", None)
                if lineno is not None:
                    lines.add(lineno)
    return lines


def _target_package(module_name: str) -> Optional[str]:
    """``repro.elan4.qdma`` -> ``elan4``; ``repro`` -> ``""`` (root);
    non-project imports -> None."""
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


def _check_import(
    module: Module,
    node: ast.stmt,
    target_module: str,
    findings: List[AnalysisFinding],
) -> None:
    target_pkg = _target_package(target_module)
    if target_pkg is None:
        return
    source_pkg = module.package
    if source_pkg == "__init__":
        return  # the root aggregator may re-export anything
    source_rank = LAYER_RANK.get(source_pkg)
    if source_rank is None:
        _report(
            module,
            node,
            findings,
            f"package '{source_pkg}' is not declared in the import lattice "
            f"(repro.analysis.engine.passes.layers.LAYER_RANK) — declare its "
            f"rank before importing from it",
        )
        return
    target_rank = _ROOT_RANK if target_pkg == "" else LAYER_RANK.get(target_pkg)
    if target_rank is None:
        _report(
            module,
            node,
            findings,
            f"import of '{target_module}': package '{target_pkg}' is not "
            f"declared in the import lattice — declare its rank in LAYER_RANK",
        )
        return
    if target_pkg == source_pkg:
        return
    if target_rank > source_rank or (
        target_rank == source_rank and target_pkg != ""
    ):
        shape = (
            "upward"
            if target_rank > source_rank
            else "sideways (peer layers must stay decoupled)"
        )
        _report(
            module,
            node,
            findings,
            f"{shape} import: '{source_pkg}' (rank {source_rank}) must not "
            f"import '{target_module}' ('{target_pkg}' has rank {target_rank})",
        )


def _report(
    module: Module, node: ast.stmt, findings: List[AnalysisFinding], message: str
) -> None:
    if module.suppressions.allowed(node.lineno, RULE):
        return
    findings.append(
        AnalysisFinding(
            pass_id=PASS_ID,
            rule=RULE,
            path=module.rel_path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            snippet=module.line_text(node.lineno),
            severity=Severity.ERROR,
        )
    )


def run(project: Project) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    for module in project.modules:
        exempt = _type_checking_lines(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                if node.lineno in exempt:
                    continue
                for alias in node.names:
                    _check_import(module, node, alias.name, findings)
            elif isinstance(node, ast.ImportFrom):
                if node.lineno in exempt or node.level > 0 or node.module is None:
                    continue  # relative imports stay within their package
                _check_import(module, node, node.module, findings)
    return findings
