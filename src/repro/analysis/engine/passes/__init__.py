"""The engine's analysis passes.

Each pass module exposes ``run(project) -> List[AnalysisFinding]``;
:data:`PASS_RUNNERS` is the registry the check CLI dispatches on.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.engine.model import AnalysisFinding
from repro.analysis.engine.passes import atomicity, determinism, layers, lifecycle
from repro.analysis.engine.project import Project

__all__ = ["PASS_RUNNERS"]

PASS_RUNNERS: Dict[str, Callable[[Project], List[AnalysisFinding]]] = {
    "atomicity": atomicity.run,
    "lifecycle": lifecycle.run,
    "layering": layers.run,
    "determinism": determinism.run,
}
