"""Resource-lifecycle pass: acquire/release pairing over all CFG paths.

For every function that *acquires* a registered resource (via the
``@acquires``/``@releases`` registry, see
:mod:`repro.analysis.engine.registry`), this pass runs a forward
may-analysis tracking live obligations and reports any path — normal or
exceptional — on which an obligation reaches a function exit.

An obligation is **bound** when the acquiring call's result is assigned
to a local (``buf = yield self._send_bufs.get()``): the handle.  It dies
when the handle is

* released — a matching release call referencing the handle;
* **transferred** — returned or yielded, stored into an attribute,
  subscript or container, or passed to a call that may release the kind
  (per the call graph's summaries) or that is external to the project
  (stdlib/numpy: assumed to take ownership).

An obligation is **counted** (unbound) when the acquirer's result is
discarded (``self.nic.track_pending(ctx)``).  Counted obligations are
only checked in functions that also *release* the kind somewhere —
split producer/consumer protocols (track here, untrack in the
completion callback) are legal and out of scope for an intraprocedural
check.

Exception edges propagate a node's *kill results but not its gens*: a
statement that raised is assumed not to have completed its acquire, but
release/transfer statements are credited even on their own exceptional
edge (otherwise every ``finally: pool.put(buf)`` would report the
pathological "the release itself raised" path).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.cfg import CfgNode, _ScopedWalker
from repro.analysis.engine.dataflow import solve_forward
from repro.analysis.engine.model import AnalysisFinding, Severity
from repro.analysis.engine.project import FunctionInfo, Project
from repro.analysis.engine.registry import ResourceRegistry

__all__ = ["run"]

PASS_ID = "lifecycle"
RULE = "lifecycle"

#: (acquire line, kind, handle var or None for counted obligations)
Fact = Tuple[int, str, Optional[str]]


class _OwnCalls(_ScopedWalker):
    """Call expressions in a statement's own scope (no nested defs or
    lambdas — those run later, under their own frame)."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _own_calls(stmt: ast.stmt) -> List[ast.Call]:
    walker = _OwnCalls()
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        if isinstance(value, ast.expr):
            walker.visit(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    walker.visit(item)
    return walker.calls


def _loads_in(node: ast.AST) -> Set[str]:
    """Every plain-name load anywhere under ``node`` (lambdas included —
    a handle captured by a closure is referenced by this statement)."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            out.add(sub.id)
        elif isinstance(sub, ast.arg):  # lambda default-bound capture
            out.add(sub.arg)
    return out


def _stores_in_stmt(stmt: ast.stmt) -> Set[str]:
    """Plain-name stores performed by the statement itself."""
    out: Set[str] = set()
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        ]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for t in targets:
        for sub in ast.walk(t):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
    return out


def _escapes_by_structure(stmt: ast.stmt, var: str) -> bool:
    """Returned / yielded / stored into an attribute, subscript or
    container literal — ownership has left this frame."""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and var in _loads_in(stmt.value)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if not isinstance(target, ast.Name) and var in _loads_in(stmt.value):
                return True
        # building a container that holds the handle: the container owns it
        if isinstance(stmt.value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return var in _loads_in(stmt.value)
        return False
    if isinstance(stmt, ast.AugAssign):
        return not isinstance(stmt.target, ast.Name) and var in _loads_in(stmt.value)
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
            inner = value.value
            return inner is not None and var in _loads_in(inner)
    return False


class _FunctionChecker:
    def __init__(
        self, fn: FunctionInfo, registry: ResourceRegistry, graph: CallGraph
    ) -> None:
        self.fn = fn
        self.registry = registry
        self.graph = graph

    # -- per-statement effect classification ----------------------------
    def _effects(
        self, stmt: ast.stmt
    ) -> Tuple[List[Tuple[str, Optional[str]]], Set[str], Set[str]]:
        """``(acquired, released_kinds, released_vars)`` for a statement:
        acquired is ``[(kind, var-or-None)]``; released_vars are handle
        names referenced by a matching release call."""
        acquired: List[Tuple[str, Optional[str]]] = []
        released_kinds: Set[str] = set()
        released_vars: Set[str] = set()
        bind_var: Optional[str] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                bind_var = target.id
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            bind_var = stmt.target.id
        for call in _own_calls(stmt):
            for role, kind in self.registry.effects_of_call(call):
                if role == "acquire":
                    acquired.append((kind, bind_var))
                else:
                    released_kinds.add(kind)
                    released_vars |= _loads_in(call)
        return acquired, released_kinds, released_vars

    def _transferred_vars(self, stmt: ast.stmt, live_facts: FrozenSet[Fact]) -> Set[str]:
        """Handles whose ownership leaves this frame at ``stmt``."""
        vars_live = {v for _, _, v in live_facts if v is not None}
        if not vars_live:
            return set()
        gone: Set[str] = set()
        for var in vars_live:
            if _escapes_by_structure(stmt, var):
                gone.add(var)
        for call in _own_calls(stmt):
            call_loads = _loads_in(call)
            touched = vars_live & call_loads
            if not touched:
                continue
            for var in touched:
                kinds = {k for _, k, v in live_facts if v == var}
                for kind in kinds:
                    verdict = self.graph.call_may_release(call, kind)
                    if verdict is None or verdict:
                        gone.add(var)
        return gone

    # -- dataflow --------------------------------------------------------
    def check(self) -> List[AnalysisFinding]:
        cfg = self.fn.cfg
        node_effects: Dict[int, Tuple[List[Tuple[str, Optional[str]]], Set[str], Set[str]]] = {}
        any_acquire = False
        release_kinds_here: Set[str] = set()
        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            eff = self._effects(node.stmt)
            node_effects[node.index] = eff
            if eff[0]:
                any_acquire = True
            release_kinds_here |= eff[1]
        if not any_acquire:
            return []
        # releases reachable from lambdas in this function count for the
        # counted-obligation gate (e.g. a cleanup closure built here)
        for sub in ast.walk(self.fn.node):
            if isinstance(sub, ast.Call):
                release_kinds_here.update(self.registry.released_kinds(sub))

        def kill(node: CfgNode, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
            stmt = node.stmt
            if stmt is None or node.kind == "except":
                return facts
            acquired, released_kinds, released_vars = node_effects.get(
                node.index, ([], set(), set())
            )
            out = set(facts)
            if released_kinds or released_vars:
                for fact in list(out):
                    _, kind, var = fact
                    if var is not None and var in released_vars:
                        out.discard(fact)
                    elif var is None and kind in released_kinds:
                        out.discard(fact)
            stores = _stores_in_stmt(stmt)
            if stores:
                out = {f for f in out if f[2] is None or f[2] not in stores}
            gone = self._transferred_vars(stmt, frozenset(out))
            if gone:
                out = {f for f in out if f[2] not in gone}
            return frozenset(out)

        def flow(node: CfgNode, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
            out = set(kill(node, facts))
            if node.stmt is not None and node.kind != "except":
                acquired = node_effects.get(node.index, ([], set(), set()))[0]
                for kind, var in acquired:
                    out.add((node.line, kind, var))
            return frozenset(out)

        facts_in = solve_forward(cfg, flow, flow_exc=kill)
        findings: List[AnalysisFinding] = []
        reported: Set[Tuple[int, str, Optional[str]]] = set()
        for exit_node, route in ((cfg.exit, "return"), (cfg.raise_exit, "an exception")):
            for line, kind, var in sorted(
                facts_in[exit_node.index], key=lambda f: (f[0], f[1], f[2] or "")
            ):
                if var is None and kind not in release_kinds_here:
                    continue  # split producer/consumer protocol
                if (line, kind, var) in reported:
                    continue
                reported.add((line, kind, var))
                module = self.fn.module
                if module.suppressions.allowed(line, RULE):
                    continue
                what = f"handle '{var}'" if var is not None else "an unbound unit"
                findings.append(
                    AnalysisFinding(
                        pass_id=PASS_ID,
                        rule=RULE,
                        path=module.rel_path,
                        line=line,
                        col=0,
                        message=(
                            f"{what} of resource '{kind}' acquired here can reach "
                            f"function exit via {route} without a release or "
                            f"ownership transfer"
                        ),
                        snippet=module.line_text(line),
                        severity=Severity.ERROR,
                        function=self.fn.qualname,
                    )
                )
        return findings


def run(project: Project) -> List[AnalysisFinding]:
    registry = ResourceRegistry.from_project(project)
    graph = CallGraph(project, registry)
    findings: List[AnalysisFinding] = []
    for fn in project.functions():
        findings.extend(_FunctionChecker(fn, registry, graph).check())
    return findings
