"""Yield-aware atomicity pass: stale shared state across suspensions.

The static generalisation of the paper's Fig. 5c/5d count-reset race: a
coroutine reads shared state (an attribute, or an entry of an attribute-
held dict) into a local, *suspends* (``yield`` / ``yield from`` /
``await`` — under the simulator, arbitrary other processes run here),
and then writes the same shared state using the stale local.  Between
the read and the write the state may have changed; the write silently
discards the interleaved update.

The pass runs only over generator/coroutine bodies.  A fact is born at

* ``v = obj.attr``            (attribute read), or
* ``v = obj.attr[k]`` / ``v = obj.attr.get(k, d)``  (dict-entry read),

keyed by the dotted *location* it read.  A suspension marks every live
fact stale; any later statement that re-reads the location revalidates
it (the coroutine refreshed its view — that is exactly the recommended
fix).  A finding fires when a statement **writes** the tracked location
while a stale fact's local participates in the statement — either in
the written value, or in the test of an ``if``/``while`` that guards
the write.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine.cfg import CfgNode, contains_yield, name_uses
from repro.analysis.engine.dataflow import solve_forward
from repro.analysis.engine.model import AnalysisFinding, Severity
from repro.analysis.engine.project import FunctionInfo, Project

__all__ = ["run"]

PASS_ID = "atomicity"
RULE = "atomicity"

#: (local var, dotted shared location, read line, crossed a suspension)
Fact = Tuple[str, str, int, bool]


def _dotted(expr: ast.expr) -> Optional[str]:
    """``self.a.b`` -> ``"self.a.b"``; anything non-trivial -> None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _read_location(value: ast.expr) -> Optional[str]:
    """The shared location a read expression observes, or None."""
    if isinstance(value, ast.Attribute):
        dotted = _dotted(value)
        # require at least obj.attr (a bare name is a local, not shared)
        return dotted if dotted is not None and "." in dotted else None
    if isinstance(value, ast.Subscript):
        return _read_location_container(value.value)
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
        if value.func.attr == "get":
            return _read_location_container(value.func.value)
    return None


def _read_location_container(container: ast.expr) -> Optional[str]:
    dotted = _dotted(container)
    return dotted if dotted is not None and "." in dotted else None


def _written_locations(stmt: ast.stmt) -> Set[str]:
    """Dotted locations a statement writes (attribute targets and
    subscript-of-attribute targets)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    out: Set[str] = set()
    for target in targets:
        nodes = [target]
        if isinstance(target, (ast.Tuple, ast.List)):
            nodes = list(target.elts)
        for node in nodes:
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is not None and "." in dotted:
                    out.add(dotted)
            elif isinstance(node, ast.Subscript):
                loc = _read_location_container(node.value)
                if loc is not None:
                    out.add(loc)
    return out


def _locations_loaded(stmt: ast.stmt) -> Set[str]:
    """Every shared location the statement's own expressions *read* —
    used for revalidation (a re-read refreshes the coroutine's view)."""
    out: Set[str] = set()
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        exprs = value if isinstance(value, list) else [value]
        for expr in exprs:
            if not isinstance(expr, ast.AST):
                continue
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                    dotted = _dotted(sub)
                    if dotted is not None and "." in dotted:
                        out.add(dotted)
    return out


def _reread_locations(stmt: ast.stmt) -> Set[str]:
    """Shared locations the statement genuinely *re-reads*.  For assigns,
    only the value side counts: a subscript store loads its container
    without observing the entry, so the target subtree is excluded — but
    a compare-and-set RHS (``self.x = self.x - n``) is a real re-read."""
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        value = stmt.value
        out: Set[str] = set()
        if value is not None:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                    dotted = _dotted(sub)
                    if dotted is not None and "." in dotted:
                        out.add(dotted)
        return out
    return _locations_loaded(stmt)


def _writes_location_in_subtree(stmt: ast.stmt, location: str) -> Optional[int]:
    """Line of a write to ``location`` anywhere under ``stmt`` (for the
    guard variant), or None."""
    for sub in ast.walk(stmt):
        if not isinstance(sub, ast.stmt):
            continue
        if location in _written_locations(sub):
            return sub.lineno
    return None


def _check_generator(fn: FunctionInfo) -> List[AnalysisFinding]:
    cfg = fn.cfg

    def flow(node: CfgNode, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
        stmt = node.stmt
        if stmt is None or node.kind == "except":
            return facts
        out: Set[Fact] = set(facts)
        if node.is_yield:
            out = {(v, loc, line, True) for v, loc, line, _ in out}
        reread = _locations_loaded(stmt)
        if reread:
            out = {
                (v, loc, line, False if loc in reread else crossed)
                for v, loc, line, crossed in out
            }
        uses = name_uses(stmt)
        if uses.stores:
            out = {f for f in out if f[0] not in uses.stores}
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            target: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if value is not None and isinstance(target, ast.Name):
                location = _read_location(value)
                if location is not None:
                    out.add((target.id, location, stmt.lineno, False))
        return frozenset(out)

    facts_in = solve_forward(cfg, flow)
    findings: List[AnalysisFinding] = []
    seen: Set[Tuple[int, str, str]] = set()
    module = fn.module

    def report(line: int, var: str, location: str, read_line: int) -> None:
        if (line, var, location) in seen:
            return
        seen.add((line, var, location))
        if module.suppressions.allowed(line, RULE):
            return
        findings.append(
            AnalysisFinding(
                pass_id=PASS_ID,
                rule=RULE,
                path=module.rel_path,
                line=line,
                col=0,
                message=(
                    f"'{var}' holds a value of '{location}' read at line "
                    f"{read_line}, before a suspension point; writing "
                    f"'{location}' from it here can overwrite concurrent "
                    f"updates — re-read '{location}' after resuming"
                ),
                snippet=module.line_text(line),
                severity=Severity.ERROR,
                function=fn.qualname,
            )
        )

    for node in cfg.stmt_nodes():
        stmt = node.stmt
        assert stmt is not None
        stale = [f for f in facts_in[node.index] if f[3]]
        if not stale:
            continue
        # a statement that re-reads the location is the fix pattern
        # (compare against the fresh value), not the bug — but a
        # subscript write's container mention is not a re-read
        writes = _written_locations(stmt)
        reread_here = _reread_locations(stmt)
        stale = [f for f in stale if f[1] not in reread_here]
        if not stale:
            continue
        if writes:
            used = name_uses(stmt).loads
            for var, location, read_line, _ in stale:
                if location in writes and var in used:
                    report(stmt.lineno, var, location, read_line)
        if isinstance(stmt, (ast.If, ast.While)):
            test_loads = set()
            for sub in ast.walk(stmt.test):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    test_loads.add(sub.id)
            for var, location, read_line, _ in stale:
                if var not in test_loads:
                    continue
                write_line = _writes_location_in_subtree(stmt, location)
                if write_line is not None:
                    report(write_line, var, location, read_line)
    return findings


def run(project: Project) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    for fn in project.functions():
        if contains_yield(fn.node):
            findings.extend(_check_generator(fn))
    return findings
