"""A small worklist dataflow solver over the engine's CFGs.

Classic iterative forward may-analysis over finite fact sets: facts are
hashable values, the join is set union, and a pass supplies one transfer
function ``flow(node, facts_in) -> facts_out``.  Exception edges can be
given their own transfer (``flow_exc``) — by default the *input* facts of
a raising node propagate along its exceptional edges, modelling "the
statement raised before completing its effect", which is exactly the
pessimistic view a leak checker wants (an acquire whose statement raised
mid-flight is treated as not acquired; a release whose statement raised
is treated as not released).

The solver iterates to a fixed point; monotone transfers over finite
lattices terminate.  ``solve_forward`` returns the per-node input sets so
passes can inspect the state *entering* each statement and each exit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable, TypeVar

from repro.analysis.engine.cfg import Cfg, CfgNode

__all__ = ["solve_forward"]

Fact = TypeVar("Fact", bound=Hashable)

Transfer = Callable[[CfgNode, FrozenSet[Fact]], FrozenSet[Fact]]


def solve_forward(
    cfg: Cfg,
    flow: Transfer[Fact],
    entry_facts: FrozenSet[Fact] = frozenset(),
    flow_exc: Transfer[Fact] | None = None,
) -> Dict[int, FrozenSet[Fact]]:
    """Union-join forward fixed point.

    Returns ``{node.index: facts-on-entry}``.  ``flow`` produces the
    facts leaving a node along *normal* edges; ``flow_exc`` (default:
    identity on the node's input) produces the facts leaving along
    *exceptional* edges.
    """
    facts_in: Dict[int, FrozenSet[Fact]] = {n.index: frozenset() for n in cfg.nodes}
    facts_in[cfg.entry.index] = entry_facts
    work: deque[CfgNode] = deque(cfg.nodes)
    in_work = {n.index for n in cfg.nodes}
    while work:
        node = work.popleft()
        in_work.discard(node.index)
        inbound = facts_in[node.index]
        out_normal = flow(node, inbound)
        out_exc = flow_exc(node, inbound) if flow_exc is not None else inbound
        for succ, facts in (
            [(s, out_normal) for s in node.succ]
            + [(s, out_exc) for s in node.exc_succ]
        ):
            merged = facts_in[succ.index] | facts
            if merged != facts_in[succ.index]:
                facts_in[succ.index] = merged
                if succ.index not in in_work:
                    work.append(succ)
                    in_work.add(succ.index)
    return facts_in
