"""Whole-tree loader: parse every module once, index functions and CFGs.

A :class:`Project` is the unit every pass runs over.  It knows:

* each :class:`Module` — path, dotted module name, AST, source,
  suppressions, and its **package** (the first path component under the
  root, e.g. ``elan4`` for ``src/repro/elan4/qdma.py``; top-level modules
  like ``cluster.py`` map to their stem);
* every function definition (including methods), lazily wrapped in a CFG;
* the project root, so fixture corpora in tests can be loaded with the
  same machinery as the real tree (``Project.load([...])``).
"""

from __future__ import annotations

import ast
from functools import cached_property
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.engine.cfg import Cfg, build_cfg
from repro.analysis.engine.model import Suppressions

__all__ = ["FunctionInfo", "Module", "Project"]


class FunctionInfo:
    """One function or method definition inside a module."""

    __slots__ = ("module", "node", "qualname", "class_name", "_cfg")

    def __init__(
        self,
        module: "Module",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self._cfg: Optional[Cfg] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def cfg(self) -> Cfg:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    def decorator_resource_tags(self) -> List[Tuple[str, str]]:
        """``[(role, kind)]`` from ``@acquires("k")``/``@releases("k")``
        decorators, read straight off the AST (no import needed)."""
        tags: List[Tuple[str, str]] = []
        for dec in self.node.decorator_list:
            if not isinstance(dec, ast.Call) or not dec.args:
                continue
            func = dec.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name not in ("acquires", "releases"):
                continue
            arg = dec.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                role = "acquire" if name == "acquires" else "release"
                tags.append((role, arg.value))
        return tags

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.module.name}:{self.qualname}>"


class Module:
    """One parsed source file."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.root = root
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.suppressions = Suppressions(self.source)
        self._lines = self.source.splitlines()

    @cached_property
    def rel_path(self) -> str:
        try:
            return self.path.relative_to(self.root).as_posix()
        except ValueError:
            return self.path.as_posix()

    @cached_property
    def name(self) -> str:
        """Dotted module name relative to the root (``elan4.qdma``)."""
        rel = self.rel_path
        if rel.endswith("/__init__.py"):
            rel = rel[: -len("/__init__.py")]
        elif rel.endswith(".py"):
            rel = rel[: -len(".py")]
        return rel.replace("/", ".")

    @cached_property
    def package(self) -> str:
        """First path component under the root; top-level files map to
        their stem (``cluster.py`` -> ``cluster``)."""
        rel = self.rel_path
        if "/" in rel:
            return rel.split("/", 1)[0]
        return rel[: -len(".py")] if rel.endswith(".py") else rel

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1].strip()
        return ""

    @cached_property
    def functions(self) -> List[FunctionInfo]:
        found: List[FunctionInfo] = []

        def visit(
            body: Iterable[ast.stmt], prefix: str, class_name: Optional[str]
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{stmt.name}"
                    found.append(FunctionInfo(self, stmt, qual, class_name))
                    # nested defs analysed as their own scopes
                    visit(stmt.body, f"{qual}.", class_name)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, f"{prefix}{stmt.name}.", stmt.name)

        visit(self.tree.body, "", None)
        return found


class Project:
    """Every module under one or more roots, indexed for the passes."""

    def __init__(self, modules: List[Module], root: Path) -> None:
        self.modules = modules
        self.root = root
        self.by_name: Dict[str, Module] = {m.name: m for m in modules}

    @classmethod
    def load(cls, paths: Iterable[str | Path], root: Optional[Path] = None) -> "Project":
        """Load ``paths`` (files or directories).  ``root`` anchors module
        and package names; it defaults to the sole directory argument, or
        the common parent of the given files."""
        files: List[Path] = []
        dirs: List[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                dirs.append(p)
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
            else:
                raise FileNotFoundError(f"not a python file or directory: {raw}")
        if root is None:
            if len(dirs) == 1 and not [f for f in files if dirs[0] not in f.parents]:
                root = dirs[0]
            elif files:
                root = Path(files[0]).parent
            else:
                root = Path(".")
        modules = [Module(f, root) for f in files]
        return cls(modules, root)

    def functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules:
            yield from module.functions

    @cached_property
    def functions_by_name(self) -> Dict[str, List[FunctionInfo]]:
        """Bare-name index (``send`` -> every def named send) — the basis
        of the name-resolved call graph."""
        index: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions():
            index.setdefault(fn.name, []).append(fn)
        return index
