"""AST determinism lint for the repro tree.

Every figure reproduction depends on bit-for-bit determinism of the event
kernel, and PR 2's fast paths are only provably safe against the
``REPRO_SIM_SLOWPATH=1`` reference when nothing feeds nondeterministic
values into the event queue.  This linter statically forbids the hazard
classes that have actually bitten discrete-event simulators:

``wallclock``
    Reads of the host clock (``time.time``/``monotonic``/``perf_counter``/
    ``process_time``, ``datetime.now``/``utcnow``/``today``).  Modelled
    time is ``sim.now``; wall-clock belongs only in speed-measurement
    harnesses, with an explicit suppression.

``random``
    The stdlib ``random`` module (global, seeding-order dependent) and
    numpy's legacy global RNG (``np.random.rand`` etc.), plus
    ``np.random.default_rng()`` with no seed.  All randomness must flow
    through seeded, named substreams (:mod:`repro.sim.rng`) or an
    explicitly seeded generator.

``set-iter``
    Iteration directly over a set expression (literal, ``set()``/
    ``frozenset()`` call, set comprehension, or a union/intersection of
    those).  Set order is hash-dependent; if the order reaches
    ``sim.schedule`` the run is only reproducible by accident of
    ``PYTHONHASHSEED``.  Wrap in ``sorted(...)`` instead.

``id-order``
    Any use of ``id()``.  CPython addresses vary run to run, so an
    ``id()``-based tie-break (sort key, dict key, dedupe) is
    nondeterministic across processes even with a fixed hash seed.

``pool-escape``
    Consuming the return value of ``schedule_pooled(...)`` outside
    :mod:`repro.sim`.  Pooled :class:`~repro.sim.core.ScheduledCall`
    handles are recycled through the kernel free list after firing; a
    handle held by model code becomes a different scheduled call later —
    cancelling or inspecting it is a use-after-free.

Suppressions: append ``# repro-lint: allow[rule] -- reason`` to the
offending line; the reason is mandatory.  Multiple rules:
``allow[rule1,rule2] -- reason``.

Run as ``python -m repro.analysis.lint [paths...]`` (default ``src/repro``);
exit status 1 when findings remain.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["LintFinding", "lint_source", "lint_paths", "main", "RULES"]

RULES: Dict[str, str] = {
    "wallclock": "host wall-clock read; use modelled time (sim.now)",
    "random": "unseeded/global randomness; use repro.sim.rng substreams",
    "set-iter": "iteration over an unordered set; wrap in sorted(...)",
    "id-order": "id()-based value; object addresses are not deterministic",
    "pool-escape": "schedule_pooled handle escaping the kernel free list",
}

#: modules whose *purpose* exempts them from a rule
_RNG_HOME = "repro/sim/rng.py"
_KERNEL_DIR = "repro/sim/"

_WALLCLOCK_TIME_FNS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns",
     "monotonic_ns", "perf_counter_ns", "process_time_ns", "localtime",
     "gmtime", "ctime"}
)
_WALLCLOCK_DT_FNS = frozenset({"now", "utcnow", "today"})
_NP_RANDOM_OK = frozenset(
    {"default_rng", "SeedSequence", "Generator", "BitGenerator",
     "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState"}
)

_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([a-z0-9_,\s\-]+)\]\s*--\s*(\S.*)$"
)


class LintFinding:
    """One lint violation at a source location."""

    __slots__ = ("path", "line", "col", "rule", "message")

    def __init__(self, path: str, line: int, col: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def __repr__(self) -> str:
        return f"<LintFinding {self.format()}>"


def _parse_allows(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names suppressed on that line.

    A suppression without a ``-- reason`` tail deliberately does not
    parse: the justification is part of the contract.
    """
    allows: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allows[lineno] = rules
    return allows


class _Linter(ast.NodeVisitor):
    """Single-file AST walk collecting findings."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.findings: List[LintFinding] = []
        self._allows = _parse_allows(source)
        norm = path.replace("\\", "/")
        self.in_rng_home = norm.endswith(_RNG_HOME)
        self.in_kernel = _KERNEL_DIR in norm
        #: aliases bound to the stdlib ``time``/``datetime`` modules and the
        #: ``datetime.datetime``/``datetime.date`` classes, numpy, and
        #: ``numpy.random`` — tracked so attribute calls resolve correctly
        self.time_aliases: Set[str] = set()
        self.datetime_mod_aliases: Set[str] = set()
        self.datetime_cls_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.np_random_aliases: Set[str] = set()
        self.wallclock_fn_aliases: Set[str] = set()
        #: Call nodes whose value is discarded (statement expressions) —
        #: the only legal position for schedule_pooled outside the kernel
        self._discarded_calls: Set[ast.Call] = set()

    # -- plumbing --------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if rule in self._allows.get(lineno, set()):
            return
        self.findings.append(LintFinding(self.path, lineno, col, rule, message))

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random" and not self.in_rng_home:
                self._emit(
                    node,
                    "random",
                    "import of stdlib 'random' (global, unseeded state); "
                    "draw from repro.sim.rng.RandomStreams instead",
                )
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_mod_aliases.add(bound)
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                self.np_random_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" and not self.in_rng_home:
            self._emit(
                node,
                "random",
                "import from stdlib 'random'; use repro.sim.rng substreams",
            )
        elif module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_TIME_FNS:
                    self.wallclock_fn_aliases.add(alias.asname or alias.name)
        elif module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_cls_aliases.add(alias.asname or alias.name)
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wallclock(node)
        self._check_random_call(node)
        self._check_id(node)
        self._check_pool_escape(node)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.wallclock_fn_aliases:
            self._emit(node, "wallclock", f"call to wall-clock {func.id}()")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self.time_aliases and func.attr in _WALLCLOCK_TIME_FNS:
                self._emit(
                    node, "wallclock", f"call to wall-clock time.{func.attr}()"
                )
            elif (
                base.id in self.datetime_cls_aliases
                and func.attr in _WALLCLOCK_DT_FNS
            ):
                self._emit(
                    node, "wallclock", f"call to wall-clock datetime.{func.attr}()"
                )
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            # datetime.datetime.now() / datetime.date.today()
            if (
                base.value.id in self.datetime_mod_aliases
                and base.attr in ("datetime", "date")
                and func.attr in _WALLCLOCK_DT_FNS
            ):
                self._emit(
                    node,
                    "wallclock",
                    f"call to wall-clock datetime.{base.attr}.{func.attr}()",
                )

    def _np_random_attr(self, func: ast.Attribute) -> str:
        """Return the function name for an ``np.random.X`` / imported
        ``random.X`` numpy attribute call, or '' if not one."""
        base = func.value
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id in self.numpy_aliases and base.attr == "random":
                return func.attr
        if isinstance(base, ast.Name) and base.id in self.np_random_aliases:
            return func.attr
        return ""

    def _check_random_call(self, node: ast.Call) -> None:
        if self.in_rng_home:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        name = self._np_random_attr(func)
        if not name:
            return
        if name == "default_rng":
            if not node.args and not node.keywords:
                self._emit(
                    node,
                    "random",
                    "np.random.default_rng() without a seed is entropy-"
                    "seeded; pass an explicit seed or SeedSequence",
                )
        elif name == "seed":
            self._emit(
                node,
                "random",
                "np.random.seed() mutates the global legacy RNG; create a "
                "seeded Generator instead",
            )
        elif name not in _NP_RANDOM_OK:
            self._emit(
                node,
                "random",
                f"np.random.{name}() draws from numpy's global legacy RNG; "
                "use a seeded Generator (repro.sim.rng)",
            )

    def _check_id(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "id" and len(node.args) == 1:
            self._emit(
                node,
                "id-order",
                "id() yields a per-run object address; any ordering, "
                "keying, or dedupe built on it is nondeterministic",
            )

    def _check_pool_escape(self, node: ast.Call) -> None:
        if self.in_kernel:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "schedule_pooled":
            if node not in self._discarded_calls:
                self._emit(
                    node,
                    "pool-escape",
                    "return value of schedule_pooled() consumed outside "
                    "repro.sim: pooled ScheduledCall handles are recycled "
                    "after firing, so holding one is a use-after-free; use "
                    "sim.schedule() when you need the handle",
                )

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            self._discarded_calls.add(node.value)
        self.generic_visit(node)

    # -- set iteration ---------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            # set method algebra: s.union(...), s.intersection(...) on a
            # recognisable set expression
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iteration(self, iter_node: ast.expr, site: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                site,
                "set-iter",
                "iterating an unordered set: element order depends on "
                "PYTHONHASHSEED; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehensions(
        self, node: ast.AST, generators: Sequence[ast.comprehension]
    ) -> None:
        for comp in generators:
            self._check_iteration(comp.iter, node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehensions(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehensions(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehensions(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehensions(node, node.generators)


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one source text; returns findings (suppressions applied)."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source)
    # Two passes so imports anywhere in the file bind aliases before the
    # call checks run (late imports inside functions are common here).
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            linter.visit_Import(node)
        elif isinstance(node, ast.ImportFrom):
            linter.visit_ImportFrom(node)
    # reset: the import pass already emitted import findings; don't repeat
    import_findings = list(linter.findings)
    linter.findings = []
    linter.visit(tree)
    seen: Set[Tuple[int, int, str]] = set()
    merged: List[LintFinding] = []
    for finding in import_findings + linter.findings:
        key = (finding.line, finding.col, finding.rule)
        if key not in seen:
            seen.add(key)
            merged.append(finding)
    merged.sort(key=lambda f: (f.line, f.col, f.rule))
    return merged


def _iter_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return files


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[LintFinding] = []
    for file in _iter_files(paths):
        findings.extend(lint_source(file.read_text(encoding="utf-8"), str(file)))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST determinism lint for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule:12s} {summary}")
        return 0
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
