"""``python -m repro.analysis <subcommand>``.

* ``check`` (default) — the whole-tree engine: atomicity, lifecycle,
  layering and determinism passes, SARIF output, baseline workflow
  (:mod:`repro.analysis.engine.check`);
* ``lint`` — the original determinism-only AST linter, kept for
  compatibility (:mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = "check"
    if args and args[0] in ("check", "lint"):
        command = args.pop(0)
    if command == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(args)
    from repro.analysis.engine.check import main as check_main

    return check_main(args)


if __name__ == "__main__":
    sys.exit(main())
