"""Seeded, named random streams.

Each consumer (a NIC's arbitration jitter, a workload generator, a fault
injector) draws from its own substream derived from the root seed and a
stable name, so adding a new consumer never perturbs existing streams —
essential for keeping the figure reproductions stable across code changes.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of :class:`numpy.random.Generator` substreams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable mapping name -> child seed, independent of access order.
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, child]))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, seq):
        idx = int(self.stream(name).integers(0, len(seq)))
        return seq[idx]
