"""Lightweight tracing and statistics.

Every subsystem takes an optional :class:`Tracer`; when disabled the hooks
cost one attribute check.  The benchmark harness uses tracers to decompose
latency by layer (Fig. 9's PML-cost vs PTL-latency measurement) and tests
use them to assert event orderings (e.g. that the chained FIN really was
issued by the NIC event engine, not the host).

``keep_records`` accepts three shapes: ``True`` keeps every record
(tests), ``False`` keeps none (counters/samples only — cluster default),
and an integer ``N`` keeps a ring of the most recent N records so long
fault-campaign runs don't grow memory without bound.  Ring truncation is
counted in ``records_dropped`` — consumers (e.g. the obs exporters)
surface it instead of silently reporting a partial record set as
complete.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.annotations import acquires, releases

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: time, category, and free-form fields."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"[{self.time:10.3f}] {self.category}({inner})"


class Tracer:
    """Collects trace records, counters, and named timing samples."""

    def __init__(
        self, sim, enabled: bool = True, keep_records: Union[bool, int] = True
    ):
        self.sim = sim
        self.enabled = enabled
        if keep_records is not True and keep_records is not False:
            if keep_records < 1:
                raise ValueError(f"keep_records cap must be >= 1: {keep_records}")
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self.records_dropped = 0
        self.counters: Counter = Counter()
        self.samples: Dict[str, List[float]] = defaultdict(list)
        self._open_spans: Dict[Any, Tuple[str, float]] = {}
        #: category -> records of that category, maintained alongside
        #: ``records`` so :meth:`of_category` is O(matches), not O(all)
        self._by_category: Dict[str, List[TraceRecord]] = {}
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_tracer(self)

    @property
    def _cap(self) -> Optional[int]:
        kr = self.keep_records
        return None if kr is True or kr is False else int(kr)

    # -- events ----------------------------------------------------------
    def record(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.counters[category] += 1
        if self.keep_records is False:
            return
        rec = TraceRecord(self.sim.now, category, tuple(sorted(fields.items())))
        self.records.append(rec)
        self._by_category.setdefault(category, []).append(rec)
        cap = self._cap
        if cap is not None and len(self.records) > 2 * cap:
            self._trim(cap)

    def _trim(self, cap: int) -> None:
        """Amortised ring eviction: drop the oldest records beyond ``cap``
        and rebuild the category index from the survivors."""
        drop = len(self.records) - cap
        del self.records[:drop]
        self.records_dropped += drop
        self._by_category = {}
        for rec in self.records:
            self._by_category.setdefault(rec.category, []).append(rec)

    def count(self, category: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[category] += n

    # -- timing spans ------------------------------------------------------
    @acquires("tracer-span")
    def span_begin(self, key: Any, category: str) -> None:
        """Open a timing span keyed by an arbitrary token."""
        if self.enabled:
            self._open_spans[key] = (category, self.sim.now)

    @releases("tracer-span")
    def span_end(self, key: Any) -> Optional[float]:
        """Close a span; records its duration as a sample. Returns duration."""
        if not self.enabled:
            return None
        entry = self._open_spans.pop(key, None)
        if entry is None:
            return None
        category, start = entry
        duration = self.sim.now - start
        self.samples[category].append(duration)
        return duration

    @releases("tracer-span")
    def abandon(self, key: Any) -> bool:
        """Discard an open span without sampling it — the close path for
        aborted operations, so ``_open_spans`` can't leak.  Returns
        whether the key was open; abandons are counted per category."""
        entry = self._open_spans.pop(key, None)
        if entry is None:
            return False
        self.counters[f"span_abandoned:{entry[0]}"] += 1
        return True

    def open_spans(self) -> Dict[Any, Tuple[str, float]]:
        """Spans begun but neither ended nor abandoned — at end of run
        these are leaks; the sanitizer teardown probe checks this."""
        return dict(self._open_spans)

    def sample(self, category: str, value: float) -> None:
        if self.enabled:
            self.samples[category].append(value)

    # -- queries -----------------------------------------------------------
    def of_category(self, category: str) -> List[TraceRecord]:
        return list(self._by_category.get(category, ()))

    def mean(self, category: str) -> float:
        vals = self.samples.get(category, [])
        if not vals:
            raise KeyError(f"no samples for {category!r}")
        return sum(vals) / len(vals)

    def total(self, category: str) -> float:
        return sum(self.samples.get(category, []))

    def clear(self) -> None:
        self.records.clear()
        self.records_dropped = 0
        self.counters.clear()
        self.samples.clear()
        self._open_spans.clear()
        self._by_category.clear()
