"""Lightweight tracing and statistics.

Every subsystem takes an optional :class:`Tracer`; when disabled the hooks
cost one attribute check.  The benchmark harness uses tracers to decompose
latency by layer (Fig. 9's PML-cost vs PTL-latency measurement) and tests
use them to assert event orderings (e.g. that the chained FIN really was
issued by the NIC event engine, not the host).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: time, category, and free-form fields."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"[{self.time:10.3f}] {self.category}({inner})"


class Tracer:
    """Collects trace records, counters, and named timing samples."""

    def __init__(self, sim, enabled: bool = True, keep_records: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self.samples: Dict[str, List[float]] = defaultdict(list)
        self._open_spans: Dict[Any, Tuple[str, float]] = {}

    # -- events ----------------------------------------------------------
    def record(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.counters[category] += 1
        if self.keep_records:
            self.records.append(
                TraceRecord(self.sim.now, category, tuple(sorted(fields.items())))
            )

    def count(self, category: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[category] += n

    # -- timing spans ------------------------------------------------------
    def span_begin(self, key: Any, category: str) -> None:
        """Open a timing span keyed by an arbitrary token."""
        if self.enabled:
            self._open_spans[key] = (category, self.sim.now)

    def span_end(self, key: Any) -> Optional[float]:
        """Close a span; records its duration as a sample. Returns duration."""
        if not self.enabled:
            return None
        entry = self._open_spans.pop(key, None)
        if entry is None:
            return None
        category, start = entry
        duration = self.sim.now - start
        self.samples[category].append(duration)
        return duration

    def sample(self, category: str, value: float) -> None:
        if self.enabled:
            self.samples[category].append(value)

    # -- queries -----------------------------------------------------------
    def of_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def mean(self, category: str) -> float:
        vals = self.samples.get(category, [])
        if not vals:
            raise KeyError(f"no samples for {category!r}")
        return sum(vals) / len(vals)

    def total(self, category: str) -> float:
        return sum(self.samples.get(category, []))

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.samples.clear()
        self._open_spans.clear()
