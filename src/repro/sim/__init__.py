"""Deterministic discrete-event simulation kernel.

This package is the foundation substrate for the whole reproduction: the
Elan4 NIC, the hosts' CPUs, the TCP/IP stack, the Open MPI communication
stack and the benchmark drivers all execute as coroutine processes inside a
single :class:`~repro.sim.core.Simulator` event loop with a simulated clock
measured in microseconds.

Design goals:

* **Determinism** — ties in the event heap are broken by insertion order, so
  a given seed and workload always produce the same trace (required for the
  paper's microbenchmark reproductions to be stable).
* **Composability** — processes are plain generators; sub-operations are
  factored with ``yield from``, exactly how the layered Open MPI stack
  (MPI -> PML -> PTL -> NIC) is expressed.
* **No wall-clock dependence** — all time is simulated; benchmarks read
  :attr:`Simulator.now`.
"""

from repro.sim.core import Simulator, SimError, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    EventFailed,
    SimEvent,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "EventFailed",
    "Interrupt",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimError",
    "SimEvent",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "Tracer",
]
