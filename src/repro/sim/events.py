"""Simulation events.

A :class:`SimEvent` is a one-shot future living inside a
:class:`~repro.sim.core.Simulator`.  Coroutine processes suspend on events by
``yield``-ing them; hardware models complete them from callbacks.

State machine::

    PENDING --succeed()/fail()--> TRIGGERED --(loop)--> PROCESSED

``TRIGGERED`` means the completion has been scheduled at the current
simulated time; callbacks run when the loop reaches it.  Completing an event
twice is an error (the kernel is strict so that protocol bugs — e.g. the
Fig. 5 double-completion race — surface as exceptions rather than silent
corruption, unless a model deliberately opts into racy semantics as the Elan
count-event model does).
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.sim.core import ScheduledCall, SimError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["SimEvent", "Timeout", "AnyOf", "AllOf", "EventFailed"]

PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class EventFailed(Exception):
    """Wraps a failure value propagated through an event chain."""

    def __init__(self, cause: BaseException):
        super().__init__(repr(cause))
        self.cause = cause


class SimEvent:
    """A one-shot completion signal with a value or an exception."""

    __slots__ = ("sim", "_state", "_value", "_exc", "_callbacks", "name", "_call")

    def __init__(self, sim: "Simulator", name: Optional[str] = None):
        self.sim = sim
        self._state = PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []
        self.name = name
        #: the pending completion ScheduledCall while TRIGGERED; lets a sole
        #: waiter fuse its resume into the call in place (same heap slot, so
        #: ordering is untouched).  Never valid once PROCESSED.
        self._call = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event completed successfully."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- completion ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Complete successfully, with callbacks run ``delay`` µs later."""
        # _trigger and the kernel's zero-delay push are inlined: this is the
        # hottest completion path of any run.
        if self._state != PENDING:
            raise SimError(f"event {self!r} completed twice")
        self._state = TRIGGERED
        self._value = value
        sim = self.sim
        ready = sim._ready
        if delay == 0.0 and ready is not None:
            pool = sim._pool
            if pool:
                call = pool.pop()
                call.time = sim.now
                call.fn = self._process
                call.args = ()
                call.cancelled = False
            else:
                call = ScheduledCall(sim.now, self._process, ())
                call._pooled = True
            ready.append((next(sim._seq), call))
            self._call = call
        else:
            self._call = sim.schedule_pooled(delay, self._process)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "SimEvent":
        """Complete with an exception; waiters see it re-raised."""
        if not isinstance(exc, BaseException):
            raise SimError(f"fail() requires an exception, got {exc!r}")
        self._trigger(None, exc, delay)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException], delay: float) -> None:
        if self._state != PENDING:
            raise SimError(f"event {self!r} completed twice")
        self._state = TRIGGERED
        self._value = value
        self._exc = exc
        # Completion handles never escape, so the pooled fast path applies.
        self._call = self.sim.schedule_pooled(delay, self._process)

    def _process(self) -> None:
        self._state = PROCESSED
        self._call = None
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for cb in callbacks:
                cb(self)

    # -- waiting -------------------------------------------------------
    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        """Register ``cb(event)``.  If already processed, runs it now."""
        if self._state == PROCESSED:
            cb(self)
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}[
            self._state
        ]
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` µs after construction.

    Timeouts are the single most-constructed object of any run (every
    modelled cost is one), so the constructor sets the event slots directly
    — equivalent to ``succeed(value, delay=delay)`` on a fresh event, minus
    three call frames and a per-instance name string.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        self.sim = sim
        self._state = TRIGGERED
        self._value = value
        self._exc = None
        self._callbacks = []
        self.name = None
        self.delay = delay
        # sim.schedule_pooled inlined for both the ready and the heap path:
        # a Timeout per modelled cost makes this the busiest constructor.
        ready = sim._ready
        if delay == 0.0 and ready is not None:
            pool = sim._pool
            if pool:
                call = pool.pop()
                call.time = sim.now
                call.fn = self._process
                call.args = ()
                call.cancelled = False
            else:
                call = ScheduledCall(sim.now, self._process, ())
                call._pooled = True
            ready.append((next(sim._seq), call))
            self._call = call
        else:
            if delay < 0:
                raise SimError(f"negative delay {delay!r}")
            time = sim.now + delay
            pool = sim._pool
            if pool:
                call = pool.pop()
                call.time = time
                call.fn = self._process
                call.args = ()
                call.cancelled = False
            else:
                call = ScheduledCall(time, self._process, ())
                call._pooled = True
            seq = next(sim._seq)
            if time < sim._active_limit:
                heappush(sim._active, (time, 0, seq, call))
            else:
                sim._insert_far(time, 0, seq, call)
            self._call = call


class _CompoundEvent(SimEvent):
    """Base for AnyOf/AllOf: completes based on child completions."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Sequence[SimEvent]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._result())
        else:
            for ev in self.events:
                ev.add_callback(self._child_done)

    def _result(self) -> Any:
        raise NotImplementedError

    def _child_done(self, ev: SimEvent) -> None:
        raise NotImplementedError


class AnyOf(_CompoundEvent):
    """Completes when the first child completes; value is ``(event, value)``.

    A failed child fails the compound event.  This mirrors poll/select over
    multiple file descriptors — available in the TCP substrate, and exactly
    what Quadrics *lacks* (motivating the shared completion queue design of
    Section 4.3).
    """

    __slots__ = ()

    def _result(self) -> Any:
        return (None, None)

    def _child_done(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
        else:
            self.succeed((ev, ev._value))


class AllOf(_CompoundEvent):
    """Completes when every child has completed; value is the list of values."""

    __slots__ = ()

    def _result(self) -> Any:
        return []

    def _child_done(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])
