"""The simulation event loop.

A :class:`Simulator` owns a priority heap of ``(time, priority, seq, fn)``
entries.  ``seq`` is a monotonically increasing insertion counter so that
simultaneous events fire in the order they were scheduled — this is what
makes every run of the reproduction bit-for-bit deterministic.

Time is a ``float`` in **microseconds**, matching the unit the paper reports
(latency plots are in µs, bandwidth is derived as bytes / µs = MB/s).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Simulator", "SimError", "StopSimulation", "ScheduledCall"]


class SimError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised (or passed to :meth:`Simulator.stop`) to end :meth:`Simulator.run`."""


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is O(1): the entry stays in the heap but is skipped when it
    surfaces.  This is important because the NIC models schedule and cancel
    many timeouts (e.g. retransmission timers in the TCP substrate).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references so cancelled entries don't pin objects alive while
        # they wait to surface from the heap.
        self.fn = _noop
        self.args = ()


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Deterministic discrete-event simulator with a µs clock.

    Usage::

        sim = Simulator()
        sim.spawn(my_generator())
        sim.run()

    ``spawn`` wraps a generator in a :class:`~repro.sim.process.Process`
    coroutine; ``schedule`` registers plain callbacks.  Both coexist: the
    hardware models are mostly callback-driven (a DMA engine schedules its
    own completion), while protocol logic is written as coroutines.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processes: list = []  # live Process objects, for diagnostics

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated microseconds.

        ``priority`` breaks ties *before* insertion order (lower runs
        earlier); the kernel itself always uses the default, but tests use
        it to force orderings when reproducing race conditions (Fig. 5).
        """
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past: {time} < {self.now}")
        call = ScheduledCall(time, fn, args)
        heapq.heappush(self._heap, (time, priority, next(self._seq), call))
        return call

    def spawn(self, gen: Generator, name: Optional[str] = None):
        """Start a coroutine process immediately (at the current time)."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    def timeout(self, delay: float, value: Any = None):
        """Convenience constructor for a :class:`~repro.sim.events.Timeout`."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def event(self):
        """Convenience constructor for a bare :class:`~repro.sim.events.SimEvent`."""
        from repro.sim.events import SimEvent

        return SimEvent(self)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have run.

        Returns the simulation time when the loop stopped.  ``until`` is an
        absolute time; when it is hit the clock is advanced exactly to it
        (standard DES semantics), with any events at later timestamps left
        in the heap for a subsequent ``run`` call.
        """
        if self._running:
            raise SimError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                time, _prio, _seq, call = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                if call.cancelled:
                    continue
                self.now = time
                call.fn(*call.args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the heap is empty."""
        while self._heap:
            time, _prio, _seq, call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self.now = time
            call.fn(*call.args)
            return True
        return False

    def stop(self) -> None:
        """Request that the current (or next) :meth:`run` return promptly."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of heap entries (including cancelled placeholders)."""
        return len(self._heap)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty."""
        for time, _prio, _seq, call in sorted(self._heap)[:16]:
            if not call.cancelled:
                return time
        for time, _prio, _seq, call in sorted(self._heap):
            if not call.cancelled:
                return time
        return None

    def run_until_idle(self, quiet_check: Iterable[Callable[[], bool]] = ()) -> float:
        """Run until no live events remain and every ``quiet_check`` passes."""
        while True:
            self.run()
            if all(chk() for chk in quiet_check):
                return self.now
            if self.peek() is None:
                return self.now
