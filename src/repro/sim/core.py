"""The simulation event loop.

A :class:`Simulator` owns a priority heap of ``(time, priority, seq, fn)``
entries.  ``seq`` is a monotonically increasing insertion counter so that
simultaneous events fire in the order they were scheduled — this is what
makes every run of the reproduction bit-for-bit deterministic.

Time is a ``float`` in **microseconds**, matching the unit the paper reports
(latency plots are in µs, bandwidth is derived as bytes / µs = MB/s).

Fast paths
----------

Reproducing any figure drives millions of events through this loop, so the
kernel carries four wall-clock optimisations that never change modelled
time or event ordering (see DESIGN.md §"Performance model of the model"):

* a **free-list pool** of :class:`ScheduledCall` objects for internal
  schedules whose handle never escapes (event completion, process resume) —
  the dominant allocation of any run;
* a **zero-delay ready queue**: an internal schedule at the current time
  with default priority always carries the largest ``seq`` so far, so it
  pops after every heap entry with ``time <= now`` and before anything
  later — a FIFO deque reproduces that order exactly without paying two
  O(log n) heap operations (completions and process resumes are almost all
  zero-delay, making this the single hottest path of any run);
* **lazy-cancellation compaction**: cancelled entries are counted, and when
  they outnumber the live entries the heap is rebuilt without them
  (entries keep their ``(time, priority, seq)`` keys, so pop order is
  untouched);
* an **O(live-head)** :meth:`peek` that pops dead entries off the heap top
  instead of sorting the whole heap.

Setting ``REPRO_SIM_SLOWPATH=1`` in the environment disables the pool and
compaction (and the model-layer caches that key off the same flag) — the
reference path the determinism harness compares against.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "SimError",
    "StopSimulation",
    "ScheduledCall",
    "slowpath_enabled",
    "sanitize_enabled",
]

#: free-list growth bound; beyond this, retired calls are left to the GC
_POOL_MAX = 4096

#: compaction triggers only with at least this many cancelled entries (the
#: rebuild is O(heap), so tiny heaps are never worth scanning)
_COMPACT_MIN_CANCELLED = 64


def slowpath_enabled() -> bool:
    """True when ``REPRO_SIM_SLOWPATH`` asks for the reference kernel (and
    reference model paths: no call pool, no heap compaction, no route/TLB
    caches, per-hop fabric events)."""
    return os.environ.get("REPRO_SIM_SLOWPATH", "0") not in ("", "0")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for the runtime sanitizers
    (race/leak/deadlock detectors, see :mod:`repro.analysis`)."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


class SimError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised (or passed to :meth:`Simulator.stop`) to end :meth:`Simulator.run`."""


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is O(1): the entry stays in the heap but is skipped when it
    surfaces.  This is important because the NIC models schedule and cancel
    many timeouts (e.g. retransmission timers in the TCP substrate).

    ``_pooled`` marks calls created through the internal free list — their
    handle never escapes the kernel, so they are recycled after firing.
    Public handles are instead marked cancelled once fired, making a late
    ``cancel()`` a no-op (and keeping the simulator's cancelled-entry
    counter honest).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim", "_pooled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None
        self._pooled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled entries don't pin objects alive while
        # they wait to surface from the heap.
        self.fn = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


def _noop(*_args: Any) -> None:
    return None


# Lazily-bound constructor classes for spawn()/timeout()/event() — resolved
# once instead of importing inside every call (these run hundreds of
# thousands of times per figure).  Lazy because events/process import core.
_process_cls = None
_timeout_cls = None
_simevent_cls = None


def _load_process_cls():
    global _process_cls
    from repro.sim.process import Process

    _process_cls = Process
    return Process


def _load_event_cls():
    global _simevent_cls, _timeout_cls
    from repro.sim.events import SimEvent, Timeout

    _simevent_cls = SimEvent
    _timeout_cls = Timeout
    return SimEvent, Timeout


class Simulator:
    """Deterministic discrete-event simulator with a µs clock.

    Usage::

        sim = Simulator()
        sim.spawn(my_generator())
        sim.run()

    ``spawn`` wraps a generator in a :class:`~repro.sim.process.Process`
    coroutine; ``schedule`` registers plain callbacks.  Both coexist: the
    hardware models are mostly callback-driven (a DMA engine schedules its
    own completion), while protocol logic is written as coroutines.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processes: list = []  # live Process objects, for diagnostics
        self.fastpath: bool = not slowpath_enabled()
        self._pool: List[ScheduledCall] = []
        #: zero-delay internal calls, as (seq, call) in FIFO order; ``None``
        #: on the slow path (everything goes through the heap there)
        self._ready: Optional[deque] = deque() if self.fastpath else None
        self._cancelled_in_heap = 0
        #: total callbacks executed (cancelled skips excluded) — the
        #: numerator of the sim-speed harness's events/sec metric
        self.events_processed = 0
        #: optional semantic event trace: models append tuples here when it
        #: is a list (the determinism harness compares these sequences
        #: between fast-path and slow-path runs)
        self.trace: Optional[list] = None
        #: runtime sanitizer (repro.analysis), attached when REPRO_SANITIZE=1
        #: — observation-only detectors; None on normal runs, so hooks cost
        #: one attribute load on the cold paths that carry them
        self.sanitizer = None
        if sanitize_enabled():
            from repro.analysis.sanitize import attach

            attach(self)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated microseconds.

        ``priority`` breaks ties *before* insertion order (lower runs
        earlier); the kernel itself always uses the default, but tests use
        it to force orderings when reproducing race conditions (Fig. 5).
        """
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        time = self.now + delay
        call = ScheduledCall(time, fn, args)
        call._sim = self
        heappush(self._heap, (time, priority, next(self._seq), call))
        return call

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past: {time} < {self.now}")
        call = ScheduledCall(time, fn, args)
        call._sim = self
        heappush(self._heap, (time, priority, next(self._seq), call))
        return call

    def schedule_pooled(
        self, delay: float, fn: Callable[..., Any], args: tuple = ()
    ) -> "ScheduledCall":
        """Internal fast-path schedule: same ordering semantics as
        :meth:`schedule`, but returns no handle and recycles the
        :class:`ScheduledCall` through a free list once it fires.

        Only for call sites that never cancel (event completion, process
        resume): a recycled call must not be reachable by user code.

        Returns the (pool-owned) call so the events layer can fuse a sole
        waiter into it in place — callers outside the kernel must not hold
        on to it past the firing.
        """
        ready = self._ready
        if delay == 0.0 and ready is not None:
            # Zero-delay fast path: this call's seq is the largest allocated
            # so far, so FIFO order through a deque is exactly heap order.
            pool = self._pool
            if pool:
                call = pool.pop()
                call.time = self.now
                call.fn = fn
                call.args = args
                call.cancelled = False
            else:
                call = ScheduledCall(self.now, fn, args)
                call._pooled = True
            ready.append((next(self._seq), call))
            return call
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        time = self.now + delay
        pool = self._pool
        if pool:  # never populated on the slow path
            call = pool.pop()
            call.time = time
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            call = ScheduledCall(time, fn, args)
            call._pooled = True
        heappush(self._heap, (time, 0, next(self._seq), call))
        return call

    def spawn(self, gen: Generator, name: Optional[str] = None, daemon: bool = False):
        """Start a coroutine process immediately (at the current time).

        ``daemon`` marks server-style processes that legitimately stay
        blocked on external input when the queue drains (accept loops);
        the deadlock sanitizer skips them.
        """
        cls = _process_cls or _load_process_cls()
        return cls(self, gen, name=name, daemon=daemon)

    def timeout(self, delay: float, value: Any = None):
        """Convenience constructor for a :class:`~repro.sim.events.Timeout`."""
        cls = _timeout_cls or _load_event_cls()[1]
        return cls(self, delay, value)

    def event(self):
        """Convenience constructor for a bare :class:`~repro.sim.events.SimEvent`."""
        cls = _simevent_cls or _load_event_cls()[0]
        return cls(self)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping / compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledCall.cancel`; triggers lazy compaction
        when dead entries outnumber live ones."""
        self._cancelled_in_heap += 1
        if (
            self.fastpath
            and self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.  Live entries keep
        their ``(time, priority, seq)`` keys, so pop order is unchanged.
        In place: :meth:`run` holds a local alias to the heap list, so the
        list object must survive compaction."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapify(heap)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have run.

        Returns the simulation time when the loop stopped.  ``until`` is an
        absolute time; when it is hit the clock is advanced exactly to it
        (standard DES semantics), with any events at later timestamps left
        in the heap for a subsequent ``run`` call.
        """
        if self._running:
            raise SimError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        ready = self._ready  # None on the slow path
        pool = self._pool
        pooling = self.fastpath
        processed = 0
        now = self.now  # mirror; self.now is kept in sync before dispatch
        try:
            while True:
                call = None
                if ready:
                    # A heap entry goes first only if it is due *now* and
                    # sorts before the oldest ready entry's (priority, seq).
                    if heap:
                        h = heap[0]
                        if h[0] != now or (
                            h[1] >= 0 and (h[1] > 0 or h[2] > ready[0][0])
                        ):
                            call = ready.popleft()[1]
                    else:
                        call = ready.popleft()[1]
                if call is None:
                    if not heap:
                        if until is not None and until > now:
                            self.now = until
                        elif self.sanitizer is not None:
                            # natural drain: no callback can ever run again,
                            # so blocked processes are deadlocked (cold path)
                            self.sanitizer.on_drain()
                        break
                    entry = heappop(heap)
                    call = entry[3]
                    if call.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        # Same key re-inserted: pop order is unchanged.
                        heappush(heap, entry)
                        self.now = until
                        break
                    now = self.now = time
                call.fn(*call.args)
                processed += 1
                if call._pooled:
                    if pooling and len(pool) < _POOL_MAX:
                        call.fn = None
                        call.args = ()
                        pool.append(call)
                elif not call.cancelled:
                    # Fired: make a late cancel() on the public handle a no-op
                    # (and keep the cancelled-entry counter honest).
                    call.cancelled = True
                    call.fn = _noop
                    call.args = ()
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is pending."""
        heap = self._heap
        ready = self._ready
        while True:
            call = None
            if ready:
                if heap:
                    h = heap[0]
                    if h[0] != self.now or (
                        h[1] >= 0 and (h[1] > 0 or h[2] > ready[0][0])
                    ):
                        call = ready.popleft()[1]
                else:
                    call = ready.popleft()[1]
            if call is None:
                if not heap:
                    return False
                time, _prio, _seq, call = heappop(heap)
                if call.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self.now = time
            call.fn(*call.args)
            self.events_processed += 1
            if call._pooled:
                if self.fastpath and len(self._pool) < _POOL_MAX:
                    call.fn = None
                    call.args = ()
                    self._pool.append(call)
            elif not call.cancelled:
                call.cancelled = True
                call.fn = _noop
                call.args = ()
            return True

    def stop(self) -> None:
        """Request that the current (or next) :meth:`run` return promptly."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending entries (including cancelled placeholders)."""
        ready = self._ready
        return len(self._heap) + (len(ready) if ready else 0)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if nothing is pending.

        O(1) when nothing is cancelled; otherwise pops dead entries off the
        heap top (they are garbage either way) instead of sorting the whole
        heap — ``run_until_idle`` calls this in a loop.
        """
        ready = self._ready
        if ready:
            # Ready entries are due at the current time; nothing in the heap
            # can be earlier.
            return ready[0][1].time
        heap = self._heap
        if self._cancelled_in_heap:
            while heap and heap[0][3].cancelled:
                heappop(heap)
                self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def run_until_idle(self, quiet_check: Iterable[Callable[[], bool]] = ()) -> float:
        """Run until no live events remain and every ``quiet_check`` passes."""
        while True:
            self.run()
            if all(chk() for chk in quiet_check):
                return self.now
            if self.peek() is None:
                return self.now
