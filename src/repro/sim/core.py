"""The simulation event loop.

A :class:`Simulator` owns a future-event set of ``(time, priority, seq, fn)``
entries.  ``seq`` is a monotonically increasing insertion counter so that
simultaneous events fire in the order they were scheduled — this is what
makes every run of the reproduction bit-for-bit deterministic.

Time is a ``float`` in **microseconds**, matching the unit the paper reports
(latency plots are in µs, bandwidth is derived as bytes / µs = MB/s).

The future-event set (second-generation kernel)
-----------------------------------------------

The reference structure is a single binary heap (what ``REPRO_SIM_SLOWPATH=1``
still uses).  The fast path replaces it with a **calendar/ladder queue**
holding the same ``(time, priority, seq, call)`` entries in four tiers:

* a **zero-delay ready queue**: an internal schedule at the current time
  with default priority always carries the largest ``seq`` so far, so it
  pops after every pending entry with ``time <= now`` and before anything
  later — a FIFO deque reproduces that order exactly without paying two
  O(log n) heap operations (completions and process resumes are almost all
  zero-delay, making this the single hottest path of any run);
* an **active heap**: a small binary heap holding only the near future —
  every entry whose time falls below ``_active_limit`` (the end of the
  last-promoted calendar bucket).  Pops come off this heap, so its size —
  not the total timer population — sets the log factor;
* a **calendar ring** of ``_RING_BUCKETS`` append-only time buckets.  An
  insert beyond ``_active_limit`` but inside the ring horizon is an O(1)
  ``list.append`` into the bucket covering its timestamp.  When the active
  heap drains, the next non-empty bucket is *promoted*: its entries are
  filtered of cancellations and heapified into the active heap (bucket-local
  cleanup — dead timers never cost a global sweep);
* an **overflow heap** for far-future timers (retransmit timeouts,
  heartbeats) beyond the ring horizon.  When ring and active heap are both
  empty the ring is rebuilt over the overflow's observed time span — the
  bucket width derives from the span of pending far timestamps, so the ring
  adapts to the workload's inter-event deltas.  Each entry migrates at most
  once, keeping amortized cost O(1) per event.

**Order is provably unchanged.**  Bucket index is a canonical monotone
function of time (guarded against float rounding), buckets are promoted only
when the active heap is empty, and promoted entries keep their original
``(time, priority, seq)`` keys — so the interleaved pop sequence is exactly
the single-heap pop sequence.  ``tests/sim/test_calendar_queue.py`` checks
this differentially against a plain-heap reference on randomized schedules.

Dispatch fast paths
-------------------

* **same-timestamp batch dispatch**: ``run()`` drains consecutive ready
  entries back-to-back behind one cheap guard (no due entry at ``now`` on
  the active heap), paying the full dequeue arbitration — shared with
  :meth:`Simulator.step` via :meth:`Simulator._next_call` — only at batch
  boundaries;
* a **free-list pool** of :class:`ScheduledCall` objects for internal
  schedules whose handle never escapes (event completion, process resume) —
  the dominant allocation of any run;
* **lazy-cancellation cleanup**: cancelled entries are counted and skipped
  when they surface; ring buckets shed them at promotion; when dead entries
  outnumber live ones the remaining structures (active + overflow heaps)
  are swept (entries keep their ``(time, priority, seq)`` keys, so pop
  order is untouched);
* an **O(live-head)** :meth:`peek` that advances the calendar lazily
  instead of sorting anything.

Setting ``REPRO_SIM_SLOWPATH=1`` in the environment disables the pool,
ready queue, and calendar (and the model-layer caches that key off the same
flag): every entry goes through one binary heap — the reference path the
determinism harness compares against.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "SimError",
    "StopSimulation",
    "ScheduledCall",
    "slowpath_enabled",
    "sanitize_enabled",
]

#: free-list growth bound; beyond this, retired calls are left to the GC
_POOL_MAX = 4096

#: compaction triggers only with at least this many cancelled entries (the
#: sweep is O(pending), so tiny queues are never worth scanning)
_COMPACT_MIN_CANCELLED = 64

#: calendar ring size.  Power of two, large enough that a promoted bucket
#: holds a handful of entries on the bench workloads, small enough that
#: skipping empty buckets between promotions stays cheap.
_RING_BUCKETS = 128

#: floor for the derived bucket width (µs) — a degenerate span (all far
#: timers at one timestamp) must not produce zero-width buckets
_MIN_WIDTH = 1e-6

_INF = float("inf")


def slowpath_enabled() -> bool:
    """True when ``REPRO_SIM_SLOWPATH`` asks for the reference kernel (and
    reference model paths: no call pool, no ready queue, no calendar ring,
    no route/TLB caches, per-hop fabric events)."""
    return os.environ.get("REPRO_SIM_SLOWPATH", "0") not in ("", "0")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for the runtime sanitizers
    (race/leak/deadlock detectors, see :mod:`repro.analysis`)."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


class SimError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised (or passed to :meth:`Simulator.stop`) to end :meth:`Simulator.run`."""


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is O(1): the entry stays where it sits (active heap,
    calendar bucket, or overflow heap) and is skipped when it surfaces;
    calendar buckets drop dead entries wholesale at promotion time.  This is
    important because the NIC models schedule and cancel many timeouts
    (e.g. retransmission timers in the reliability substrate).

    ``_pooled`` marks calls created through the internal free list — their
    handle never escapes the kernel, so they are recycled after firing.
    Public handles are instead marked cancelled once fired, making a late
    ``cancel()`` a no-op (and keeping the simulator's cancelled-entry
    counter honest).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim", "_pooled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None
        self._pooled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled entries don't pin objects alive while
        # they wait to surface.
        self.fn = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


def _noop(*_args: Any) -> None:
    return None


# Lazily-bound constructor classes for spawn()/timeout()/event() — resolved
# once instead of importing inside every call (these run hundreds of
# thousands of times per figure).  Lazy because events/process import core.
_process_cls = None
_timeout_cls = None
_simevent_cls = None


def _load_process_cls():
    global _process_cls
    from repro.sim.process import Process

    _process_cls = Process
    return Process


def _load_event_cls():
    global _simevent_cls, _timeout_cls
    from repro.sim.events import SimEvent, Timeout

    _simevent_cls = SimEvent
    _timeout_cls = Timeout
    return SimEvent, Timeout


class Simulator:
    """Deterministic discrete-event simulator with a µs clock.

    Usage::

        sim = Simulator()
        sim.spawn(my_generator())
        sim.run()

    ``spawn`` wraps a generator in a :class:`~repro.sim.process.Process`
    coroutine; ``schedule`` registers plain callbacks.  Both coexist: the
    hardware models are mostly callback-driven (a DMA engine schedules its
    own completion), while protocol logic is written as coroutines.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processes: list = []  # live Process objects, for diagnostics
        self.fastpath: bool = not slowpath_enabled()
        self._pool: List[ScheduledCall] = []
        #: zero-delay internal calls, as (seq, call) in FIFO order; ``None``
        #: on the slow path (everything goes through the active heap there)
        self._ready: Optional[deque] = deque() if self.fastpath else None
        # -- calendar/ladder future-event set --------------------------
        #: near-future heap of (time, priority, seq, call); on the slow
        #: path this is the *only* structure (the reference binary heap)
        self._active: list[tuple[float, int, int, ScheduledCall]] = []
        self._overflow: list[tuple[float, int, int, ScheduledCall]] = []
        if self.fastpath:
            #: bucket k covers [_bounds[k], _bounds[k+1]); rebuilt lazily
            self._bounds: List[float] = [0.0] * (_RING_BUCKETS + 1)
            self._ring: List[list] = [[] for _ in range(_RING_BUCKETS)]
            #: inserts below this go straight to the active heap
            self._active_limit = 0.0
            #: inserts at/beyond this go to the overflow heap
            self._horizon = 0.0
        else:
            self._bounds = []
            self._ring = []
            self._active_limit = _INF
            self._horizon = _INF
        self._inv_width = 1.0
        #: index of the last promoted ring bucket (-1: none this cycle)
        self._cursor = -1
        #: live + cancelled entries currently sitting in ring buckets
        self._ring_count = 0
        #: largest finite timestamp ever pushed to the overflow heap —
        #: bounds the span the next ring rebuild sizes its buckets from
        self._over_max = 0.0
        self._cancelled_in_heap = 0
        #: total callbacks executed (cancelled skips excluded) — the
        #: numerator of the sim-speed harness's events/sec metric
        self.events_processed = 0
        #: optional semantic event trace: models append tuples here when it
        #: is a list (the determinism harness compares these sequences
        #: between fast-path and slow-path runs)
        self.trace: Optional[list] = None
        #: runtime sanitizer (repro.analysis), attached when REPRO_SANITIZE=1
        #: — observation-only detectors; None on normal runs, so hooks cost
        #: one attribute load on the cold paths that carry them
        self.sanitizer = None
        if sanitize_enabled():
            from repro.analysis.sanitize import attach  # repro-lint: allow[layering] -- opt-in debug hook; gated on REPRO_SANITIZE so the kernel never depends on it

            attach(self)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated microseconds.

        ``priority`` breaks ties *before* insertion order (lower runs
        earlier); the kernel itself always uses the default, but tests use
        it to force orderings when reproducing race conditions (Fig. 5).
        """
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        time = self.now + delay
        call = ScheduledCall(time, fn, args)
        call._sim = self
        seq = next(self._seq)
        if time < self._active_limit:
            heappush(self._active, (time, priority, seq, call))
        else:
            self._insert_far(time, priority, seq, call)
        return call

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past: {time} < {self.now}")
        call = ScheduledCall(time, fn, args)
        call._sim = self
        seq = next(self._seq)
        if time < self._active_limit:
            heappush(self._active, (time, priority, seq, call))
        else:
            self._insert_far(time, priority, seq, call)
        return call

    def schedule_pooled(
        self, delay: float, fn: Callable[..., Any], args: tuple = ()
    ) -> "ScheduledCall":
        """Internal fast-path schedule: same ordering semantics as
        :meth:`schedule`, but returns no handle and recycles the
        :class:`ScheduledCall` through a free list once it fires.

        Only for call sites that never cancel (event completion, process
        resume): a recycled call must not be reachable by user code.

        Returns the (pool-owned) call so the events layer can fuse a sole
        waiter into it in place — callers outside the kernel must not hold
        on to it past the firing.
        """
        ready = self._ready
        if delay == 0.0 and ready is not None:
            # Zero-delay fast path: this call's seq is the largest allocated
            # so far, so FIFO order through a deque is exactly heap order.
            pool = self._pool
            if pool:
                call = pool.pop()
                call.time = self.now
                call.fn = fn
                call.args = args
                call.cancelled = False
            else:
                call = ScheduledCall(self.now, fn, args)
                call._pooled = True
            ready.append((next(self._seq), call))
            return call
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        time = self.now + delay
        pool = self._pool
        if pool:  # never populated on the slow path
            call = pool.pop()
            call.time = time
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            call = ScheduledCall(time, fn, args)
            call._pooled = True
        seq = next(self._seq)
        if time < self._active_limit:
            heappush(self._active, (time, 0, seq, call))
        else:
            self._insert_far(time, 0, seq, call)
        return call

    def spawn(self, gen: Generator, name: Optional[str] = None, daemon: bool = False):
        """Start a coroutine process immediately (at the current time).

        ``daemon`` marks server-style processes that legitimately stay
        blocked on external input when the queue drains (accept loops);
        the deadlock sanitizer skips them.
        """
        cls = _process_cls or _load_process_cls()
        return cls(self, gen, name=name, daemon=daemon)

    def timeout(self, delay: float, value: Any = None):
        """Convenience constructor for a :class:`~repro.sim.events.Timeout`."""
        cls = _timeout_cls or _load_event_cls()[1]
        return cls(self, delay, value)

    def event(self):
        """Convenience constructor for a bare :class:`~repro.sim.events.SimEvent`."""
        cls = _simevent_cls or _load_event_cls()[0]
        return cls(self)

    # ------------------------------------------------------------------
    # Calendar ring internals
    # ------------------------------------------------------------------
    def _bucket_index(self, time: float) -> int:
        """Canonical ring bucket for ``time``: the unique ``k`` with
        ``_bounds[k] <= time < _bounds[k+1]`` (clamped at the ends).

        The division is only a guess; the guard loops pin the result to the
        bucket that actually covers ``time``, so float rounding at a bucket
        boundary can never route two equal timestamps differently — the
        property the ordering proof rests on (monotone in ``time``).
        """
        bounds = self._bounds
        idx = int((time - bounds[0]) * self._inv_width)
        if idx >= _RING_BUCKETS:
            idx = _RING_BUCKETS - 1
        elif idx < 0:
            idx = 0
        while idx and time < bounds[idx]:
            idx -= 1
        last = _RING_BUCKETS - 1
        while idx < last and time >= bounds[idx + 1]:
            idx += 1
        return idx

    def _insert_far(self, time: float, priority: int, seq: int, call) -> None:
        """Insert an entry at/beyond ``_active_limit``: O(1) append into its
        calendar bucket, or an overflow-heap push past the ring horizon."""
        entry = (time, priority, seq, call)
        if time >= self._horizon:
            heappush(self._overflow, entry)
            if self._over_max < time < _INF:
                self._over_max = time
            return
        idx = self._bucket_index(time)
        if idx <= self._cursor:
            # float rounding put a sub-limit timestamp here; the promoted
            # region is served by the active heap
            heappush(self._active, entry)
        else:
            self._ring[idx].append(entry)
            self._ring_count += 1

    def _promote(self) -> bool:
        """Refill the (empty) active heap from the next non-empty ring
        bucket, or rebuild the ring from the overflow heap.  Returns True
        when the active heap ends up non-empty with a live head.

        Only called with the active heap empty, which is what makes
        promotion order-transparent: every entry already popped was in a
        strictly earlier bucket, hence strictly earlier in time.
        """
        active = self._active
        while True:
            while active:
                if not active[0][3].cancelled:
                    return True
                heappop(active)
                self._cancelled_in_heap -= 1
            if self._ring_count:
                ring = self._ring
                c = self._cursor + 1
                while c < _RING_BUCKETS and not ring[c]:
                    c += 1
                if c < _RING_BUCKETS:
                    bucket = ring[c]
                    self._cursor = c
                    self._active_limit = self._bounds[c + 1]
                    self._ring_count -= len(bucket)
                    dead = 0
                    for entry in bucket:
                        if entry[3].cancelled:
                            dead += 1
                        else:
                            active.append(entry)
                    bucket.clear()
                    if dead:
                        self._cancelled_in_heap -= dead
                    if active:
                        # In place: run() may hold an alias to the list.
                        heapify(active)
                    continue
                self._ring_count = 0  # defensive: counter drifted
            if self._overflow:
                self._rebuild_ring()
                continue
            return False

    def _rebuild_ring(self) -> None:
        """Re-anchor the calendar over the overflow heap's time span.

        Bucket width = observed span of pending far timestamps divided by
        the ring size (floored) — the deltas the workload actually exhibits
        size the buckets, so a retransmit-timer storm lands spread across
        the ring while a lone far heartbeat degrades to one bucket.  Every
        migrated entry keeps its key and migrates at most once (the horizon
        only moves forward), so the amortized cost stays O(1) per event.
        """
        overflow = self._overflow
        while overflow and overflow[0][3].cancelled:
            heappop(overflow)
            self._cancelled_in_heap -= 1
        if not overflow:
            return
        t0 = overflow[0][0]
        if not t0 < _INF:
            # Only non-finite timestamps remain: no meaningful span exists;
            # serve them straight from the active heap (plain-heap mode).
            active = self._active
            while overflow:
                active.append(heappop(overflow))
            heapify(active)
            return
        span = self._over_max - t0
        width = span / _RING_BUCKETS if span > 0 else 1.0
        if width < _MIN_WIDTH:
            width = _MIN_WIDTH
        bounds = self._bounds
        for k in range(_RING_BUCKETS + 1):
            bounds[k] = t0 + k * width
        self._inv_width = 1.0 / width
        self._cursor = -1
        self._active_limit = bounds[0]
        horizon = self._horizon = bounds[_RING_BUCKETS]
        ring = self._ring
        moved = 0
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            if entry[3].cancelled:
                self._cancelled_in_heap -= 1
                continue
            ring[self._bucket_index(entry[0])].append(entry)
            moved += 1
        self._ring_count += moved

    # ------------------------------------------------------------------
    # Cancellation bookkeeping / compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledCall.cancel`; triggers a lazy sweep
        when dead entries outnumber live ones."""
        self._cancelled_in_heap += 1
        if (
            self.fastpath
            and self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2
            > len(self._active) + self._ring_count + len(self._overflow)
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled entries out of every tier.  Live entries keep
        their ``(time, priority, seq)`` keys, so pop order is unchanged.
        In place: :meth:`run` holds a local alias to the active heap, so
        the list object must survive compaction.  Ring buckets are plain
        appends — filtering them needs no heapify."""
        active = self._active
        active[:] = [entry for entry in active if not entry[3].cancelled]
        heapify(active)
        if self._ring_count:
            removed = 0
            for bucket in self._ring:
                if bucket:
                    n = len(bucket)
                    bucket[:] = [e for e in bucket if not e[3].cancelled]
                    removed += n - len(bucket)
            self._ring_count -= removed
        overflow = self._overflow
        overflow[:] = [entry for entry in overflow if not entry[3].cancelled]
        heapify(overflow)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Dequeue arbitration (shared by run()/step())
    # ------------------------------------------------------------------
    def _next_call(self, until: Optional[float]) -> Optional[ScheduledCall]:
        """Advance the clock and return the next live callback, or None
        when nothing can run (drained, or ``until`` reached — the clock is
        then advanced exactly to ``until``, standard DES semantics).

        This is the single copy of the dequeue arbitration: the ready queue
        merges against the active heap on ``(priority, seq)`` for entries
        due *now*; otherwise the calendar advances (promotion / rebuild)
        and time moves to the next live entry.  ``run()`` fronts this with
        a batch guard; :meth:`step` calls it directly.
        """
        ready = self._ready
        now = self.now
        active = self._active
        while True:
            if ready:
                # A heap entry goes first only if it is due *now* and
                # sorts before the oldest ready entry's (priority, seq).
                if active and active[0][0] == now:
                    h = active[0]
                    if h[1] < 0 or (h[1] == 0 and h[2] < ready[0][0]):
                        if until is not None and now > until:
                            self.now = until
                            return None
                        heappop(active)
                        call = h[3]
                        if call.cancelled:
                            self._cancelled_in_heap -= 1
                            continue
                        return call
                return ready.popleft()[1]
            if not self._promote():
                if until is not None and until > now:
                    self.now = until
                elif self.sanitizer is not None:
                    # natural drain: no callback can ever run again, so
                    # blocked processes are deadlocked (cold path)
                    self.sanitizer.on_drain()
                return None
            entry = active[0]
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return None
            heappop(active)
            self.now = time
            return entry[3]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.

        Returns the simulation time when the loop stopped.  ``until`` is an
        absolute time; when it is hit the clock is advanced exactly to it
        (standard DES semantics), with any events at later timestamps left
        queued for a subsequent ``run`` call.

        Only a *natural* drain (queue empty, no ``stop()``/``until``/
        ``max_events`` cutoff) invokes the sanitizer's drain hook: blocked
        coroutine processes at that point can never resume, and the
        deadlock detector dumps their wait chains plus every still-held
        lifecycle resource — labelled with its owning layer and acquire
        site via :mod:`repro.annotations` (see
        :mod:`repro.analysis.deadlock`).
        """
        if self._running:
            raise SimError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        ready = self._ready  # None on the slow path
        active = self._active
        pool = self._pool
        pooling = self.fastpath
        next_call = self._next_call
        processed = 0
        limit = -1 if max_events is None else max_events
        try:
            while True:
                # Same-timestamp batch dispatch: while no active-heap entry
                # is due at `now`, consecutive ready entries are already in
                # dispatch order — drain them behind this one guard instead
                # of re-running the full arbitration per pop.
                if ready and not (active and active[0][0] == self.now):
                    call = ready.popleft()[1]
                else:
                    call = next_call(until)
                    if call is None:
                        break
                call.fn(*call.args)
                processed += 1
                if call._pooled:
                    if pooling and len(pool) < _POOL_MAX:
                        call.fn = None
                        call.args = ()
                        pool.append(call)
                elif not call.cancelled:
                    # Fired: make a late cancel() on the public handle a
                    # no-op (and keep the cancelled-entry counter honest).
                    call.cancelled = True
                    call.fn = _noop
                    call.args = ()
                if self._stopped or processed == limit:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        return self.now

    def step(self, until: Optional[float] = None) -> bool:
        """Process a single event.  Returns False when nothing is pending,
        a :meth:`stop` request is outstanding (consumed), or the next event
        lies beyond ``until`` (the clock then advances exactly to it) —
        the same dequeue arbitration :meth:`run` uses.

        A ``False`` return from queue exhaustion goes through the same
        natural-drain path as :meth:`run`, so a sanitized single-stepped
        run still gets the deadlock wait-chain/held-resource dump.
        """
        if self._stopped:
            self._stopped = False
            return False
        call = self._next_call(until)
        if call is None:
            return False
        call.fn(*call.args)
        self.events_processed += 1
        if call._pooled:
            if self.fastpath and len(self._pool) < _POOL_MAX:
                call.fn = None
                call.args = ()
                self._pool.append(call)
        elif not call.cancelled:
            call.cancelled = True
            call.fn = _noop
            call.args = ()
        return True

    def stop(self) -> None:
        """Request that the current (or next) :meth:`run` return promptly."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending entries (including cancelled placeholders)."""
        ready = self._ready
        return (
            len(self._active)
            + self._ring_count
            + len(self._overflow)
            + (len(ready) if ready else 0)
        )

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if nothing is pending.

        O(1) when a live entry heads the ready queue or active heap;
        otherwise the calendar advances lazily (dead heads dropped,
        buckets promoted) until one surfaces — ``run_until_idle`` calls
        this in a loop.
        """
        ready = self._ready
        if ready:
            # Ready entries are due at the current time; nothing queued
            # can be earlier.
            return ready[0][1].time
        if self._promote():
            return self._active[0][0]
        return None

    def run_until_idle(self, quiet_check: Iterable[Callable[[], bool]] = ()) -> float:
        """Run until no live events remain and every ``quiet_check`` passes."""
        while True:
            self.run()
            if all(chk() for chk in quiet_check):
                return self.now
            if self.peek() is None:
                return self.now
