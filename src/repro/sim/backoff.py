"""Deterministic jittered exponential backoff.

One helper shared by everything in the stack that retries with delay —
the failure detector's heartbeats, the recovery driver's respawn loop,
and the Elan4 reliability layer's retransmission timers.  All jitter is
drawn from a caller-supplied seeded RNG (normally a named child stream
of ``cluster.rng``), so every retry schedule is bit-reproducible.

``delay(attempt)`` is the pure form: ``min(base * factor**attempt, cap)``
scaled by ``1 + jitter_frac * U[0, 1)``.  The stateful ``next()``/
``reset()`` pair wraps it with an attempt counter for simple retry loops.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["JitteredBackoff", "RandomSource"]


class RandomSource(Protocol):
    """Anything with ``random() -> float`` in [0, 1) — e.g. a numpy
    ``Generator`` from :class:`repro.sim.rng.RandomStreams`."""

    def random(self) -> float: ...  # pragma: no cover - protocol


class JitteredBackoff:
    """Seeded exponential backoff with multiplicative jitter."""

    def __init__(
        self,
        rng: RandomSource,
        base_us: float,
        factor: float = 2.0,
        cap_us: float = 1_000.0,
        jitter_frac: float = 0.25,
    ):
        if base_us <= 0.0:
            raise ValueError("backoff base must be > 0")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if cap_us < base_us:
            raise ValueError("backoff cap must be >= base")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")
        self.rng = rng
        self.base_us = base_us
        self.factor = factor
        self.cap_us = cap_us
        self.jitter_frac = jitter_frac
        self.attempt = 0

    def delay(self, attempt: int) -> float:
        """Jittered delay in µs for retry number ``attempt`` (0-based).
        Consumes one RNG draw per call."""
        raw = min(self.base_us * (self.factor ** attempt), self.cap_us)
        return raw * (1.0 + self.jitter_frac * float(self.rng.random()))

    def next(self) -> float:
        """Stateful form: delay for the current attempt, then advance."""
        d = self.delay(self.attempt)
        self.attempt += 1
        return d

    def reset(self) -> None:
        self.attempt = 0
