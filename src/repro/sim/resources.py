"""Shared-resource primitives: counted resources and message stores.

These are the generic building blocks; cost-bearing synchronization (locks
with context-switch latency, condition variables with wakeup cost) lives in
:mod:`repro.hw.cpu` because those costs are properties of the simulated
hardware, not of the kernel.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Optional, TYPE_CHECKING

from repro.annotations import acquires, releases
from repro.sim.core import SimError
from repro.sim.events import TRIGGERED, SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Resource", "Store", "PriorityStore"]


class Resource:
    """A counted resource with FIFO waiters (e.g. a DMA engine with N
    concurrent descriptors, or the PCI-X bus with one outstanding burst).

    ``request()`` returns an event that fires when a unit is granted; the
    holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[SimEvent] = deque()
        self._req_name = f"req:{name}"  # request() runs per DMA burst

    def request(self) -> SimEvent:
        ev = SimEvent(self.sim, name=self._req_name)
        if self.in_use < self.capacity:
            self.in_use += 1
            # succeed(self) inlined: a fresh event cannot have completed.
            ev._state = TRIGGERED
            ev._value = self
            ev._call = self.sim.schedule_pooled(0.0, ev._process)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # unit handed over: in_use stays constant
            ev = self._waiters.popleft()
            ev._state = TRIGGERED  # a queued request cannot have fired
            ev._value = self
            ev._call = self.sim.schedule_pooled(0.0, ev._process)
        else:
            self.in_use -= 1

    def cancel(self, ev: SimEvent) -> bool:
        """Withdraw a queued ``request()`` that has not been granted yet.

        Returns True if the event was still waiting (now removed); False if
        the grant already happened — the caller owns a unit and must
        ``release()`` it instead.  Needed when a waiter is killed: leaving
        a dead waiter queued would leak a capacity unit on grant.
        """
        try:
            self._waiters.remove(ev)
            return True
        except ValueError:
            return False

    def acquire(self):
        """Coroutine helper: ``yield from res.acquire()``."""
        yield self.request()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """An unbounded (or bounded) FIFO of items with event-based ``get``.

    This is the shape of every queue in the reproduction: QDMA receive
    queues, PML unexpected-message lists, socket buffers, OOB mailboxes.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: Optional[int] = None,
        name: str = "",
    ):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple[SimEvent, Any]] = deque()
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"

    @releases("store-item")
    def put(self, item: Any) -> SimEvent:
        """Deposit ``item``; returns an event that fires once it is stored
        (immediately unless the store is bounded and full)."""
        ev = SimEvent(self.sim, name=self._put_name)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    @acquires("store-item")
    def get(self) -> SimEvent:
        """Returns an event yielding the next item (waits if empty)."""
        ev = SimEvent(self.sim, name=self._get_name)
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking poll: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed(None)

    def __len__(self) -> int:
        return len(self._items)

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (for matching scans, not consumption)."""
        return list(self._items)

    def remove(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Remove and return the first item satisfying ``predicate``."""
        for i, item in enumerate(self._items):
            if predicate(item):
                del self._items[i]
                self._admit_putter()
                return item
        return None


def _identity_key(item: Any) -> Any:
    return item


class PriorityStore(Store):
    """A Store that yields the smallest item first (heap ordering).

    ``key`` extracts the sort key from an item (default: the item itself,
    which must then be totally ordered).  The heap entry is
    ``(key(item), counter, item)`` — the insertion counter breaks key ties
    deterministically *before* the item is ever compared, so payloads never
    need to be orderable.  Pass ``key=lambda it: it[0]`` for the classic
    ``(priority, payload)`` shape with unorderable payloads.
    """

    def __init__(self, sim: "Simulator", name: str = "", key: Callable[[Any], Any] = _identity_key):
        super().__init__(sim, capacity=None, name=name)
        self._heap: list[tuple[Any, int, Any]] = []
        self._counter = itertools.count()
        self._key = key

    def put(self, item: Any) -> SimEvent:
        ev = SimEvent(self.sim, name=self._put_name)
        if self._getters:
            # Even with waiters, route through the heap so priorities hold.
            heapq.heappush(self._heap, (self._key(item), next(self._counter), item))
            getter = self._getters.popleft()
            top = heapq.heappop(self._heap)[2]
            getter.succeed(top)
        else:
            heapq.heappush(self._heap, (self._key(item), next(self._counter), item))
        ev.succeed(None)
        return ev

    def get(self) -> SimEvent:
        ev = SimEvent(self.sim, name=self._get_name)
        if self._heap:
            ev.succeed(heapq.heappop(self._heap)[2])
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        if self._heap:
            return True, heapq.heappop(self._heap)[2]
        return False, None

    def __len__(self) -> int:
        return len(self._heap)
