"""Coroutine processes.

A :class:`Process` drives a generator inside the simulator: every value the
generator yields must be a :class:`~repro.sim.events.SimEvent`; the process
suspends until the event completes, then resumes with the event's value (or
with its exception re-raised at the yield point).

A Process is itself a SimEvent: it completes with the generator's return
value, so processes compose — ``yield child_process`` joins a child, and
``yield from subroutine()`` inlines a sub-protocol.  The entire Open MPI
stack is written this way (an ``MPI_Send`` coroutine yields from the PML,
which yields on PTL fragment events, which are completed by NIC callbacks).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.sim.core import SimError
from repro.sim.events import PENDING, PROCESSED, TRIGGERED, SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Used by the CPU model to preempt simulated threads and by fault-injection
    tests to kill in-flight transfers.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(SimEvent):
    """A generator-driven coroutine that is also an awaitable event."""

    __slots__ = ("gen", "_waiting_on", "_cb", "_direct", "_fuse", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: Optional[str] = None,
        daemon: bool = False,
    ):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise SimError(f"Process requires a generator, got {gen!r}")
        self.gen = gen
        #: daemon processes (accept loops, connection servers) legitimately
        #: outlive the workload blocked on external input; the deadlock
        #: sanitizer excludes them from blocked-at-drain dumps
        self.daemon = daemon
        self._waiting_on: Optional[SimEvent] = None
        self._cb = self._on_event  # bound once; registered on every wait
        self._direct = self._direct_wake
        self._fuse = sim.fastpath
        if sim.sanitizer is not None:
            sim.sanitizer.on_process(self)
        sim.schedule_pooled(0.0, self._resume, (None, None))

    # -- driving -------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An interrupt that escapes the generator terminates it quietly.
            self.succeed(None)
            return
        except BaseException as err:  # generator raised: propagate to joiners
            self.fail(err)
            if not self._callbacks:
                # Nobody is joining this process; surface the error rather
                # than losing it (strictness catches protocol bugs early).
                raise
            return
        if not isinstance(target, SimEvent):
            self.gen.close()
            self.fail(SimError(f"process {self.name!r} yielded non-event {target!r}"))
            raise SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield SimEvent instances (use sim.timeout(...) to sleep)"
            )
        self._waiting_on = target
        if self._fuse and target._state == TRIGGERED and not target._callbacks:
            call = target._call
            if call is not None:
                # Sole-waiter fusion: the event's completion is already
                # scheduled; rewrite that pending call in place to resume
                # this process directly.  The (time, priority, seq) slot is
                # unchanged, so event ordering is untouched — this only
                # skips the _process -> _on_event dispatch hop.
                call.fn = self._direct
                call.args = (target,)
                return
        target.add_callback(self._cb)

    def _direct_wake(self, ev: SimEvent) -> None:
        """Fire a fused completion (see :meth:`_resume`): complete ``ev``,
        resume this process, then run any callbacks registered after the
        fusion — exactly the order the generic path produces."""
        ev._state = PROCESSED
        ev._call = None
        if self._state == PENDING:
            exc = ev._exc
            if exc is not None:
                self._resume(None, exc)
            else:
                self._resume(ev._value, None)
        late = ev._callbacks
        if late:
            ev._callbacks = []
            for cb in late:
                cb(ev)

    def _on_event(self, ev: SimEvent) -> None:
        if self._state != PENDING:
            return  # interrupted while waiting; stale wakeup
        exc = ev._exc
        if exc is not None:
            self._resume(None, exc)
        else:
            self._resume(ev._value, None)

    # -- control -------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The event it was waiting on is detached (its completion will be
        ignored by this process).  Interrupting a finished process is a
        no-op, matching thread-cancellation semantics.
        """
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None:
            call = waiting._call
            if call is not None and call.fn is self._direct:
                # Un-fuse: restore the event's own completion so a stale
                # wakeup cannot resume this (re-waiting) process.
                call.fn = waiting._process
                call.args = ()
            else:
                waiting.discard_callback(self._cb)
            self._waiting_on = None
        self.sim.schedule_pooled(0.0, self._deliver_interrupt, (Interrupt(cause),))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        self._resume(None, exc)
