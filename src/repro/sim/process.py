"""Coroutine processes.

A :class:`Process` drives a generator inside the simulator: every value the
generator yields must be a :class:`~repro.sim.events.SimEvent`; the process
suspends until the event completes, then resumes with the event's value (or
with its exception re-raised at the yield point).

A Process is itself a SimEvent: it completes with the generator's return
value, so processes compose — ``yield child_process`` joins a child, and
``yield from subroutine()`` inlines a sub-protocol.  The entire Open MPI
stack is written this way (an ``MPI_Send`` coroutine yields from the PML,
which yields on PTL fragment events, which are completed by NIC callbacks).

The flattened trampoline
------------------------

The dominant suspend/resume pattern is a process waiting on an event that is
already TRIGGERED with no other waiter (a Timeout, or a completion the
hardware just signalled).  Instead of the generic path — the event's pooled
``ScheduledCall`` fires ``_process``, which walks the callback list into
``_on_event``, which calls ``_resume`` — the process *fuses* into the
pending call: the call is rewritten in place (same ``(time, priority, seq)``
slot, so ordering is untouched) to invoke :meth:`Process._fused_wake`, which
finalizes the event and steps the generator in one frame, re-fusing onto the
next yielded event when it can.  Two steady-state coroutines ping-ponging on
timeouts thus run the whole suspend/resume cycle in a single argument-free
bound-method call per event, with no intermediate dispatch hops and no
``args`` tuple allocation.  Fusion is fast-path only (``sim.fastpath``); the
slow path keeps the generic callback chain.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.sim.core import SimError
from repro.sim.events import PENDING, PROCESSED, TRIGGERED, SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Used by the CPU model to preempt simulated threads and by fault-injection
    tests to kill in-flight transfers.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(SimEvent):
    """A generator-driven coroutine that is also an awaitable event."""

    __slots__ = ("gen", "_waiting_on", "_cb", "_fused", "_fused_ev", "_fuse", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: Optional[str] = None,
        daemon: bool = False,
    ):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise SimError(f"Process requires a generator, got {gen!r}")
        self.gen = gen
        #: daemon processes (accept loops, connection servers) legitimately
        #: outlive the workload blocked on external input; the deadlock
        #: sanitizer excludes them from blocked-at-drain dumps
        self.daemon = daemon
        self._waiting_on: Optional[SimEvent] = None
        self._cb = self._on_event  # bound once; registered on every wait
        self._fused = self._fused_wake
        #: the event whose pending call currently points at _fused_wake;
        #: carried here instead of in call.args so fusing allocates nothing
        self._fused_ev: Optional[SimEvent] = None
        self._fuse = sim.fastpath
        if sim.sanitizer is not None:
            sim.sanitizer.on_process(self)
        sim.schedule_pooled(0.0, self._resume, (None, None))

    # -- driving -------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except BaseException as err:
            self._finish(err)
            return
        if not isinstance(target, SimEvent):
            self._reject_yield(target)
        self._waiting_on = target
        if self._fuse and target._state == TRIGGERED and not target._callbacks:
            call = target._call
            if call is not None:
                # Sole-waiter fusion: the event's completion is already
                # scheduled; rewrite that pending call in place to resume
                # this process directly.  The (time, priority, seq) slot is
                # unchanged, so event ordering is untouched.
                call.fn = self._fused
                call.args = ()
                self._fused_ev = target
                return
        target.add_callback(self._cb)

    def _finish(self, err: BaseException) -> None:
        """The generator raised out of send/throw — finish the process.

        Cold path shared by :meth:`_resume` and :meth:`_fused_wake`:
        StopIteration is a normal return, an escaping Interrupt terminates
        quietly, anything else fails the process (and surfaces when nobody
        is joining, so protocol bugs cannot vanish silently).
        """
        if isinstance(err, StopIteration):
            self.succeed(err.value)
        elif isinstance(err, Interrupt):
            self.succeed(None)
        else:
            self.fail(err)
            if not self._callbacks:
                raise err

    def _reject_yield(self, target: Any) -> None:
        self.gen.close()
        self.fail(SimError(f"process {self.name!r} yielded non-event {target!r}"))
        raise SimError(
            f"process {self.name!r} yielded {target!r}; processes must "
            "yield SimEvent instances (use sim.timeout(...) to sleep)"
        )

    def _fused_wake(self) -> None:
        """Fire a fused completion (see :meth:`_resume`): finalize the
        event, step the generator, re-fuse onto the next yielded event when
        possible, then run any callbacks registered after the fusion —
        exactly the order the generic dispatch path produces."""
        ev = self._fused_ev
        self._fused_ev = None
        ev._state = PROCESSED
        ev._call = None
        if self._state == PENDING:
            exc = ev._exc
            if exc is not None:
                self._resume(None, exc)
            else:
                # Inlined hot continuation of _resume(ev._value, None); the
                # fusion guard drops the self._fuse test (fusion only ever
                # installs on the fast path).
                self._waiting_on = None
                try:
                    target = self.gen.send(ev._value)
                except BaseException as err:
                    self._finish(err)
                else:
                    if not isinstance(target, SimEvent):
                        self._reject_yield(target)
                    self._waiting_on = target
                    if target._state == TRIGGERED and not target._callbacks:
                        call = target._call
                        if call is not None:
                            call.fn = self._fused
                            call.args = ()
                            self._fused_ev = target
                        else:
                            target.add_callback(self._cb)
                    else:
                        target.add_callback(self._cb)
        late = ev._callbacks
        if late:
            ev._callbacks = []
            for cb in late:
                cb(ev)

    def _on_event(self, ev: SimEvent) -> None:
        if self._state != PENDING:
            return  # interrupted while waiting; stale wakeup
        exc = ev._exc
        if exc is not None:
            self._resume(None, exc)
        else:
            self._resume(ev._value, None)

    # -- control -------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The event it was waiting on is detached (its completion will be
        ignored by this process).  Interrupting a finished process is a
        no-op, matching thread-cancellation semantics.
        """
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None:
            call = waiting._call
            if call is not None and call.fn is self._fused:
                # Un-fuse: restore the event's own completion so a stale
                # wakeup cannot resume this (re-waiting) process.
                call.fn = waiting._process
                call.args = ()
                self._fused_ev = None
            else:
                waiting.discard_callback(self._cb)
            self._waiting_on = None
        self.sim.schedule_pooled(0.0, self._deliver_interrupt, (Interrupt(cause),))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        self._resume(None, exc)
