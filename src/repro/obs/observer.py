"""The :class:`Observer` — the single object every instrumentation hook
talks to.

Model code never imports the flight recorder or metrics registry
directly; it holds an ``obs`` attribute that is ``None`` when
observability is disabled (the default) and an :class:`Observer` when
enabled.  Every hook site is therefore one attribute check in the
disabled case — the same pattern the tracer and sanitizer already use —
which is what keeps default runs bit-identical and the sim-speed gate
honest.

The Observer owns:

* a :class:`~repro.obs.flight.FlightRecorder` for per-message timelines;
* a :class:`~repro.obs.metrics.MetricsRegistry` for scoped counters,
  gauges, and fixed-bucket histograms;
* a list of global instant *marks* (fault injections, reroutes) that are
  not tied to any one message but belong on the exported timeline.

All hook methods tolerate ``tid=None`` so call sites never need to guard
on whether a particular message was recorded.
"""

from __future__ import annotations

from typing import Any

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_US, MetricsRegistry

__all__ = ["Observer", "Mark"]


class Mark:
    """A global instant event (not tied to one message)."""

    __slots__ = ("layer", "name", "ts", "node", "fields")

    def __init__(
        self,
        layer: str,
        name: str,
        ts: float,
        node: int | None,
        fields: dict[str, Any] | None,
    ):
        self.layer = layer
        self.name = name
        self.ts = ts
        self.node = node
        self.fields = fields

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"layer": self.layer, "name": self.name, "ts": self.ts}
        if self.node is not None:
            out["node"] = self.node
        if self.fields:
            out["fields"] = dict(self.fields)
        return out


class Observer:
    """One observed run: flight records + metrics + global marks."""

    def __init__(self, sim: Any, keep_flights: int | None = None):
        self.sim = sim
        self.flights = FlightRecorder(keep_flights=keep_flights)
        self.metrics = MetricsRegistry()
        self.marks: list[Mark] = []
        #: free-form run labels copied into exported trace metadata
        self.labels: dict[str, Any] = {}

    @property
    def now(self) -> float:
        return float(self.sim.now)

    # -- flight recorder hooks ---------------------------------------------
    def flight_begin(
        self,
        kind: str,
        src_rank: int,
        dst_rank: int,
        tag: int,
        ctx_id: int,
        nbytes: int,
    ) -> int:
        self.metrics.count("pml", "sends_started")
        return self.flights.begin(
            kind, src_rank, dst_rank, tag, ctx_id, nbytes, self.now
        )

    def flight_kind(self, tid: int | None, kind: str) -> None:
        self.flights.set_kind(tid, kind)

    def flight_span(
        self,
        tid: int | None,
        layer: str,
        name: str,
        t0: float,
        node: int | None = None,
        **fields: Any,
    ) -> None:
        """Record a span from ``t0`` (caller-captured start time) to now."""
        now = self.now
        self.flights.span(tid, layer, name, t0, now - t0, node, fields or None)

    def flight_instant(
        self,
        tid: int | None,
        layer: str,
        name: str,
        node: int | None = None,
        **fields: Any,
    ) -> None:
        self.flights.instant(tid, layer, name, self.now, node, fields or None)

    def flight_complete(self, tid: int | None) -> None:
        rec = self.flights.complete(tid, self.now)
        if rec is not None:
            self.metrics.count("pml", "sends_completed")
            latency = rec.t_end - rec.t_begin  # type: ignore[operator]
            self.metrics.sample("pml", "message_latency_us", latency)

    def flight_abandon(self, tid: int | None, reason: str) -> None:
        """A message destroyed mid-flight (peer death, revoke): close the
        record without a delivery time so it is not reported as leaked."""
        rec = self.flights.abandon(tid, self.now, reason)
        if rec is not None:
            self.metrics.count("pml", "sends_abandoned")

    def flight_abandon_involving(self, rank: int, reason: str) -> int:
        n = self.flights.abandon_involving(rank, self.now, reason)
        if n:
            self.metrics.count("pml", "sends_abandoned", n)
        return n

    # -- metrics hooks -------------------------------------------------------
    def count(self, scope: str, name: str, n: int = 1) -> None:
        self.metrics.count(scope, name, n)

    def gauge(self, scope: str, name: str, value: float) -> None:
        self.metrics.gauge_set(scope, name, value)

    def sample(
        self,
        scope: str,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> None:
        self.metrics.sample(scope, name, value, bounds)

    # -- global instants (faults, reroutes, rail events) ---------------------
    def instant(
        self, layer: str, name: str, node: int | None = None, **fields: Any
    ) -> None:
        self.marks.append(Mark(layer, name, self.now, node, fields or None))

    # -- end-of-run collection ----------------------------------------------
    def summarize_cluster(self, cluster: Any) -> None:
        """Pull end-state gauges from hardware that has no hot-path hooks.

        PCI buses, CPU schedulers, switches, and topologies keep their own
        cheap counters; rather than branch in ``dma()``/``route()`` we read
        them once at export time.  Iteration orders are structural (list
        index, sorted switch names), never set order.
        """
        m = self.metrics
        for node in cluster.nodes:
            nid = node.node_id
            cpu = node.scheduler.stats()
            pci = node.pci.stats()
            m.gauge_set("hw", f"node{nid}.cpu_busy_us", cpu["busy_time_us"])
            m.gauge_set("hw", f"node{nid}.cpu_threads", cpu["threads"])
            m.gauge_set("hw", f"node{nid}.pci_bytes", pci["bytes_moved"])
            m.gauge_set("hw", f"node{nid}.pci_pio", pci["pio_count"])
            m.gauge_set("hw", f"node{nid}.interrupts", node.interrupts_delivered)
        for rail, nics in enumerate(cluster.rail_nics):
            prefix = f"rail{rail}." if rail else ""
            for nic in nics:
                nid = nic.node_id
                key = f"{prefix}nic{nid}"
                m.gauge_set("nic", f"{key}.chains_run", nic.chains_run)
                m.gauge_set("nic", f"{key}.dropped", len(nic.dropped))
                m.gauge_set("nic", f"{key}.pci_bytes", nic.pci.stats()["bytes_moved"])
                m.gauge_set("nic", f"{key}.qdma_sends", nic.qdma.sends)
                m.gauge_set("nic", f"{key}.qdma_chained_sends", nic.qdma.chained_sends)
                m.gauge_set("nic", f"{key}.rdma_writes", nic.rdma.writes_issued)
                m.gauge_set("nic", f"{key}.rdma_reads", nic.rdma.reads_issued)
                m.gauge_set("nic", f"{key}.rdma_bytes_written", nic.rdma.bytes_written)
                m.gauge_set("nic", f"{key}.rdma_bytes_read", nic.rdma.bytes_read)
                m.gauge_set("nic", f"{key}.tport_matches", nic.tport.matches)
        for rail, fabric in enumerate(cluster.rail_fabrics):
            prefix = f"rail{rail}." if rail else ""
            m.gauge_set("switch", f"{prefix}packets_delivered", fabric.packets_delivered)
            m.gauge_set("switch", f"{prefix}bytes_delivered", fabric.bytes_delivered)
            m.gauge_set("switch", f"{prefix}packets_lost", fabric.packets_lost)
            m.gauge_set("switch", f"{prefix}packets_corrupted", fabric.packets_corrupted)
            m.gauge_set(
                "switch", f"{prefix}packets_unroutable", fabric.packets_unroutable
            )
            m.gauge_set("switch", f"{prefix}hop_transits", fabric.hop_transits)
        for rail, topology in enumerate(cluster.rail_topologies):
            prefix = f"rail{rail}." if rail else ""
            m.gauge_set("switch", f"{prefix}reroutes", topology.reroutes)
            m.gauge_set("switch", f"{prefix}dead_switches", len(topology.dead_switches))
            m.gauge_set("switch", f"{prefix}dead_links", len(topology.dead_links))
            for name in sorted(topology.switches):
                m.gauge_set(
                    "switch",
                    f"{prefix}{name}.packets_routed",
                    topology.switches[name].packets_routed,
                )
        for rail, nics in enumerate(getattr(cluster, "ib_nics", [])):
            prefix = f"ibrail{rail}." if rail else "ib."
            for nic in nics:
                key = f"{prefix}hca{nic.node_id}"
                for name, value in sorted(nic.stats().items()):
                    m.gauge_set("ib", f"{key}.{name}", value)
        for rail, fabric in enumerate(getattr(cluster, "ib_fabrics", [])):
            prefix = f"ibrail{rail}." if rail else "ib."
            for name, value in sorted(fabric.stats().items()):
                m.gauge_set("ib", f"{prefix}{name}", value)
            for sw in fabric.switches:
                m.gauge_set(
                    "ib", f"{prefix}{sw.name}.packets_routed", sw.packets_routed
                )
                for port, depth in sorted(sw.queue_depths().items()):
                    m.gauge_set("ib", f"{prefix}{sw.name}.{port}.depth", depth)

    def snapshot(self) -> dict[str, Any]:
        return self.metrics.snapshot(at_us=self.now)
