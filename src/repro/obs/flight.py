"""Message flight recorder.

Every MPI message gets a **trace id** (tid) when the PML schedules it.
The tid rides the message's side-channel metadata down through PTL
fragment scheduling, NIC descriptors, and switch hops, and back up on
the receive side; each layer appends a span or instant to the message's
:class:`FlightRecord`.  After the run, any message's end-to-end timeline
and per-layer latency breakdown (the paper's Fig. 9 decomposition) can
be reconstructed programmatically.

Spans are stored as (ts, dur) pairs in modelled microseconds, tagged
with the layer that emitted them (``pml`` / ``ptl`` / ``nic`` /
``switch``).  The recorder never touches wire bytes or timing; it is
observation-only.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "FlightEvent",
    "FlightRecord",
    "FlightRecorder",
    "LAYERS",
]

#: layer ordering used by breakdowns and trace export tracks
LAYERS: tuple[str, ...] = ("pml", "ptl", "nic", "switch")


class FlightEvent:
    """One span or instant on a flight timeline."""

    __slots__ = ("layer", "name", "ts", "dur", "node", "fields")

    def __init__(
        self,
        layer: str,
        name: str,
        ts: float,
        dur: float | None,
        node: int | None,
        fields: dict[str, Any] | None,
    ):
        self.layer = layer
        self.name = name
        self.ts = ts
        self.dur = dur  # None for instant events
        self.node = node
        self.fields = fields

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"layer": self.layer, "name": self.name, "ts": self.ts}
        if self.dur is not None:
            out["dur"] = self.dur
        if self.node is not None:
            out["node"] = self.node
        if self.fields:
            out["fields"] = dict(self.fields)
        return out


class FlightRecord:
    """The end-to-end life of one MPI message."""

    __slots__ = (
        "tid",
        "kind",
        "src_rank",
        "dst_rank",
        "tag",
        "ctx_id",
        "nbytes",
        "t_begin",
        "t_end",
        "abandoned",
        "events",
    )

    def __init__(
        self,
        tid: int,
        kind: str,
        src_rank: int,
        dst_rank: int,
        tag: int,
        ctx_id: int,
        nbytes: int,
        t_begin: float,
    ):
        self.tid = tid
        self.kind = kind  # "eager" / "rndv", refined as the PTL decides
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.tag = tag
        self.ctx_id = ctx_id
        self.nbytes = nbytes
        self.t_begin = t_begin
        self.t_end: float | None = None
        #: abandon reason (peer death, communicator revoke) — set instead of
        #: t_end when the message was destroyed rather than delivered
        self.abandoned: str | None = None
        self.events: list[FlightEvent] = []

    @property
    def latency_us(self) -> float | None:
        if self.t_end is None:
            return None
        return self.t_end - self.t_begin

    def layer_breakdown(self) -> dict[str, float]:
        """Per-layer span time plus ``total`` and ``unattributed``.

        Spans within one layer may overlap (e.g. two fragments in the NIC
        at once); this sums them as-is, which is the convention Fig. 9's
        cost accounting uses — it measures work performed per layer, not
        wall coverage.
        """
        out: dict[str, float] = {layer: 0.0 for layer in LAYERS}
        for ev in self.events:
            if ev.dur is not None:
                out[ev.layer] = out.get(ev.layer, 0.0) + ev.dur
        total = self.latency_us
        if total is not None:
            out["total"] = total
            attributed = sum(out[layer] for layer in out if layer != "total")
            out["unattributed"] = max(0.0, total - attributed)
        return out

    def as_dict(self) -> dict[str, Any]:
        out = {
            "tid": self.tid,
            "kind": self.kind,
            "src_rank": self.src_rank,
            "dst_rank": self.dst_rank,
            "tag": self.tag,
            "ctx_id": self.ctx_id,
            "nbytes": self.nbytes,
            "t_begin": self.t_begin,
            "t_end": self.t_end,
            "events": [ev.as_dict() for ev in self.events],
        }
        if self.abandoned is not None:
            out["abandoned"] = self.abandoned
        return out


class FlightRecorder:
    """Allocates trace ids and accumulates per-message records.

    ``keep_flights`` caps how many *completed* flights are retained
    (oldest dropped first); in-flight records are never dropped, since a
    hook may still append to them.  Drops are counted in
    ``flights_dropped`` and surface in exported trace metadata rather
    than vanishing silently.
    """

    def __init__(self, keep_flights: int | None = None):
        if keep_flights is not None and keep_flights < 1:
            raise ValueError(f"keep_flights must be >= 1, got {keep_flights}")
        self.keep_flights = keep_flights
        self._next_tid = 1
        self._records: dict[int, FlightRecord] = {}
        self._completed: list[int] = []  # completion order, for ring eviction
        self.flights_dropped = 0

    # -- record lifecycle ---------------------------------------------------
    def begin(
        self,
        kind: str,
        src_rank: int,
        dst_rank: int,
        tag: int,
        ctx_id: int,
        nbytes: int,
        t_begin: float,
    ) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._records[tid] = FlightRecord(
            tid, kind, src_rank, dst_rank, tag, ctx_id, nbytes, t_begin
        )
        return tid

    def get(self, tid: int | None) -> FlightRecord | None:
        if tid is None:
            return None
        return self._records.get(tid)

    def set_kind(self, tid: int | None, kind: str) -> None:
        rec = self.get(tid)
        if rec is not None:
            rec.kind = kind

    def span(
        self,
        tid: int | None,
        layer: str,
        name: str,
        ts: float,
        dur: float,
        node: int | None = None,
        fields: dict[str, Any] | None = None,
    ) -> None:
        rec = self.get(tid)
        if rec is not None:
            rec.events.append(FlightEvent(layer, name, ts, dur, node, fields))

    def instant(
        self,
        tid: int | None,
        layer: str,
        name: str,
        ts: float,
        node: int | None = None,
        fields: dict[str, Any] | None = None,
    ) -> None:
        rec = self.get(tid)
        if rec is not None:
            rec.events.append(FlightEvent(layer, name, ts, None, node, fields))

    def complete(self, tid: int | None, t_end: float) -> FlightRecord | None:
        rec = self.get(tid)
        if rec is None or rec.t_end is not None or rec.abandoned is not None:
            return None
        rec.t_end = t_end
        self._completed.append(rec.tid)
        if self.keep_flights is not None and len(self._completed) > self.keep_flights:
            evict = self._completed[: len(self._completed) - self.keep_flights]
            del self._completed[: len(evict)]
            for old_tid in evict:
                if self._records.pop(old_tid, None) is not None:
                    self.flights_dropped += 1
        return rec

    def abandon(
        self, tid: int | None, ts: float, reason: str
    ) -> FlightRecord | None:
        """Close a flight destroyed by peer death / revoke.  The record
        keeps ``t_end=None`` (it has no delivery time) but is no longer
        *open*: the sanitizer's open-span probe treats abandoned traffic
        as accounted-for, not leaked."""
        rec = self.get(tid)
        if rec is None or rec.t_end is not None or rec.abandoned is not None:
            return None
        rec.abandoned = reason
        rec.events.append(FlightEvent("pml", "abandoned", ts, None, None, {"reason": reason}))
        return rec

    def abandon_involving(self, rank: int, ts: float, reason: str) -> int:
        """Abandon every open flight that has ``rank`` as source or
        destination (the sweep run when a dead rank's NIC resources are
        reclaimed).  Returns how many flights were closed."""
        n = 0
        for rec in self.open_records():
            if rec.src_rank == rank or rec.dst_rank == rank:
                if self.abandon(rec.tid, ts, reason) is not None:
                    n += 1
        return n

    # -- queries ------------------------------------------------------------
    def records(self) -> list[FlightRecord]:
        """All retained records in tid (allocation) order."""
        return [self._records[tid] for tid in sorted(self._records)]

    def completed(self) -> list[FlightRecord]:
        return [r for r in self.records() if r.t_end is not None]

    def open_records(self) -> list[FlightRecord]:
        """Flights begun but never completed — lost or still-queued
        messages; the sanitizer and report surface these.  Abandoned
        flights (destroyed by peer death) are excluded: they are
        accounted-for, not leaked."""
        return [
            r for r in self.records() if r.t_end is None and r.abandoned is None
        ]

    def abandoned_records(self) -> list[FlightRecord]:
        return [r for r in self.records() if r.abandoned is not None]

    def slowest(self, n: int) -> list[FlightRecord]:
        done = self.completed()
        done.sort(key=lambda r: (-(r.t_end - r.t_begin), r.tid))  # type: ignore[operator]
        return done[:n]

    def layer_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate per-layer breakdown across completed flights."""
        sums: dict[str, float] = {}
        count = 0
        for rec in self.completed():
            count += 1
            for layer, val in rec.layer_breakdown().items():
                sums[layer] = sums.get(layer, 0.0) + val
        out: dict[str, dict[str, float]] = {}
        for layer in sorted(sums):
            out[layer] = {
                "total_us": sums[layer],
                "mean_us": sums[layer] / count if count else 0.0,
            }
        return out
