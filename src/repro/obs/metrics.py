"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the one place benches, fault campaigns, and the exporters
read operational numbers from, replacing the ad-hoc per-object counters
each consumer used to re-plumb by hand.  Three metric kinds:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (queue depths, pending ops);
* :class:`Histogram` — sim-time samples bucketed at **fixed, explicit
  boundaries** so two runs of the same workload produce bit-identical
  snapshots (no adaptive binning, no wall-clock anywhere).

Metrics live in named scopes, one per subsystem (``pml`` / ``ptl`` /
``nic`` / ``switch`` / ``faults`` / ``hw``), and the snapshot/diff API
turns any two points in a run into an attributable delta.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
    "diff_snapshots",
]

#: deterministic sim-microsecond boundaries for latency-style histograms
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
)

#: the subsystem scopes instrumentation hooks write into
STANDARD_SCOPES: tuple[str, ...] = (
    "pml",
    "ptl",
    "nic",
    "switch",
    "ib",
    "faults",
    "hw",
    "sched",
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; ``set`` overwrites, ``add`` adjusts."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Sim-time samples over fixed bucket boundaries.

    ``bounds`` are upper edges; a sample lands in the first bucket whose
    bound is >= the value, or in the overflow bucket past the last bound.
    Boundaries are frozen at construction — determinism requires that two
    identical runs bucket identically.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_US):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the bucket holding
        the q-th sample); +inf bucket reports the last finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricScope:
    """One subsystem's metrics, keyed by name within the scope."""

    def __init__(self, name: str):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_US
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].as_dict()
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].as_dict()
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].as_dict()
        return out


class MetricsRegistry:
    """All scopes of one observed run."""

    def __init__(self) -> None:
        self._scopes: dict[str, MetricScope] = {}
        for name in STANDARD_SCOPES:
            self._scopes[name] = MetricScope(name)

    def scope(self, name: str) -> MetricScope:
        s = self._scopes.get(name)
        if s is None:
            s = self._scopes[name] = MetricScope(name)
        return s

    # -- hook-site shortcuts ------------------------------------------------
    def count(self, scope: str, name: str, n: int = 1) -> None:
        self.scope(scope).counter(name).inc(n)

    def gauge_set(self, scope: str, name: str, value: float) -> None:
        self.scope(scope).gauge(name).set(value)

    def sample(
        self,
        scope: str,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> None:
        self.scope(scope).histogram(name, bounds).observe(value)

    # -- snapshot / diff ----------------------------------------------------
    def snapshot(self, at_us: float = 0.0) -> dict[str, Any]:
        """A plain-dict, JSON-able copy of every metric, keyed scope.name."""
        scopes: dict[str, Any] = {}
        for name in sorted(self._scopes):
            d = self._scopes[name].as_dict()
            if d:
                scopes[name] = d
        return {"at_us": float(at_us), "scopes": scopes}


def diff_snapshots(new: dict[str, Any], old: dict[str, Any]) -> dict[str, Any]:
    """Delta between two :meth:`MetricsRegistry.snapshot` results.

    Counters and histogram counts/totals subtract; gauges report the new
    value (a gauge has no meaningful delta).  Metrics absent from ``old``
    diff against zero.
    """
    out_scopes: dict[str, Any] = {}
    old_scopes = old.get("scopes", {})
    for scope_name, scope in new.get("scopes", {}).items():
        old_scope = old_scopes.get(scope_name, {})
        entries: dict[str, Any] = {}
        for metric_name, metric in scope.items():
            prev = old_scope.get(metric_name)
            kind = metric.get("type")
            if kind == "counter":
                base = prev.get("value", 0) if prev else 0
                entries[metric_name] = {"type": "counter", "value": metric["value"] - base}
            elif kind == "gauge":
                entries[metric_name] = dict(metric)
            elif kind == "histogram":
                prev_counts = prev.get("counts") if prev else None
                counts = list(metric["counts"])
                if prev_counts and len(prev_counts) == len(counts):
                    counts = [a - b for a, b in zip(counts, prev_counts)]
                count = metric["count"] - (prev.get("count", 0) if prev else 0)
                total = metric["total"] - (prev.get("total", 0.0) if prev else 0.0)
                entries[metric_name] = {
                    "type": "histogram",
                    "bounds": list(metric["bounds"]),
                    "counts": counts,
                    "count": count,
                    "total": total,
                    "mean": total / count if count else 0.0,
                }
        if entries:
            out_scopes[scope_name] = entries
    return {
        "at_us": new.get("at_us", 0.0),
        "since_us": old.get("at_us", 0.0),
        "scopes": out_scopes,
    }
