"""Observability subsystem: flight recorder, metrics registry, exporters.

Two ways to turn it on, both observation-only (modelled time is
bit-identical either way, and identical to a run with obs off):

* **Environment**: ``REPRO_OBS=1`` makes every newly built cluster
  create an :class:`~repro.obs.observer.Observer`; the examples and CI
  use this.  ``REPRO_OBS_KEEP=N`` optionally caps retained flight
  records (ring buffer) for long runs.
* **Programmatic**: the :func:`capture` context manager forces
  observation for clusters built inside it and hands back the created
  observers — what the benches use to emit artifacts without touching
  the environment.

Model objects hold ``obs = None`` when disabled; every hook site is a
single attribute check, the same cost profile as the tracer/sanitizer
hooks the sim-speed gate already covers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.flight import LAYERS, FlightRecord, FlightRecorder
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.observer import Observer

__all__ = [
    "Observer",
    "FlightRecord",
    "FlightRecorder",
    "MetricsRegistry",
    "diff_snapshots",
    "DEFAULT_LATENCY_BUCKETS_US",
    "LAYERS",
    "obs_enabled",
    "maybe_observer",
    "capture",
    "CaptureSession",
]


def obs_enabled() -> bool:
    """True when ``REPRO_OBS`` requests observation (unset/"0" = off)."""
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


def _env_keep_flights() -> int | None:
    raw = os.environ.get("REPRO_OBS_KEEP", "")
    if not raw:
        return None
    return max(1, int(raw))


class CaptureSession:
    """Collects the observers created while a :func:`capture` is active."""

    def __init__(self, keep_flights: int | None = None):
        self.keep_flights = keep_flights
        self.observers: list[Observer] = []

    @property
    def observer(self) -> Observer:
        """The sole observer of a single-cluster capture."""
        if len(self.observers) != 1:
            raise ValueError(
                f"capture saw {len(self.observers)} observers; use .observers"
            )
        return self.observers[0]


_active_captures: list[CaptureSession] = []


@contextmanager
def capture(keep_flights: int | None = None) -> Iterator[CaptureSession]:
    """Force observation for clusters built inside the ``with`` block."""
    session = CaptureSession(keep_flights=keep_flights)
    _active_captures.append(session)
    try:
        yield session
    finally:
        _active_captures.remove(session)


def maybe_observer(sim: Any, keep_flights: int | None = None) -> Observer | None:
    """The factory cluster assembly calls: an Observer when observation is
    requested (innermost active :func:`capture`, else ``REPRO_OBS``),
    otherwise ``None`` so hook sites stay a single attribute check."""
    if _active_captures:
        session = _active_captures[-1]
        ob = Observer(
            sim,
            keep_flights=(
                keep_flights if keep_flights is not None else session.keep_flights
            ),
        )
        session.observers.append(ob)
        return ob
    if obs_enabled():
        if keep_flights is None:
            keep_flights = _env_keep_flights()
        return Observer(sim, keep_flights=keep_flights)
    return None
