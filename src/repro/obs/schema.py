"""Dependency-free validator for the exported Chrome trace JSON.

Checks the structural subset of the Chrome trace-event format that our
exporter emits (and that ``chrome://tracing`` / Perfetto's legacy
importer require), without pulling in a jsonschema package:

* top level is an object with a ``traceEvents`` list and ``otherData``;
* every event has ``ph``/``pid``/``tid``/``name`` of the right types;
* ``X`` events carry numeric ``ts`` and non-negative ``dur``;
* ``i`` events carry a valid scope ``s``; ``b``/``e`` carry ``id`` and
  ``cat``, and every ``b`` has a matching ``e`` (same cat+id) at a
  later-or-equal ``ts`` unless ``otherData`` marks open flights;
* metadata (``M``) events are ``process_name``/``thread_name`` with an
  ``args.name`` string.

Run as a CLI: ``python -m repro.obs.schema trace.json`` — exits 1 and
prints each problem if the file does not validate.
"""

from __future__ import annotations

import json
import sys
from typing import Any

__all__ = ["validate_chrome_trace", "validate_file", "main"]

_ALLOWED_PH = {"X", "i", "b", "e", "M"}
_ALLOWED_SCOPES = {"t", "p", "g"}
_ALLOWED_META = {"process_name", "thread_name"}


def _is_num(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_chrome_trace(obj: Any) -> list[str]:
    """Return a list of problems; empty means the trace validates."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["top level is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    other = obj.get("otherData")
    if not isinstance(other, dict):
        errors.append("missing or non-object 'otherData'")
        other = {}

    open_async: dict[tuple[str, Any], float] = {}
    ended_async: set[tuple[str, Any]] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PH:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing/non-string name")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            if ev.get("name") not in _ALLOWED_META:
                errors.append(f"{where}: unknown metadata {ev.get('name')!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: metadata needs args.name string")
            continue
        if not _is_num(ev.get("ts")):
            errors.append(f"{where}: missing/non-numeric ts")
        if ph == "X":
            if not _is_num(ev.get("dur")) or ev.get("dur", 0) < 0:
                errors.append(f"{where}: X event needs non-negative dur")
        elif ph == "i":
            if ev.get("s") not in _ALLOWED_SCOPES:
                errors.append(f"{where}: instant scope s={ev.get('s')!r}")
        else:  # b / e
            if not isinstance(ev.get("cat"), str) or "id" not in ev:
                errors.append(f"{where}: async event needs cat and id")
                continue
            key = (ev["cat"], ev["id"])
            if ph == "b":
                if key in open_async or key in ended_async:
                    errors.append(f"{where}: duplicate async begin {key}")
                elif _is_num(ev.get("ts")):
                    open_async[key] = float(ev["ts"])
            else:
                t0 = open_async.pop(key, None)
                if t0 is None:
                    errors.append(f"{where}: async end without begin {key}")
                else:
                    ended_async.add(key)
                    if _is_num(ev.get("ts")) and float(ev["ts"]) < t0:
                        errors.append(f"{where}: async end before begin {key}")

    declared_open = other.get("flights_open", 0)
    if isinstance(declared_open, int):
        undeclared = len(open_async) - _count_open_runs(other, declared_open)
        if undeclared > 0:
            errors.append(
                f"{undeclared} async flight(s) never ended and otherData does "
                f"not declare them open"
            )
    return errors


def _count_open_runs(other: dict[str, Any], top_level_open: int) -> int:
    """Open flights may be declared at top level or per merged run."""
    runs = other.get("runs")
    if isinstance(runs, list):
        total = 0
        for run in runs:
            if isinstance(run, dict) and isinstance(run.get("flights_open"), int):
                total += run["flights_open"]
        return total
    return top_level_open


def validate_file(path: str) -> list[str]:
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_chrome_trace(obj)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.obs.schema TRACE.json [TRACE.json ...]")
        return 2
    status = 0
    for path in args:
        problems = validate_file(path)
        if problems:
            status = 1
            print(f"{path}: INVALID ({len(problems)} problem(s))")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
