"""``python -m repro.obs.report`` — human-readable view of a recorded run.

Two modes:

* ``python -m repro.obs.report trace.json`` — reconstruct flight records
  from an exported Chrome trace and print the per-layer latency table
  plus the top-N slowest messages;
* ``python -m repro.obs.report`` (no file) — run a built-in two-node
  ping-pong demo under observation and report it directly; with
  ``--export BASE`` the demo also writes ``BASE.trace.json`` /
  ``BASE.metrics.json``.

The per-layer table is the programmatic form of the paper's Fig. 9
decomposition: mean time attributed to pml / ptl / nic / switch per
completed message, plus the unattributed remainder (queueing between
instrumented spans).
"""

from __future__ import annotations

import argparse
import importlib
import json
from typing import Any

from repro.obs import capture
from repro.obs.export import _PID_STRIDE, write_run_artifacts
from repro.obs.flight import LAYERS
from repro.obs.observer import Observer

__all__ = ["FlightRow", "rows_from_observer", "rows_from_trace", "render", "main"]

_ROW_LAYERS: tuple[str, ...] = LAYERS + ("unattributed",)


class FlightRow:
    """One completed message, reduced to what the tables need."""

    __slots__ = ("tid", "kind", "src", "dst", "tag", "nbytes", "latency", "layers")

    def __init__(
        self,
        tid: Any,
        kind: str,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        latency: float,
        layers: dict[str, float],
    ):
        self.tid = tid
        self.kind = kind
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.latency = latency
        self.layers = layers


def rows_from_observer(observer: Observer) -> list[FlightRow]:
    rows = []
    for rec in observer.flights.completed():
        breakdown = rec.layer_breakdown()
        rows.append(
            FlightRow(
                rec.tid,
                rec.kind,
                rec.src_rank,
                rec.dst_rank,
                rec.tag,
                rec.nbytes,
                rec.latency_us or 0.0,
                breakdown,
            )
        )
    return rows


def rows_from_trace(obj: dict[str, Any]) -> list[FlightRow]:
    """Rebuild flight rows from an exported trace's events.

    Spans are grouped by ``args.flight`` within a run (runs merged into
    one file are distinguished by their pid stripe); begin/end times come
    from the async ``b``/``e`` pair.
    """
    begins: dict[tuple[int, Any], dict[str, Any]] = {}
    ends: dict[tuple[int, Any], float] = {}
    layer_sums: dict[tuple[int, Any], dict[str, float]] = {}
    for ev in obj.get("traceEvents", []):
        ph = ev.get("ph")
        if ph not in ("X", "b", "e"):
            continue
        run = int(ev.get("pid", 0)) // _PID_STRIDE
        if ph in ("b", "e"):
            if ev.get("cat") != "flight":
                continue
            # merged-run exports qualify the async id as "rN:tid"; strip
            # the prefix so it joins with the spans' integer args.flight
            fid = ev.get("id")
            if isinstance(fid, str) and ":" in fid:
                fid = int(fid.rsplit(":", 1)[1])
            key = (run, fid)
            if ph == "b":
                begins[key] = ev
            else:
                ends[key] = float(ev.get("ts", 0.0))
            continue
        args = ev.get("args") or {}
        tid = args.get("flight")
        if tid is None:
            continue
        key = (run, tid)
        sums = layer_sums.setdefault(key, {})
        layer = ev.get("cat", "other")
        sums[layer] = sums.get(layer, 0.0) + float(ev.get("dur", 0.0))

    rows = []
    for key in sorted(begins, key=lambda k: (k[0], str(k[1]))):
        if key not in ends:
            continue  # still-open flight: no latency to tabulate
        ev = begins[key]
        args = ev.get("args") or {}
        latency = ends[key] - float(ev.get("ts", 0.0))
        layers = {name: 0.0 for name in LAYERS}
        layers.update(layer_sums.get(key, {}))
        attributed = sum(v for k, v in layers.items() if k != "total")
        layers["total"] = latency
        layers["unattributed"] = max(0.0, latency - attributed)
        rows.append(
            FlightRow(
                f"{key[0]}.{key[1]}" if key[0] else key[1],
                str(args.get("kind", "?")),
                int(args.get("src", -1)),
                int(args.get("dst", -1)),
                int(args.get("tag", -1)),
                int(args.get("nbytes", 0)),
                latency,
                layers,
            )
        )
    return rows


def render(rows: list[FlightRow], top: int = 5) -> str:
    """The per-layer table plus the top-N slowest messages."""
    lines = []
    n = len(rows)
    lines.append(f"completed messages: {n}")
    if not n:
        return "\n".join(lines)

    lines.append("")
    lines.append("per-layer latency (mean us per message — Fig. 9 decomposition)")
    lines.append(f"  {'layer':<14}{'mean us':>10}{'total us':>12}{'share':>8}")
    mean_total = sum(r.latency for r in rows) / n
    for layer in _ROW_LAYERS:
        total = sum(r.layers.get(layer, 0.0) for r in rows)
        mean = total / n
        share = (mean / mean_total * 100.0) if mean_total else 0.0
        lines.append(f"  {layer:<14}{mean:>10.3f}{total:>12.1f}{share:>7.1f}%")
    lines.append(
        f"  {'total':<14}{mean_total:>10.3f}{sum(r.latency for r in rows):>12.1f}"
        f"{100.0:>7.1f}%"
    )

    lines.append("")
    lines.append(f"top {min(top, n)} slowest messages")
    header = f"  {'flight':<10}{'kind':<7}{'route':<10}{'bytes':>9}{'us':>10}"
    for layer in LAYERS:
        header += f"{layer:>9}"
    lines.append(header)
    slowest = sorted(rows, key=lambda r: (-r.latency, str(r.tid)))[:top]
    for r in slowest:
        line = (
            f"  {str(r.tid):<10}{r.kind:<7}"
            f"{f'{r.src}->{r.dst}':<10}{r.nbytes:>9}{r.latency:>10.2f}"
        )
        for layer in LAYERS:
            line += f"{r.layers.get(layer, 0.0):>9.2f}"
        lines.append(line)
    return "\n".join(lines)


def _demo_app(sizes: list[int], iters: int) -> Any:
    """A two-rank ping-pong covering eager and rendezvous sizes."""

    def app(mpi: Any) -> Any:
        for i, nbytes in enumerate(sizes):
            buf = mpi.alloc(max(nbytes, 1))
            tag = 100 + i
            if mpi.rank == 0:
                for _ in range(iters):
                    yield from mpi.comm_world.send(
                        buf, dest=1, tag=tag, nbytes=nbytes
                    )
                    yield from mpi.comm_world.recv(
                        source=1, tag=tag, nbytes=nbytes
                    )
            else:
                for _ in range(iters):
                    yield from mpi.comm_world.recv(
                        source=0, tag=tag, nbytes=nbytes
                    )
                    yield from mpi.comm_world.send(
                        buf, dest=0, tag=tag, nbytes=nbytes
                    )
        return mpi.now

    return app


def run_demo(
    sizes: list[int] | None = None, iters: int = 4
) -> tuple[Observer, Any]:
    """Run the built-in observed ping-pong; returns (observer, cluster).

    The cluster module is loaded dynamically so this reporting package
    stays import-light (and strictly typed) on its own.
    """
    cluster_mod = importlib.import_module("repro.cluster")
    sizes = sizes if sizes is not None else [8, 1024, 65536]
    with capture() as cap:
        cluster = cluster_mod.Cluster(nodes=2)
        cluster.run_mpi(_demo_app(sizes, iters), np=2)
    observer = cap.observer
    observer.labels["workload"] = f"pingpong sizes={sizes} iters={iters}"
    observer.summarize_cluster(cluster)
    return observer, cluster


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-layer latency table and slowest messages from an "
        "observed run (built-in ping-pong demo when no trace is given).",
    )
    parser.add_argument("trace", nargs="?", help="exported *.trace.json file")
    parser.add_argument("--top", type=int, default=5, help="slowest messages shown")
    parser.add_argument(
        "--export", metavar="BASE", help="demo mode: write BASE.trace.json/.metrics.json"
    )
    args = parser.parse_args(argv)

    if args.trace:
        with open(args.trace) as fh:
            obj = json.load(fh)
        rows = rows_from_trace(obj)
        other = obj.get("otherData", {})
        if other.get("truncated"):
            print("note: recording was truncated (ring-buffer cap); totals are partial")
        print(render(rows, top=args.top))
        return 0

    observer, _cluster = run_demo()
    print("demo: 2-node ping-pong, sizes [8, 1024, 65536] x 4 iterations")
    print(render(rows_from_observer(observer), top=args.top))
    if args.export:
        trace_path, metrics_path = write_run_artifacts([observer], args.export)
        print(f"\nwrote {trace_path} and {metrics_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
