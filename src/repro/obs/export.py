"""Exporters: Chrome/Perfetto trace-event JSON and metrics JSON.

The trace format is the Chrome trace-event "JSON object" flavour
(loadable in ``chrome://tracing`` and Perfetto's legacy importer):

* one **process** (pid) per simulated node, named via ``ph:"M"``
  metadata records;
* one **thread** (tid) per layer inside each node (pml / ptl / nic /
  switch / faults), so a message visually descends the stack;
* flight spans as ``ph:"X"`` complete events (``ts``/``dur`` in
  modelled microseconds) carrying ``args.flight`` — the trace id that
  groups one message's events across nodes;
* a ``ph:"b"``/``ph:"e"`` async pair per message spanning send to recv
  completion;
* fault-injection and reroute marks as ``ph:"i"`` instants;
* ``otherData`` records truncation counters and open-flight counts so a
  capped recording is visibly capped, never silently partial.

All serialisation is ``sort_keys=True`` over deterministically ordered
event lists, so two identical runs export byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.flight import LAYERS
from repro.obs.observer import Observer

__all__ = [
    "TRACK_ORDER",
    "chrome_trace",
    "trace_json",
    "metrics_json",
    "write_run_artifacts",
]

#: tid assignment inside each node's process: stack order, faults last
TRACK_ORDER: dict[str, int] = {layer: i for i, layer in enumerate(LAYERS)}
TRACK_ORDER["faults"] = len(LAYERS)
_OTHER_TRACK = len(LAYERS) + 1

#: pid used for events that carry no node attribution
_GLOBAL_PID = 999

#: pid stride between runs merged into one trace file
_PID_STRIDE = 1000


def _track(layer: str) -> int:
    return TRACK_ORDER.get(layer, _OTHER_TRACK)


def chrome_trace(observer: Observer, pid_base: int = 0) -> dict[str, Any]:
    """Build the Chrome trace-event object for one observed run.

    ``pid_base`` offsets node pids (used when merging several runs into
    one trace file so their process tracks don't collide).
    """
    events: list[dict[str, Any]] = []
    pids_seen: set[int] = set()

    def pid_of(node: int | None, fallback: int) -> int:
        node_id = fallback if node is None else node
        pid = pid_base + node_id
        pids_seen.add(pid)
        return pid

    records = observer.flights.records()
    for rec in records:
        # async pairs match on (cat, id) across the whole file, so merged
        # runs need run-qualified ids to keep their flights distinct
        flight_id: Any = (
            rec.tid if not pid_base else f"r{pid_base // _PID_STRIDE}:{rec.tid}"
        )
        flight_name = (
            f"{rec.kind} {rec.src_rank}->{rec.dst_rank} "
            f"tag={rec.tag} {rec.nbytes}B"
        )
        base_args = {
            "flight": rec.tid,
            "nbytes": rec.nbytes,
            "kind": rec.kind,
            "src": rec.src_rank,
            "dst": rec.dst_rank,
            "tag": rec.tag,
        }
        events.append(
            {
                "ph": "b",
                "cat": "flight",
                "id": flight_id,
                "name": flight_name,
                "pid": pid_of(None, rec.src_rank),
                "tid": _track("pml"),
                "ts": rec.t_begin,
                "args": base_args,
            }
        )
        for ev in rec.events:
            entry: dict[str, Any] = {
                "cat": ev.layer,
                "name": ev.name,
                "pid": pid_of(ev.node, rec.src_rank),
                "tid": _track(ev.layer),
                "ts": ev.ts,
                "args": dict(base_args, **(ev.fields or {})),
            }
            if ev.dur is not None:
                entry["ph"] = "X"
                entry["dur"] = ev.dur
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            events.append(entry)
        if rec.t_end is not None:
            events.append(
                {
                    "ph": "e",
                    "cat": "flight",
                    "id": flight_id,
                    "name": flight_name,
                    "pid": pid_of(None, rec.dst_rank),
                    "tid": _track("pml"),
                    "ts": rec.t_end,
                    "args": base_args,
                }
            )
    for mark in observer.marks:
        events.append(
            {
                "ph": "i",
                "s": "g" if mark.node is None else "t",
                "cat": mark.layer,
                "name": mark.name,
                "pid": pid_of(mark.node, _GLOBAL_PID),
                "tid": _track(mark.layer),
                "ts": mark.ts,
                "args": dict(mark.fields or {}),
            }
        )

    meta: list[dict[str, Any]] = []
    track_names = {v: k for k, v in TRACK_ORDER.items()}
    track_names[_OTHER_TRACK] = "other"
    for pid in sorted(pids_seen):
        node_id = pid - pid_base
        label = "global" if node_id == _GLOBAL_PID else f"node {node_id}"
        if pid_base:
            label = f"run {pid_base // _PID_STRIDE} {label}"
        meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for tid in sorted(track_names):
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track_names[tid]},
                }
            )

    completed = sum(1 for r in records if r.t_end is not None)
    other: dict[str, Any] = {
        "format": "repro.obs chrome-trace v1",
        "sim_end_us": observer.now,
        "flights_recorded": len(records),
        "flights_completed": completed,
        "flights_open": len(records) - completed,
        "flights_dropped": observer.flights.flights_dropped,
        "truncated": observer.flights.flights_dropped > 0,
    }
    if observer.labels:
        other["labels"] = dict(observer.labels)
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def trace_json(observer: Observer) -> str:
    return json.dumps(chrome_trace(observer), sort_keys=True, indent=1)


def metrics_json(observer: Observer) -> str:
    return json.dumps(observer.snapshot(), sort_keys=True, indent=1)


def write_run_artifacts(
    observers: list[Observer],
    basepath: str,
    labels: dict[str, Any] | None = None,
) -> tuple[str, str]:
    """Write ``<base>.trace.json`` and ``<base>.metrics.json``.

    Multiple observers (one per cluster a bench built) merge into a
    single trace with pid-striped process tracks, and a metrics file
    holding one snapshot per run, in creation order.
    """
    trace_path = basepath + ".trace.json"
    metrics_path = basepath + ".metrics.json"
    all_events: list[dict[str, Any]] = []
    other: dict[str, Any] = {"format": "repro.obs chrome-trace v1", "runs": []}
    snapshots: list[dict[str, Any]] = []
    for i, ob in enumerate(observers):
        sub = chrome_trace(ob, pid_base=i * _PID_STRIDE)
        all_events.extend(sub["traceEvents"])
        run_meta = dict(sub["otherData"])
        run_meta["run"] = i
        other["runs"].append(run_meta)
        snapshots.append(ob.snapshot())
    if labels:
        other["labels"] = dict(labels)
    trace = {
        "traceEvents": all_events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }
    with open(trace_path, "w") as fh:
        json.dump(trace, fh, sort_keys=True, indent=1)
        fh.write("\n")
    with open(metrics_path, "w") as fh:
        json.dump(
            {"runs": snapshots, "labels": dict(labels or {})},
            fh,
            sort_keys=True,
            indent=1,
        )
        fh.write("\n")
    return trace_path, metrics_path
