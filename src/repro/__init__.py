"""repro — a simulation-based reproduction of
*Design and Implementation of Open MPI over Quadrics/Elan4*
(Yu, Woodall, Graham, Panda; OSU-CISRC-10/04-TR54 / IPDPS 2005).

The package implements, from scratch and in pure Python:

* a deterministic discrete-event simulation kernel (:mod:`repro.sim`);
* host hardware models — dual CPUs, memory, PCI-X (:mod:`repro.hw`);
* the Quadrics QsNetII/Elan4 network: QDMA, RDMA read/write, Elan events
  (including chained events and the count-event reset race), MMU/E4
  addressing, capabilities/VPIDs, Tport NIC tag matching, Elite-4 fat-tree
  switches (:mod:`repro.elan4`);
* a TCP/IP substrate with sockets and poll/select (:mod:`repro.tcpip`);
* an Open MPI-style run-time environment with dynamic spawn and
  checkpoint/drain (:mod:`repro.rte`);
* the paper's contribution — the Open MPI communication core: PML
  (matching/scheduling/rendezvous) and the PTL framework with PTL/TCP and
  PTL/Elan4 transports (:mod:`repro.core`);
* an MPI-2-flavoured user API with collectives, datatypes, and dynamic
  process management (:mod:`repro.mpi`);
* the MPICH-QsNetII baseline over Tport (:mod:`repro.baselines`);
* a benchmark harness regenerating every figure and table of the paper's
  evaluation (:mod:`repro.bench`).

Quickstart::

    from repro.cluster import Cluster

    cluster = Cluster(nodes=2)

    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.comm_world.send(b"hello", dest=1, tag=0)
        else:
            data, status = yield from mpi.comm_world.recv(source=0, tag=0)
            print(data, "at", mpi.sim.now, "us")

    cluster.run_mpi(app)
"""

from repro.version import __version__

__all__ = ["__version__"]
