"""Host hardware substrate: memory, CPUs, PCI-X bus, nodes.

This package models the paper's testbed hosts — dual-Xeon SuperMicro nodes
with PC2100 DDR memory on a PCI-X 64/133 I/O bus — at the level of detail
the evaluation actually exercises: memcpy costs (inline-data and datatype
experiments, Fig. 7), a two-CPU scheduler with context-switch/wakeup/
interrupt costs (threaded-progress experiments, Table 1), and a shared
bus-master DMA path (every QDMA/RDMA crosses it).
"""

from repro.hw.memory import AddressSpace, Buffer, MemoryError_
from repro.hw.cpu import CondVar, CpuScheduler, HostThread, HostWordEvent, Mutex
from repro.hw.pci import PciBus
from repro.hw.node import Node

__all__ = [
    "AddressSpace",
    "Buffer",
    "CondVar",
    "CpuScheduler",
    "HostThread",
    "HostWordEvent",
    "MemoryError_",
    "Mutex",
    "Node",
    "PciBus",
]
