"""PCI-X 64-bit/133 MHz I/O bus model.

Every byte moved by the NIC crosses this bus twice per end-to-end transfer
(host→NIC on the sender, NIC→host on the receiver), so its ~1064 MB/s peak
is the real bandwidth ceiling of the testbed — the reason the paper's
Fig. 10d tops out near 900 MB/s despite 1.3 GB/s links, and part of why
chained DMA saves little on this platform (§6.2: "PCI-X bus and fast CPU
... also reduce the possible benefits of chained DMA").

The bus serialises bursts: one bus-master transaction at a time, FIFO
arbitration.  PIO writes (doorbells) are small posted writes with a fixed
cost.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import MachineConfig
    from repro.sim.core import Simulator

__all__ = ["PciBus"]

#: largest single bus burst; bigger DMAs are split so concurrent traffic
#: interleaves rather than head-of-line blocking for a whole megabyte.
BURST_BYTES = 4096


class PciBus:
    """One node's I/O bus.  All NIC DMA and host PIO funnels through here."""

    def __init__(self, sim: "Simulator", config: "MachineConfig", name: str = "pci"):
        self.sim = sim
        self.config = config
        self.name = name
        self._bus = Resource(sim, capacity=1, name=name)
        self.bytes_moved = 0
        self.pio_count = 0
        # hoisted for the per-burst loop (config is immutable per run)
        self._us_per_byte = config.pci_us_per_byte
        self._setup_us = config.pci_dma_setup_us

    def pio_write(self) -> Generator:
        """One programmed-IO write (doorbell / command-word store)."""
        yield self._bus.request()
        self.pio_count += 1
        yield self.sim.timeout(self.config.pio_write_us)
        self._bus.release()

    def dma(self, nbytes: int) -> Generator:
        """A bus-master DMA of ``nbytes``, split into arbitration bursts.

        The caller does not say which direction; cost is symmetric.  Returns
        after the last burst completes.
        """
        remaining = max(0, int(nbytes))
        self.bytes_moved += remaining
        bus = self._bus
        if remaining == 0:
            # Zero-byte descriptors still arbitrate once (setup cost).
            yield bus.request()
            yield self.sim.timeout(self._setup_us)
            bus.release()
            return
        if remaining <= BURST_BYTES:
            # Single-burst fast path: the engines split transfers at 4 KB
            # themselves, so nearly every DMA lands here.
            yield bus.request()
            yield self.sim.timeout(remaining * self._us_per_byte + self._setup_us)
            bus.release()
            return
        first = True
        while remaining > 0:
            chunk = min(remaining, BURST_BYTES)
            yield bus.request()
            cost = chunk * self._us_per_byte
            if first:
                cost += self._setup_us
                first = False
            yield self.sim.timeout(cost)
            bus.release()
            remaining -= chunk

    @property
    def queue_length(self) -> int:
        return self._bus.queue_length

    def stats(self) -> dict:
        """Observation-only snapshot of lifetime bus activity."""
        return {
            "bytes_moved": self.bytes_moved,
            "pio_count": self.pio_count,
            "queue_length": self.queue_length,
        }
