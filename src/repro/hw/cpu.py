"""CPU scheduling: simulated threads with real contention costs.

The paper's Table 1 (threaded asynchronous progress) measures artifacts of
the host scheduler — interrupt delivery, thread wakeup, context switches,
and contention when more runnable threads exist than CPUs.  This module
models those mechanics structurally:

* a node has ``cpus_per_node`` CPUs (a counted resource);
* a :class:`HostThread` occupies a CPU while computing, releases it while
  blocked, and pays ``thread_wakeup_us`` + CPU-queueing + context-switch
  cost on every wakeup;
* :class:`Mutex`/:class:`CondVar` carry the locking and signalling costs the
  threaded PML progress path incurs;
* :class:`HostWordEvent` models a *re-settable* host-memory event word — the
  object a Quadrics host event ultimately is — supporting cheap polling,
  blocking waits, and NIC-side ``set`` from interrupt context.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Optional, TYPE_CHECKING

from repro.sim.core import SimError
from repro.sim.events import SimEvent
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import MachineConfig
    from repro.sim.core import Simulator

__all__ = ["CpuScheduler", "HostThread", "HostWordEvent", "Mutex", "CondVar"]


class HostWordEvent:
    """A re-settable event word in host memory.

    Unlike :class:`~repro.sim.events.SimEvent` (one-shot), this models an
    8-byte word the NIC writes and the host polls or blocks on; ``clear()``
    re-arms it.  The Elan event-engine models in :mod:`repro.elan4.event`
    build their host-visible side on this.
    """

    __slots__ = ("sim", "name", "_set", "_value", "_waiters", "set_count", "_wait_name")

    def __init__(self, sim: "Simulator", name: str = "hostword"):
        self.sim = sim
        self.name = name
        self._set = False
        self._value: Any = None
        self._waiters: Deque[SimEvent] = deque()
        self.set_count = 0  # total set() calls, for tests / tracing
        self._wait_name = f"wait:{name}"  # wait_event() runs per poll loop

    def poll(self) -> bool:
        """Non-destructive check (one host-memory read)."""
        return self._set

    def consume(self) -> bool:
        """Check-and-clear in one step (the polling-progress idiom)."""
        if self._set:
            self._set = False
            return True
        return False

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any = None) -> None:
        """Mark the word set and release *all* current waiters."""
        self._set = True
        self._value = value
        self.set_count += 1
        while self._waiters:
            self._waiters.popleft().succeed(value)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def wait_event(self) -> SimEvent:
        """A one-shot event completing when the word is (or becomes) set."""
        ev = SimEvent(self.sim, name=self._wait_name)
        if self._set:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev


class CpuScheduler:
    """The CPUs of one node: a counted resource plus utilisation accounting."""

    def __init__(self, sim: "Simulator", config: "MachineConfig"):
        self.sim = sim
        self.config = config
        self.cpus = Resource(sim, capacity=config.cpus_per_node, name="cpus")
        self.busy_time = 0.0
        self._threads: list["HostThread"] = []

    @property
    def runnable_backlog(self) -> int:
        """Threads waiting for a CPU right now (contention indicator)."""
        return self.cpus.queue_length

    @property
    def threads(self) -> list["HostThread"]:
        return list(self._threads)

    def spawn(
        self,
        fn: Callable[["HostThread"], Generator],
        name: str = "thread",
        daemon: bool = False,
    ) -> "HostThread":
        """Create and start a thread running ``fn(thread)``."""
        t = HostThread(self, fn, name, daemon=daemon)
        self._threads.append(t)
        return t

    def stats(self) -> dict:
        """Observation-only snapshot of scheduler state."""
        return {
            "busy_time_us": self.busy_time,
            "runnable_backlog": self.runnable_backlog,
            "threads": len(self._threads),
            "threads_alive": sum(1 for t in self._threads if t.state != "done"),
        }


class HostThread:
    """A simulated OS thread.

    The body is a generator taking the thread itself; inside it, work and
    blocking are expressed with::

        yield from thread.compute(us)        # occupy a CPU for `us`
        yield from thread.block_on(word)     # sleep until a HostWordEvent
        yield from thread.wait_sim_event(ev) # sleep until a one-shot event
        yield from thread.sleep(us)          # timed sleep (CPU released)

    Scheduling is non-preemptive between yields: a thread keeps its CPU
    across consecutive ``compute`` calls and releases it only when blocking
    — exactly the behaviour that lets a polling MPI process starve a
    progress thread on a busy node, and that makes Table 1's two-thread
    configuration slower than one-thread.
    """

    def __init__(
        self,
        sched: CpuScheduler,
        fn: Callable[["HostThread"], Generator],
        name: str,
        daemon: bool = False,
    ):
        self.sched = sched
        self.sim = sched.sim
        self.config = sched.config
        self.name = name
        self.state = "new"  # new | running | ready | blocked | done
        #: marks threads that wake on every completion (progress threads);
        #: each one inflates every OTHER thread's wakeup cost on this node
        self.busy_waker = False
        self._on_cpu = False
        self._cpu_acquired_at = 0.0
        self.process = self.sim.spawn(
            self._main(fn), name=f"thread:{name}", daemon=daemon
        )

    # -- lifecycle -------------------------------------------------------
    def _main(self, fn: Callable[["HostThread"], Generator]) -> Generator:
        yield from self._acquire_cpu()
        try:
            result = yield from fn(self)
            return result
        finally:
            self._release_cpu()
            self.state = "done"

    @property
    def is_alive(self) -> bool:
        return self.state != "done"

    def join_event(self) -> SimEvent:
        """Event completing when the thread's body returns."""
        return self.process

    # -- CPU occupancy -----------------------------------------------------
    def _acquire_cpu(self) -> Generator:
        if self._on_cpu:
            return
        self.state = "ready"
        req = self.sched.cpus.request()
        try:
            yield req
        except BaseException:
            # Killed while queued for (or just granted) a CPU: withdraw the
            # request, or hand the already-granted unit back — otherwise the
            # slot leaks and the node's other threads starve forever.
            if not self.sched.cpus.cancel(req):
                self.sched.cpus.release()
            raise
        self._on_cpu = True
        self._cpu_acquired_at = self.sim.now
        self.state = "running"
        yield self.sim.timeout(self.config.context_switch_us)

    def _release_cpu(self) -> None:
        if self._on_cpu:
            self.sched.busy_time += self.sim.now - self._cpu_acquired_at
            self._on_cpu = False
            self.sched.cpus.release()

    @property
    def on_cpu(self) -> bool:
        return self._on_cpu

    # -- work ---------------------------------------------------------------
    def compute(self, us: float) -> Generator:
        """Occupy a CPU for ``us`` microseconds of work."""
        if us < 0:
            raise SimError(f"negative compute time {us}")
        yield from self._acquire_cpu()
        if us > 0:
            yield self.sim.timeout(us)

    def yield_cpu(self) -> Generator:
        """Voluntarily relinquish the CPU and immediately recontend.

        Models ``sched_yield`` in a polling loop sharing a node with other
        threads: if nobody else is waiting, the thread resumes immediately
        (paying a context switch); otherwise it queues behind them.
        """
        self._release_cpu()
        yield self.sim.timeout(0.0)
        yield from self._acquire_cpu()

    # -- blocking -------------------------------------------------------------
    def block_on(self, word: HostWordEvent, clear: bool = True) -> Generator:
        """Block until ``word`` is set; optionally clear it on wakeup.

        Fast path: if the word is already set, no blocking occurs and no
        scheduler costs are paid (this is how a lucky blocking receive can
        complete at polling speed).
        """
        if word.poll():
            value = word.value
            if clear:
                word.clear()
            return value
        self._release_cpu()
        self.state = "blocked"
        value = yield word.wait_event()
        yield self.sim.timeout(self._wake_delay())
        yield from self._acquire_cpu()
        if clear:
            word.clear()
        return value

    def wait_sim_event(self, ev: SimEvent) -> Generator:
        """Block until a one-shot event fires (mutex/condvar internals)."""
        if ev.triggered:
            return ev._value
        self._release_cpu()
        self.state = "blocked"
        value = yield ev
        yield self.sim.timeout(self._wake_delay())
        yield from self._acquire_cpu()
        return value

    def sleep(self, us: float) -> Generator:
        """Release the CPU for ``us`` µs, then recontend for it."""
        self._release_cpu()
        self.state = "blocked"
        yield self.sim.timeout(us)
        yield self.sim.timeout(self._wake_delay())
        yield from self._acquire_cpu()

    def _wake_delay(self) -> float:
        """Wakeup latency, inflated by scheduler load: every other live
        busy-waker (progress) thread on the node adds ``sched_load_us``."""
        others = sum(
            1
            for t in self.sched._threads
            if t is not self and t.busy_waker and t.state != "done"
        )
        return self.config.thread_wakeup_us + self.config.sched_load_us * others


class Mutex:
    """A mutual-exclusion lock with uncontended cost ``lock_us``."""

    def __init__(self, sim: "Simulator", config: "MachineConfig", name: str = "mutex"):
        self.sim = sim
        self.config = config
        self.name = name
        self._owner: Optional[HostThread] = None
        self._waiters: Deque[tuple[SimEvent, HostThread]] = deque()

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def acquire(self, thread: HostThread) -> Generator:
        yield from thread.compute(self.config.lock_us)
        if self._owner is None:
            self._owner = thread
            return
        if self._owner is thread:
            raise SimError(f"mutex {self.name!r}: recursive acquire")
        ev = SimEvent(self.sim, name=f"lock:{self.name}")
        self._waiters.append((ev, thread))
        yield from thread.wait_sim_event(ev)
        # ownership transferred by release()

    def release(self, thread: HostThread) -> None:
        if self._owner is not thread:
            raise SimError(f"mutex {self.name!r}: release by non-owner")
        if self._waiters:
            ev, next_thread = self._waiters.popleft()
            self._owner = next_thread
            ev.succeed(None)
        else:
            self._owner = None


class CondVar:
    """A condition variable tied to a :class:`Mutex`.

    ``wait`` atomically releases the mutex and blocks; ``signal`` (from a
    thread) costs ``condvar_signal_us``; ``signal_from_callback`` lets
    non-thread contexts (interrupt handlers, NIC callbacks) wake waiters.
    """

    def __init__(self, sim: "Simulator", config: "MachineConfig", mutex: Mutex, name: str = "cv"):
        self.sim = sim
        self.config = config
        self.mutex = mutex
        self.name = name
        self._waiters: Deque[SimEvent] = deque()

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def wait(self, thread: HostThread) -> Generator:
        if self.mutex._owner is not thread:
            raise SimError(f"condvar {self.name!r}: wait without holding mutex")
        ev = SimEvent(self.sim, name=f"cv:{self.name}")
        self._waiters.append(ev)
        self.mutex.release(thread)
        yield from thread.wait_sim_event(ev)
        yield from self.mutex.acquire(thread)

    def signal(self, thread: HostThread) -> Generator:
        yield from thread.compute(self.config.condvar_signal_us)
        self._wake_one()

    def broadcast(self, thread: HostThread) -> Generator:
        yield from thread.compute(self.config.condvar_signal_us)
        while self._waiters:
            self._wake_one()

    def signal_from_callback(self) -> None:
        self._wake_one()

    def _wake_one(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
