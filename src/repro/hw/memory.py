"""Per-process virtual memory backed by real bytes.

Every MPI process in the simulation owns an :class:`AddressSpace`; message
payloads are genuine ``numpy`` byte arrays moved between spaces by the
simulated NIC, so every benchmark run doubles as an end-to-end data
integrity check.  Addresses are plain integers; the Elan4 MMU
(:mod:`repro.elan4.addr`) maps them into the NIC's E4 address format.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

import numpy as np

__all__ = ["AddressSpace", "Buffer", "MemoryError_"]

PAGE = 4096


class MemoryError_(Exception):
    """Access outside any mapped region (a host segfault / NIC MMU trap)."""


class Buffer:
    """A handle to ``nbytes`` of memory at ``addr`` in one address space."""

    __slots__ = ("space", "addr", "nbytes", "label")

    def __init__(self, space: "AddressSpace", addr: int, nbytes: int, label: str = ""):
        self.space = space
        self.addr = addr
        self.nbytes = nbytes
        self.label = label

    def view(self, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """A mutable numpy view of (a slice of) the buffer."""
        n = self.nbytes - offset if nbytes is None else nbytes
        return self.space.view(self.addr + offset, n)

    def write(self, data, offset: int = 0) -> None:
        self.space.write(self.addr + offset, data)

    def read(self, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        n = self.nbytes - offset if nbytes is None else nbytes
        return self.space.read(self.addr + offset, n)

    def fill(self, value: int) -> None:
        self.view()[:] = value

    def sub(self, offset: int, nbytes: int, label: str = "") -> "Buffer":
        """A sub-buffer aliasing the same bytes (no allocation)."""
        if offset < 0 or offset + nbytes > self.nbytes:
            raise MemoryError_(
                f"sub-buffer [{offset}:{offset + nbytes}] outside {self.nbytes}-byte buffer"
            )
        return Buffer(self.space, self.addr + offset, nbytes, label or self.label)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" {self.label!r}" if self.label else ""
        return f"<Buffer{tag} @{self.addr:#x}+{self.nbytes} in {self.space.name}>"


class AddressSpace:
    """A page-granular bump allocator over numpy-backed regions.

    ``alloc`` returns :class:`Buffer` handles; ``read``/``write``/``view``
    address bytes anywhere inside a mapped region.  Cross-region accesses
    raise :class:`MemoryError_` — the same behaviour a dangling RDMA
    descriptor would provoke through the Elan4 MMU.
    """

    def __init__(self, name: str = "", base: int = 0x10000):
        self.name = name
        self._next = base
        self._bases: List[int] = []  # sorted region base addresses
        self._regions: Dict[int, np.ndarray] = {}
        self.allocated_bytes = 0
        # last-hit cache: chunked engines touch one region per fragment, so
        # consecutive accesses almost always land in the same region.
        self._hit_base = -1
        self._hit_region: "np.ndarray | None" = None

    # -- allocation ----------------------------------------------------
    def alloc(self, nbytes: int, label: str = "") -> Buffer:
        if nbytes <= 0:
            raise MemoryError_(f"alloc of {nbytes} bytes")
        size = (nbytes + PAGE - 1) // PAGE * PAGE
        addr = self._next
        self._next += size + PAGE  # guard page between regions
        region = np.zeros(size, dtype=np.uint8)
        bisect.insort(self._bases, addr)
        self._regions[addr] = region
        self.allocated_bytes += size
        return Buffer(self, addr, nbytes, label)

    def free(self, buf: Buffer) -> None:
        """Unmap the region containing ``buf`` (must be region-initial)."""
        region = self._regions.pop(buf.addr, None)
        if region is None:
            raise MemoryError_(f"free of non-region address {buf.addr:#x}")
        self._bases.remove(buf.addr)
        self.allocated_bytes -= region.nbytes
        self._hit_base = -1
        self._hit_region = None

    # -- access --------------------------------------------------------
    def _locate(self, addr: int, nbytes: int) -> tuple[np.ndarray, int]:
        base = self._hit_base
        if base >= 0:
            off = addr - base
            region = self._hit_region
            if 0 <= off and off + nbytes <= region.nbytes:
                return region, off
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            base = self._bases[i]
            region = self._regions[base]
            off = addr - base
            if off + nbytes <= region.nbytes:
                self._hit_base = base
                self._hit_region = region
                return region, off
        raise MemoryError_(
            f"{self.name}: access [{addr:#x}, +{nbytes}) outside mapped memory"
        )

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        region, off = self._locate(addr, nbytes)
        return region[off : off + nbytes]

    def read(self, addr: int, nbytes: int) -> np.ndarray:
        """A *copy* of the bytes (safe to hold across later writes)."""
        return self.view(addr, nbytes).copy()

    def write(self, addr: int, data) -> None:
        arr = np.asarray(data, dtype=np.uint8).ravel()
        self.view(addr, arr.nbytes)[:] = arr

    def is_mapped(self, addr: int, nbytes: int = 1) -> bool:
        try:
            self._locate(addr, nbytes)
            return True
        except MemoryError_:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AddressSpace {self.name!r}: {len(self._regions)} regions, {self.allocated_bytes} B>"
