"""A compute node: CPUs + memory + I/O bus + interrupt delivery.

Each of the paper's eight SuperMicro nodes is one :class:`Node`.  NICs
(:class:`repro.elan4.nic.Elan4Nic`) attach to a node's PCI bus and deliver
interrupts through :meth:`Node.raise_interrupt`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.hw.cpu import CpuScheduler, HostWordEvent
from repro.hw.memory import AddressSpace, Buffer
from repro.hw.pci import PciBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import MachineConfig
    from repro.sim.core import Simulator

__all__ = ["Node"]


class Node:
    """One host in the cluster."""

    def __init__(self, sim: "Simulator", config: "MachineConfig", node_id: int):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.scheduler = CpuScheduler(sim, config)
        self.pci = PciBus(sim, config, name=f"pci{node_id}")
        self.interrupts_delivered = 0
        #: attached devices, keyed by name (e.g. "elan4")
        self.devices: dict[str, Any] = {}

    def new_address_space(self, name: str) -> AddressSpace:
        """A fresh virtual address space for a process on this node."""
        return AddressSpace(name=f"n{self.node_id}:{name}")

    def spawn_thread(self, fn, name: str = "thread", daemon: bool = False):
        """Start a host thread on this node's CPUs.  ``daemon`` marks
        server loops that legitimately block forever (see
        :meth:`repro.sim.core.Simulator.spawn`)."""
        return self.scheduler.spawn(fn, name=f"n{self.node_id}:{name}", daemon=daemon)

    def raise_interrupt(self, word: HostWordEvent, value: Any = None) -> None:
        """Deliver a hardware interrupt: after ``interrupt_us`` (IRQ entry,
        kernel handler, softirq dispatch) the event word is set, waking any
        blocked thread.  The paper measures this path at ≈10 µs (§6.4)."""
        self.interrupts_delivered += 1
        self.sim.schedule(self.config.interrupt_us, word.set, value)

    def memcpy(self, thread, dst: Buffer, src: Buffer, nbytes: Optional[int] = None) -> Generator:
        """Host-CPU copy of ``nbytes`` from ``src`` to ``dst`` (charged to
        ``thread``).  Used by the eager/inline send path and by the
        datatype engine's unpack."""
        n = min(len(src), len(dst)) if nbytes is None else nbytes
        yield from thread.compute(self.config.memcpy_us(n))
        dst.write(src.read(0, n))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id}>"
