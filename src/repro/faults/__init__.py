"""Deterministic fault campaigns against the simulated QsNetII stack.

A *campaign* is a seeded, replayable schedule of fabric/NIC/node faults
(:class:`~repro.faults.plan.FaultPlan`) that an injector
(:class:`~repro.faults.injector.FaultInjector`) arms against a live
cluster.  Because the simulator is a deterministic discrete-event engine
and every random choice flows from the campaign seed, the same plan run
against the same workload produces the *identical* event trace — failures
become regression tests instead of flaky repro hunts.

The recovery paths a campaign exercises map onto the paper's layers:

* fat-tree reroute around dead switches/links (the QsNetII adaptive
  routing the paper's testbed relies on);
* the LA-MPI-style end-to-end retransmission of §3 (queue fragments);
* the rendezvous RDMA completion watchdog (host re-issue of stalled
  pulls);
* PML-level failover of in-flight traffic onto a surviving PTL — second
  rail or TCP — when a whole channel is presumed dead.
"""

from repro.faults.plan import FaultEvent, FaultPlan, random_campaign
from repro.faults.injector import FaultInjector

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "random_campaign"]
