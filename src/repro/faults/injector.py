"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector schedules one simulator callback per fault event, applies
the fault against the right layer (topology, fabric, NIC, or PML), and
records an append-only ``trace`` of ``(time, kind, description)`` tuples.
Because the simulator is deterministic and all randomness is seeded, two
runs of the same plan against the same workload produce identical traces
— the determinism contract the campaign tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.ptl.base import PtlError
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a campaign's events to ``cluster`` (and, for PML-visible
    faults such as ``rail_down``, to the processes of ``job``)."""

    def __init__(self, cluster, plan: FaultPlan, job=None):
        self.cluster = cluster
        self.plan = plan
        self.job = job
        self.sim = cluster.sim
        self.trace: List[Tuple[float, str, str]] = []
        self.armed = False

    # -- scheduling ----------------------------------------------------------
    def arm(self) -> None:
        """Schedule every event of the plan; call once, before ``sim.run``
        (events already in the past raise, as they would in hardware)."""
        if self.armed:
            raise RuntimeError("campaign already armed")
        self.armed = True
        for i, event in enumerate(self.plan.events):
            self.sim.schedule(event.at_us - self.sim.now, self._apply, event, i)

    # -- application ---------------------------------------------------------
    def _apply(self, event: FaultEvent, index: int) -> None:
        handler = getattr(self, f"_do_{event.kind}")
        handler(event, index)
        self._note(event.kind, event.describe())

    def _note(self, kind: str, text: str) -> None:
        self.trace.append((self.sim.now, kind, text))
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.count(f"fault.{kind}")
        obs = getattr(self.cluster, "observer", None)
        if obs is not None:
            obs.count("faults", kind)
            obs.instant("faults", kind, detail=text)

    def _topology(self, event: FaultEvent):
        return self.cluster.rail_topologies[event.rail]

    def _fabric(self, event: FaultEvent):
        return self.cluster.rail_fabrics[event.rail]

    def _do_switch_death(self, event: FaultEvent, index: int) -> None:
        topo = self._topology(event)
        topo.fail_switch(event.target)
        if event.duration_us > 0:
            def restore() -> None:
                topo.restore_switch(event.target)
                self._note("switch_restore", f"switch_restore target={event.target}")
            self.sim.schedule(event.duration_us, restore)

    def _do_link_flap(self, event: FaultEvent, index: int) -> None:
        topo = self._topology(event)
        a, b = event.target
        topo.fail_link(a, b)
        if event.duration_us > 0:
            def restore() -> None:
                topo.restore_link(a, b)
                self._note("link_restore", f"link_restore target=({a}, {b})")
            self.sim.schedule(event.duration_us, restore)

    def _do_partition_node(self, event: FaultEvent, index: int) -> None:
        topo = self._topology(event)
        topo.fail_leaf(event.target)
        if event.duration_us > 0:
            def restore() -> None:
                topo.restore_leaf(event.target)
                self._note("node_rejoin", f"node_rejoin target={event.target}")
            self.sim.schedule(event.duration_us, restore)

    def _do_nic_stall(self, event: FaultEvent, index: int) -> None:
        nic = self.cluster.rail_nics[event.rail][event.target]
        nic.stall()
        if event.duration_us > 0:
            def resume() -> None:
                nic.resume()
                self._note("nic_resume", f"nic_resume target={event.target}")
            self.sim.schedule(event.duration_us, resume)

    def _do_rail_down(self, event: FaultEvent, index: int) -> None:
        fabric = self._fabric(event)
        fabric.down = True
        if self.job is None:
            return
        # the NIC driver diagnoses the dead rail; the PML reroutes traffic
        error = PtlError(f"elan4 rail {event.rail} is down (fabric fault)")
        for proc in self.job.processes.values():
            pml = getattr(getattr(proc, "stack", None), "pml", None)
            if pml is None:
                continue
            for module in pml.modules:
                if (
                    module.name.startswith("elan4")
                    and getattr(module, "rail", None) == event.rail
                ):
                    pml.rail_failed(module, error)

    def _do_proc_kill(self, event: FaultEvent, index: int) -> None:
        if self.job is None:
            raise RuntimeError("proc_kill requires an injector armed with a job")
        rank = event.target
        proc = self.job.processes.get(rank)
        if proc is None or proc.finished:
            return  # already gone — killing a corpse is a no-op
        ft = getattr(self.job, "ft", None)
        if ft is not None:
            # ground truth for the detection-latency metric: the daemon can
            # only *observe* the death later, via heartbeat silence
            ft.note_kill(rank, self.sim.now)
        proc.kill(cause=f"fault campaign {self.plan.name!r}")

    def _ib_fabric(self, event: FaultEvent):
        fabrics = getattr(self.cluster, "ib_fabrics", [])
        if event.rail >= len(fabrics):
            raise RuntimeError(f"no ib rail {event.rail} on this cluster")
        return fabrics[event.rail]

    def _do_ib_port_down(self, event: FaultEvent, index: int) -> None:
        nic = self.cluster.ib_nics[event.rail][event.target]
        nic.set_port_down(True)
        if event.duration_us > 0:
            def restore() -> None:
                nic.set_port_down(False)
                self._note("ib_port_up", f"ib_port_up target={event.target}")
            self.sim.schedule(event.duration_us, restore)
        if self.job is None:
            return
        # the HCA driver on that node sees the dead port; its PML reroutes
        error = PtlError(f"ib port on node {event.target} is down")
        for proc in self.job.processes.values():
            if proc.node.node_id != event.target:
                continue
            pml = getattr(getattr(proc, "stack", None), "pml", None)
            if pml is None:
                continue
            for module in pml.modules:
                if module.name == "ib" and getattr(module, "nic", None) is nic:
                    pml.rail_failed(module, error)

    def _do_pfc_storm(self, event: FaultEvent, index: int) -> None:
        fabric = self._ib_fabric(event)
        for sw in fabric.switches:
            if sw.name == event.target:
                sw.force_pause(event.duration_us or 100.0)
                return
        raise RuntimeError(f"no IB switch {event.target!r} on rail {event.rail}")

    def _do_packet_loss(self, event: FaultEvent, index: int) -> None:
        self._fabric(event).set_loss(event.param, seed=self.plan.seed * 1000 + index)

    def _do_packet_corruption(self, event: FaultEvent, index: int) -> None:
        self._fabric(event).set_corruption(
            event.param, seed=self.plan.seed * 1000 + index
        )

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Recovery-path counters aggregated across rails and processes —
        the campaign's evidence of *how* the run survived."""
        out: Dict[str, Any] = {
            "faults_applied": len(self.trace),
            "reroutes": sum(t.reroutes for t in self.cluster.rail_topologies),
            "packets_lost": sum(f.packets_lost for f in self.cluster.rail_fabrics),
            "packets_corrupted": sum(
                f.packets_corrupted for f in self.cluster.rail_fabrics
            ),
            "packets_unroutable": sum(
                f.packets_unroutable for f in self.cluster.rail_fabrics
            ),
            "retransmissions": 0,
            "duplicates_dropped": 0,
            "window_drops": 0,
            "abandoned_fragments": 0,
            "rdma_retries": 0,
            "stale_controls": 0,
            "failovers": 0,
            "dead_peers": 0,
        }
        if self.job is not None:
            for proc in self.job.processes.values():
                pml = getattr(getattr(proc, "stack", None), "pml", None)
                if pml is None:
                    continue
                out["failovers"] += pml.failovers
                out["dead_peers"] += len(pml.dead_peers)
                out["duplicates_dropped"] += pml.matching.duplicates_dropped
                for module in pml.modules:
                    out["rdma_retries"] += getattr(module, "rdma_retries", 0)
                    out["stale_controls"] += getattr(module, "stale_controls", 0)
                    ch = getattr(module, "reliable", None)
                    if ch is not None:
                        out["retransmissions"] += ch.retransmissions
                        out["duplicates_dropped"] += ch.duplicates_dropped
                        out["window_drops"] += ch.window_drops
                        out["abandoned_fragments"] += ch.abandoned_fragments
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            out["tracer"] = {
                k: v
                for k, v in sorted(tracer.counters.items())
                if k.startswith(("fault.", "fabric.", "pml.", "ptl."))
            }
        return out
