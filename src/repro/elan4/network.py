"""The QsNetII fabric: packets, injection links, routing latency.

The fabric moves :class:`Packet` objects between NICs.  Costs:

* **injection serialisation** — each NIC has one transmit link; packets
  from the same NIC serialise at ``link_us_per_byte`` (~1.3 GB/s), which is
  what pipelined transfers contend for;
* **routing** — ``hops × (switch_hop_us + wire_prop_us)`` from the fat-tree
  topology;
* **in-order delivery** — QsNet guarantees point-to-point ordering; the
  single tx link plus deterministic routing preserves it here, and a strict
  per-(src,dst) sequence check enforces it at delivery time (the PTL's
  FIN-after-data correctness depends on this, §4.2).

Reception-side costs (DMA into host queues) are charged by the receiving
NIC's engines, not here.

Routing takes one of two wall-clock paths with identical modelled time: the
**coalesced** path (healthy fabric, default) charges all hop transits at
injection and moves the packet with a single analytically-summed delivery
event, while the **detailed** path (faulty topology, hop coalescing off, or
``REPRO_SIM_SLOWPATH=1``) additionally schedules one observation event per
Elite-4 hop at its traversal time.  The delivery event itself is scheduled
the same way in both modes, so arrival times and event ordering never
depend on which path ran.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.core import slowpath_enabled
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import MachineConfig
    from repro.elan4.fattree import Topology
    from repro.sim.core import Simulator

__all__ = ["Packet", "Fabric", "FabricError"]


class FabricError(Exception):
    """Misrouted packet, unattached NIC, partition, or ordering violation."""


@dataclass
class Packet:
    """One network transaction between NICs.

    ``nbytes`` is the wire footprint (headers included); ``data`` optionally
    carries real payload bytes so receivers can verify integrity; ``kind``
    selects the receive handler on the destination NIC; ``meta`` is the
    handler's arguments.
    """

    src_node: int
    dst_node: int
    nbytes: int
    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    data: Optional[np.ndarray] = None
    seq: int = -1  # stamped by the fabric

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet {self.kind} n{self.src_node}->n{self.dst_node} "
            f"{self.nbytes}B seq={self.seq}>"
        )


class Fabric:
    """The interconnect: attach NICs, transmit packets."""

    #: per-packet wire framing overhead (route/CRC flits)
    FRAME_BYTES = 8

    #: packet kinds with a recovery path above the link layer even without
    #: the queue reliability protocol (rendezvous read watchdog re-issues)
    RECOVERABLE_KINDS = frozenset({"rdma_read_req", "rdma_read_data"})

    def __init__(self, sim: "Simulator", config: "MachineConfig", topology: "Topology"):
        self.sim = sim
        self.config = config
        self.topology = topology
        self._nics: Dict[int, Any] = {}
        self._tx_links: Dict[int, Resource] = {}
        self._tx_seq = itertools.count()
        self._last_delivered: Dict[tuple, int] = {}
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self._loss_rate = 0.0
        self._loss_rng = None
        self.packets_lost = 0
        self._corrupt_rate = 0.0
        self._corrupt_rng = None
        self.packets_corrupted = 0
        self.packets_unroutable = 0
        #: per-(src,dst) latest scheduled arrival; reroutes may only shorten a
        #: path, so delivery times are clamped monotonic to keep in-order
        self._arrival_horizon: Dict[tuple, float] = {}
        #: a dead rail swallows everything after injection (power loss)
        self.down = False
        self.tracer = None  # wired by the Cluster
        self.obs = None  # observability hook, wired by the Cluster
        # -- fast-path switches (wall-clock only; modelled time and event
        # ordering are identical on every path, see DESIGN.md §"Performance
        # model of the model") -------------------------------------------
        slow = slowpath_enabled()
        #: healthy+coalescing packets take one summed delivery event; when
        #: off (or while the topology is faulty) each Elite-4 hop gets an
        #: observation event at its traversal time
        self.hop_coalescing = config.fabric_hop_coalescing and not slow
        self._route_cache = config.fabric_route_cache and not slow
        self._link_us = config.link_us_per_byte
        self._hop_us = config.switch_hop_us + config.wire_prop_us
        self.hop_transits = 0  # per-hop events taken (detailed mode only)
        self._tx_names: Dict[str, str] = {}  # kind -> "tx:<kind>" (per packet)

    # -- attachment ------------------------------------------------------
    def attach(self, nic) -> None:
        node_id = nic.node_id
        if node_id in self._nics:
            raise FabricError(f"node {node_id} already has an attached NIC")
        if node_id >= self.topology.n_leaves:
            raise FabricError(
                f"node {node_id} outside topology of {self.topology.n_leaves} leaves"
            )
        self._nics[node_id] = nic
        self._tx_links[node_id] = Resource(self.sim, 1, name=f"txlink{node_id}")

    def nic(self, node_id: int):
        nic = self._nics.get(node_id)
        if nic is None:
            raise FabricError(f"no NIC attached at node {node_id}")
        return nic

    # -- transmission ------------------------------------------------------
    def transmit(self, packet: Packet):
        """Coroutine: inject ``packet`` and return once it is *on the wire*
        (injection link released).  Delivery to the remote NIC happens
        asynchronously after the routing latency; point-to-point order is
        preserved because each source drains through one link and one path.
        """
        if packet.dst_node not in self._nics:
            raise FabricError(f"transmit to unattached node {packet.dst_node}")
        link = self._tx_links.get(packet.src_node)
        if link is None:
            raise FabricError(f"transmit from unattached node {packet.src_node}")
        if self.obs is not None and packet.meta.get("obs_tid") is not None:
            # injection timestamp rides the packet so _deliver can record
            # the wire span (link contention + serialisation + hops)
            packet.meta["obs_tx"] = self.sim.now
        wire_bytes = packet.nbytes + self.FRAME_BYTES
        yield link.request()
        yield self.sim.timeout(wire_bytes * self._link_us)
        link.release()
        # seq is assigned at *wire* time, not coroutine start: broadcast
        # replication stamps its copies after serialising, so a p2p packet
        # that grabbed a seq early but then queued behind the broadcast on
        # the injection link would otherwise carry an inverted seq
        packet.seq = next(self._tx_seq)
        if self.down:
            self.packets_lost += 1
            if self.tracer is not None:
                self.tracer.count("fabric.rail_down_drop")
            if self.obs is not None:
                self.obs.count("faults", "fabric.rail_down_drop")
                self.obs.flight_instant(
                    packet.meta.get("obs_tid"),
                    "switch",
                    "rail_down_drop",
                    node=packet.src_node,
                )
            if self.sim.trace is not None:
                self.sim.trace.append((self.sim.now, "rail_down_drop", packet.kind,
                                       packet.src_node, packet.dst_node, packet.seq))
            return
        info = self._route_info(packet.src_node, packet.dst_node)
        if info is None:
            # truly partitioned: recoverable traffic (reliability-tracked or
            # watchdog-covered RDMA reads) is dropped and accounted; anything
            # else has no recovery story, so fail loudly
            if packet.meta.get("droppable") or packet.kind in self.RECOVERABLE_KINDS:
                self.packets_unroutable += 1
                if self.tracer is not None:
                    self.tracer.count("fabric.unroutable")
                if self.obs is not None:
                    self.obs.count("faults", "fabric.unroutable")
                    self.obs.flight_instant(
                        packet.meta.get("obs_tid"),
                        "switch",
                        "unroutable",
                        node=packet.src_node,
                    )
                if self.sim.trace is not None:
                    self.sim.trace.append((self.sim.now, "unroutable", packet.kind,
                                           packet.src_node, packet.dst_node, packet.seq))
                return
            raise FabricError(
                f"node {packet.dst_node} unreachable from node "
                f"{packet.src_node}: fabric partitioned"
            )
        hops, switches = info
        if self.hop_coalescing and not self.topology.faulty:
            # Coalesced: charge every transit at injection; one summed
            # delivery event carries the packet end to end.
            for sw in switches:
                sw.packets_routed += 1
        else:
            # Detailed: one observation event per Elite-4 hop at its
            # traversal time.  These are bookkeeping-only (counters, trace);
            # the delivery event below is scheduled identically in both
            # modes, so modelled arrival time and event ordering never
            # depend on the mode.
            self._schedule_hop_transits(switches)
        deliver_at = self.sim.now + hops * self._hop_us
        key = (packet.src_node, packet.dst_node)
        horizon = self._arrival_horizon.get(key, 0.0)
        if deliver_at < horizon:
            deliver_at = horizon
        self._arrival_horizon[key] = deliver_at
        self.sim.schedule(deliver_at - self.sim.now, self._deliver, packet)

    def _route_info(self, src: int, dst: int) -> Optional[tuple]:
        """``(hops, switch objects)`` for the healthy route, or None."""
        if self._route_cache:
            return self.topology.route_fast(src, dst)
        interior = self.topology.route(src, dst)
        if interior is None:
            return None
        return (len(interior), tuple(self.topology.switches[n] for n in interior))

    def _schedule_hop_transits(self, switches: tuple) -> None:
        offset = 0.0
        for sw in switches:
            offset += self._hop_us
            self.sim.schedule_pooled(offset, self._hop_transit, (sw,))

    def _hop_transit(self, sw) -> None:
        sw.packets_routed += 1
        self.hop_transits += 1
        if self.tracer is not None:
            self.tracer.count("fabric.hop_transit")

    def broadcast(self, packet: Packet, dst_nodes):
        """Coroutine: hardware broadcast — serialise once at the source
        injection link, then the switches replicate to every node in
        ``dst_nodes`` (including the source's own NIC if listed).  This is
        the single-injection property that makes Elan hardware collectives
        fast; contrast with a software tree's ⌈log n⌉ serial sends."""
        link = self._tx_links.get(packet.src_node)
        if link is None:
            raise FabricError(f"broadcast from unattached node {packet.src_node}")
        wire_bytes = packet.nbytes + self.FRAME_BYTES
        yield link.request()
        yield self.sim.timeout(wire_bytes * self.config.link_us_per_byte)
        link.release()
        for dst in dst_nodes:
            if dst not in self._nics:
                raise FabricError(f"broadcast to unattached node {dst}")
            copy = Packet(
                src_node=packet.src_node,
                dst_node=dst,
                nbytes=packet.nbytes,
                kind=packet.kind,
                meta=dict(packet.meta),
                data=packet.data,
            )
            copy.seq = next(self._tx_seq)
            hops = self.topology.hops(packet.src_node, dst)
            # replicated copies honour the same per-pair arrival horizon as
            # point-to-point traffic: a reroute (switch death/restore) can
            # shorten the path mid-window, and an unclamped copy would
            # overtake earlier packets still in flight on the longer route
            deliver_at = self.sim.now + hops * self._hop_us
            key = (packet.src_node, dst)
            horizon = self._arrival_horizon.get(key, 0.0)
            if deliver_at < horizon:
                deliver_at = horizon
            self._arrival_horizon[key] = deliver_at
            self.sim.schedule(deliver_at - self.sim.now, self._deliver, copy)

    def transmit_from_nic(self, packet: Packet) -> None:
        """Callback-style injection used by NIC engines (fire and forget)."""
        kind = packet.kind
        name = self._tx_names.get(kind)
        if name is None:
            name = self._tx_names[kind] = f"tx:{kind}"
        self.sim.spawn(self.transmit(packet), name=name)

    def set_loss(self, rate: float, seed: int = 0) -> None:
        """Fault injection: drop each ``droppable``-marked packet with
        probability ``rate`` (deterministic, seeded).  Only traffic under
        the end-to-end reliability protocol marks itself droppable — the
        base QsNet link layer is lossless (CRC + link-level retry)."""
        if not 0.0 <= rate < 1.0:
            raise FabricError(f"loss rate {rate} outside [0, 1)")
        self._loss_rate = rate
        self._loss_rng = np.random.default_rng(seed)

    def set_corruption(self, rate: float, seed: int = 0) -> None:
        """Fault injection: corrupt packets in flight with probability
        ``rate``.  A corrupted packet fails its CRC and is discarded by the
        receiving switch, so this behaves like loss — but it also applies to
        the RDMA read request/data path, whose recovery is the rendezvous
        completion watchdog rather than the queue reliability protocol."""
        if not 0.0 <= rate < 1.0:
            raise FabricError(f"corruption rate {rate} outside [0, 1)")
        self._corrupt_rate = rate
        self._corrupt_rng = np.random.default_rng(seed)

    def _deliver(self, packet: Packet) -> None:
        trace = self.sim.trace
        if self.down:
            self.packets_lost += 1
            if trace is not None:
                trace.append((self.sim.now, "rail_down_drop", packet.kind,
                              packet.src_node, packet.dst_node, packet.seq))
            return
        if (
            self._loss_rate > 0.0
            and packet.meta.get("droppable")
            and self._loss_rng.random() < self._loss_rate
        ):
            self.packets_lost += 1
            if trace is not None:
                trace.append((self.sim.now, "loss", packet.kind,
                              packet.src_node, packet.dst_node, packet.seq))
            if self.obs is not None:
                self.obs.count("faults", "fabric.packet_loss")
                self.obs.flight_instant(
                    packet.meta.get("obs_tid"),
                    "switch",
                    "packet_loss",
                    node=packet.dst_node,
                )
            return
        if (
            self._corrupt_rate > 0.0
            and (packet.meta.get("droppable") or packet.kind in self.RECOVERABLE_KINDS)
            and self._corrupt_rng.random() < self._corrupt_rate
        ):
            self.packets_corrupted += 1
            if self.tracer is not None:
                self.tracer.count("fabric.corrupted")
            if self.obs is not None:
                self.obs.count("faults", "fabric.packet_corrupt")
                self.obs.flight_instant(
                    packet.meta.get("obs_tid"),
                    "switch",
                    "packet_corrupt",
                    node=packet.dst_node,
                )
            if trace is not None:
                trace.append((self.sim.now, "corrupt", packet.kind,
                              packet.src_node, packet.dst_node, packet.seq))
            return
        key = (packet.src_node, packet.dst_node)
        last = self._last_delivered.get(key, -1)
        if packet.seq <= last:
            raise FabricError(f"ordering violation on {key}: {packet}")
        self._last_delivered[key] = packet.seq
        self.packets_delivered += 1
        self.bytes_delivered += packet.nbytes
        if self.obs is not None:
            t_inject = packet.meta.pop("obs_tx", None)
            if t_inject is not None:
                # the fabric leg of the flight: injection-link contention,
                # serialisation, and every switch hop to the remote NIC
                self.obs.flight_span(
                    packet.meta.get("obs_tid"),
                    "switch",
                    "wire",
                    t_inject,
                    node=packet.dst_node,
                    nbytes=packet.nbytes,
                )
        if trace is not None:
            trace.append((self.sim.now, "deliver", packet.kind, packet.src_node,
                          packet.dst_node, packet.nbytes, packet.seq))
        self._nics[packet.dst_node].receive(packet)
