"""Tport: NIC-based tag matching (the substrate of MPICH-QsNetII).

The paper's comparator, MPICH-QsNetII, "is built on top of Quadrics T-port
interface, which does tag matching in the NIC" (§6.5).  The PTL design
deliberately does *not* use Tport — Open MPI needs shared host-side request
queues so multiple networks can crosstalk — and pays for that with slightly
higher small-message latency and weaker mid-range pipelining, which is
exactly the Fig. 10 story.  To reproduce that comparison we implement Tport
itself:

* posted-receive and unexpected tables live **in the NIC**; matching costs
  ``nic_match_us`` with zero host involvement;
* eager messages (≤ :data:`TPORT_EAGER_BYTES`) are deposited directly into
  the matched user buffer — no bounce through a host queue slot;
* longer messages use a NIC-side rendezvous: an RTS carrying the source's
  E4 address; the matching NIC pulls the data with pipelined gets and fires
  both completion events, with per-fragment costs paid only on the NIC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING
from collections import deque

import numpy as np

from repro.elan4.addr import E4Addr
from repro.elan4.event import ChainOp, ElanEvent
from repro.elan4.network import Packet
from repro.elan4.rdma import RdmaDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.elan4.nic import Elan4Context, Elan4Nic
    from repro.hw.memory import Buffer

__all__ = ["TportEngine", "TportEndpoint", "TportMessage", "ANY_TAG", "ANY_SOURCE"]

ANY_TAG = -1
ANY_SOURCE = -1

#: eager/rendezvous switch of the Tport transport
TPORT_EAGER_BYTES = 4096


@dataclass
class TportMessage:
    """Completion record handed to the receiver."""

    src_vpid: int
    tag: int
    nbytes: int


@dataclass
class _PostedRecv:
    src_vpid: int
    tag: int
    buffer: "Buffer"
    done: ElanEvent

    def matches(self, src_vpid: int, tag: int) -> bool:
        return (self.src_vpid in (ANY_SOURCE, src_vpid)) and (
            self.tag in (ANY_TAG, tag)
        )


@dataclass
class _Unexpected:
    src_vpid: int
    tag: int
    nbytes: int
    data: Optional[np.ndarray]  # eager payload held in NIC memory
    rts_meta: Optional[Dict[str, Any]]  # rendezvous source descriptor


class TportEndpoint:
    """Per-process Tport handle (host-side API)."""

    def __init__(self, context: "Elan4Context"):
        self.context = context
        self.nic = context.nic
        self.engine: TportEngine = self.nic.tport
        self.engine.register(context.ctx)

    @property
    def vpid(self) -> int:
        return self.context.vpid

    def send(self, thread, dst_vpid: int, tag: int, buf: "Buffer", nbytes: int) -> Generator:
        """Coroutine: issue a tagged send.  Returns an event firing when the
        source buffer is reusable (eager: payload fetched; rendezvous: data
        pulled and FIN received)."""
        return (yield from self.engine.host_send(
            thread, self.context, dst_vpid, tag, buf, nbytes
        ))

    def post_recv(self, thread, src_vpid: int, tag: int, buf: "Buffer") -> Generator:
        """Coroutine: post a tagged receive into NIC matching.  Returns an
        event whose value is a :class:`TportMessage` when data has landed."""
        return (yield from self.engine.host_post_recv(
            thread, self.context, src_vpid, tag, buf
        ))


class TportEngine:
    """The NIC-resident matching machinery."""

    def __init__(self, nic: "Elan4Nic"):
        self.nic = nic
        self.sim = nic.sim
        self.config = nic.config
        self._posted: Dict[int, List[_PostedRecv]] = {}
        self._unexpected: Dict[int, Deque[_Unexpected]] = {}
        #: send_id -> (completion event, owning context, RTS source
        #: mapping); the mapping is dropped when the FIN retires the send
        self._send_done: Dict[int, Tuple[ElanEvent, "Elan4Context", E4Addr]] = {}
        self._send_ids = itertools.count()
        self.matches = 0
        self.unexpected_hits = 0

    def register(self, ctx: int) -> None:
        self._posted.setdefault(ctx, [])
        self._unexpected.setdefault(ctx, deque())

    # -- host-side operations --------------------------------------------
    def host_send(
        self, thread, context, dst_vpid: int, tag: int, buf: "Buffer", nbytes: int
    ) -> Generator:
        done = ElanEvent(self.nic, count=1, name=f"tport-send@{context.vpid}")
        yield from self.nic.pci.pio_write()
        if nbytes <= TPORT_EAGER_BYTES:
            self.sim.schedule(
                self.config.nic_cmd_process_us,
                self._nic_send_eager,
                context,
                dst_vpid,
                tag,
                buf,
                nbytes,
                done,
            )
        else:
            send_id = next(self._send_ids)
            src_e4 = context.map_buffer(buf.sub(0, nbytes))
            # the pending-send table owns the mapping from here: it is
            # unmapped when the receiver's FIN retires the send_id
            self._send_done[send_id] = (done, context, src_e4)
            self.sim.schedule(
                self.config.nic_cmd_process_us,
                self._nic_send_rts,
                context,
                dst_vpid,
                tag,
                src_e4,
                nbytes,
                send_id,
            )
        return done

    def host_post_recv(
        self, thread, context, src_vpid: int, tag: int, buf: "Buffer"
    ) -> Generator:
        done = ElanEvent(self.nic, count=1, name=f"tport-recv@{context.vpid}")
        done.attach_host_word()
        yield from self.nic.pci.pio_write()
        entry = _PostedRecv(src_vpid=src_vpid, tag=tag, buffer=buf, done=done)
        self.sim.schedule(
            self.config.nic_cmd_process_us, self._nic_post_recv, context, entry
        )
        return done

    # -- NIC send side ---------------------------------------------------
    def _nic_send_eager(
        self, context, dst_vpid: int, tag: int, buf, nbytes: int, done: ElanEvent
    ) -> None:
        def run() -> Generator:
            self.nic.track_pending(context.ctx)
            try:
                if nbytes > 0:
                    yield from self.nic.stream_dma(nbytes)
                data = buf.read(0, nbytes) if nbytes > 0 else np.empty(0, np.uint8)
                dst = self.nic.resolve_vpid(dst_vpid)
                pkt = Packet(
                    src_node=self.nic.node_id,
                    dst_node=dst.node_id,
                    nbytes=nbytes + self.config.mpich_header_bytes,
                    kind="tport_eager",
                    meta={
                        "src_vpid": context.vpid,
                        "dst_ctx": dst.ctx,
                        "tag": tag,
                        "payload": nbytes,
                    },
                    data=data,
                )
                yield from self.nic.fabric.transmit(pkt)
                done.fire()
            finally:
                self.nic.untrack_pending(context.ctx)

        self.sim.spawn(run(), name="tport-eager")

    def _nic_send_rts(
        self, context, dst_vpid: int, tag: int, src_e4: E4Addr, nbytes: int, send_id: int
    ) -> None:
        def run() -> Generator:
            self.nic.track_pending(context.ctx)
            try:
                dst = self.nic.resolve_vpid(dst_vpid)
                pkt = Packet(
                    src_node=self.nic.node_id,
                    dst_node=dst.node_id,
                    nbytes=self.config.mpich_header_bytes,
                    kind="tport_rts",
                    meta={
                        "src_vpid": context.vpid,
                        "dst_ctx": dst.ctx,
                        "tag": tag,
                        "payload": nbytes,
                        "src_e4": src_e4,
                        "send_id": send_id,
                    },
                )
                yield from self.nic.fabric.transmit(pkt)
            finally:
                self.nic.untrack_pending(context.ctx)

        self.sim.spawn(run(), name="tport-rts")

    # -- NIC receive side --------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        ctx = pkt.meta["dst_ctx"]
        if ctx not in self._posted:
            self.nic.drop_packet(pkt, reason=f"tport: unregistered ctx {ctx:#x}")
            return
        # NIC tag matching takes nic_match_us before any action
        self.sim.schedule(self.config.nic_match_us, self._match_incoming, ctx, pkt)

    def _match_incoming(self, ctx: int, pkt: Packet) -> None:
        src_vpid = pkt.meta["src_vpid"]
        tag = pkt.meta["tag"]
        posted = self._posted[ctx]
        entry = None
        for i, cand in enumerate(posted):
            if cand.matches(src_vpid, tag):
                entry = posted.pop(i)
                break
        msg = TportMessage(src_vpid=src_vpid, tag=tag, nbytes=pkt.meta["payload"])
        if pkt.kind == "tport_eager":
            if entry is None:
                self._unexpected[ctx].append(
                    _Unexpected(src_vpid, tag, msg.nbytes, pkt.data, None)
                )
                return
            self.matches += 1
            self._land_eager(entry, pkt.data, msg)
        else:  # tport_rts
            if entry is None:
                self._unexpected[ctx].append(
                    _Unexpected(src_vpid, tag, msg.nbytes, None, dict(pkt.meta))
                )
                return
            self.matches += 1
            self._start_get(ctx, entry, dict(pkt.meta), msg)

    def _nic_post_recv(self, context, entry: _PostedRecv) -> None:
        # first scan the unexpected queue (NIC match cost)
        def scan() -> None:
            unexpected = self._unexpected[context.ctx]
            for i, u in enumerate(unexpected):
                if entry.matches(u.src_vpid, u.tag):
                    del unexpected[i]
                    self.unexpected_hits += 1
                    msg = TportMessage(u.src_vpid, u.tag, u.nbytes)
                    if u.data is not None:
                        self._land_eager(entry, u.data, msg)
                    else:
                        self._start_get(context.ctx, entry, u.rts_meta, msg)
                    return
            self._posted[context.ctx].append(entry)

        self.sim.schedule(self.config.nic_match_us, scan)

    def _land_eager(self, entry: _PostedRecv, data, msg: TportMessage) -> None:
        def run() -> Generator:
            n = msg.nbytes
            if n > 0:
                yield from self.nic.stream_dma(n)
                entry.buffer.write(np.asarray(data, np.uint8)[:n])
            yield self.sim.timeout(self.config.nic_deliver_us)
            entry.done.fire(msg)

        self.sim.spawn(run(), name="tport-land")

    def _start_get(self, ctx: int, entry: _PostedRecv, rts_meta: Dict[str, Any], msg: TportMessage) -> None:
        """Rendezvous: pull the data from the sender with a pipelined get."""
        local_e4 = self.nic.mmu.map(ctx, entry.buffer.space, entry.buffer.addr, msg.nbytes)
        desc = RdmaDescriptor(
            op="read",
            local=local_e4,
            remote=rts_meta["src_e4"],
            nbytes=msg.nbytes,
            remote_vpid=msg.src_vpid,
            done=ElanEvent(self.nic, count=1, name="tport-get"),
        )

        def on_done() -> None:
            # the get has landed: this per-transfer registration is dead
            self.nic.mmu.unmap(ctx, local_e4)
            entry.done.fire(msg)
            # notify the sender its buffer is free (fires its done event)
            dst = self.nic.resolve_vpid(msg.src_vpid)
            fin = Packet(
                src_node=self.nic.node_id,
                dst_node=dst.node_id,
                nbytes=16,
                kind="tport_fin",
                meta={"send_id": rts_meta["send_id"], "dst_ctx": dst.ctx},
            )
            self.nic.fabric.transmit_from_nic(fin)

        desc.done.chain(ChainOp("tport-get-done", on_done))
        self.nic.rdma.nic_issue(desc)

    def handle_fin(self, pkt: Packet) -> None:
        pending = self._send_done.pop(pkt.meta["send_id"], None)
        if pending is None:
            self.nic.drop_packet(pkt, reason="tport FIN for unknown send")
            return
        done, context, src_e4 = pending
        # the receiver has pulled the data: the RTS source registration is
        # dead, drop it before completing the send
        context.unmap(src_e4)
        done.fire()
