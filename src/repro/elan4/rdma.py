"""RDMA read/write: arbitrary-size remote memory access.

"RDMA enables processes to write messages directly into remote memory
exposed by other processes" (§3.1); reads pull the other way.  Descriptors
carry E4 addresses on both sides (§4.2); each has its own completion
:class:`~repro.elan4.event.ElanEvent` — the property that makes blocking on
*many* outstanding RDMAs hard (§4.3, Fig. 5a) and motivates the shared
completion queue.

Transfers are chunked (``CHUNK_BYTES``) and pipelined: while chunk *k*
crosses the wire, chunk *k+1* is being fetched over the source PCI-X bus,
so sustained bandwidth approaches the PCI-X ceiling rather than the sum of
per-stage costs — matching the testbed's ~900 MB/s (Fig. 10d).

Completion semantics (and why the chained FIN is correct):

* **write** — the descriptor completes when the *last chunk has been
  injected*; anything chained to it (the FIN QDMA) is injected afterwards
  on the same in-order path, so the receiver always sees FIN after the
  data (§4.2, Fig. 3);
* **read** — the descriptor completes when the last chunk has been *written
  to requester host memory*; the chained FIN_ACK then travels
  requester→target (§4.2, Fig. 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, TYPE_CHECKING

from repro.elan4.addr import E4Addr
from repro.elan4.event import ElanEvent
from repro.elan4.network import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.elan4.nic import Elan4Nic

__all__ = ["RdmaDescriptor", "RdmaEngine", "RdmaError", "CHUNK_BYTES"]

#: pipelining granularity of the NIC DMA engine
CHUNK_BYTES = 4096


class RdmaError(Exception):
    """Bad descriptor (unknown op, zero/negative size)."""


@dataclass
class RdmaDescriptor:
    """One RDMA operation as issued to the NIC.

    ``local`` / ``remote`` are E4 addresses; ``done`` is the per-descriptor
    completion event (created lazily by the engine if not supplied) to which
    callers attach host words, interrupts, or chained operations *before*
    issuing.
    """

    op: str  # "read" | "write"
    local: E4Addr
    remote: E4Addr
    nbytes: int
    remote_vpid: int
    done: Optional[ElanEvent] = None
    issued_at: float = field(default=0.0)

    def validate(self) -> None:
        if self.op not in ("read", "write"):
            raise RdmaError(f"unknown RDMA op {self.op!r}")
        if self.nbytes <= 0:
            raise RdmaError(f"RDMA of {self.nbytes} bytes")


class RdmaEngine:
    """The RDMA machinery of one NIC."""

    def __init__(self, nic: "Elan4Nic"):
        self.nic = nic
        self.sim = nic.sim
        self.config = nic.config
        self._req_ids = itertools.count()
        #: outstanding read requests we issued:
        #: req_id -> [descriptor, ctx, bytes_landed]
        self._reads: Dict[int, list] = {}
        self.writes_issued = 0
        self.reads_issued = 0
        self.reads_cancelled = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- host issue ---------------------------------------------------------
    def host_issue(self, thread, desc: RdmaDescriptor) -> Generator:
        """Coroutine (host thread context): write the descriptor to the NIC
        command queue and return immediately; completion is signalled
        through ``desc.done``."""
        desc.validate()
        self.nic.resolve_vpid(desc.remote_vpid)  # dead peers fail at issue
        if desc.done is None:
            desc.done = ElanEvent(self.nic, count=1, name=f"rdma-{desc.op}")
        desc.issued_at = self.sim.now
        yield from self.nic.pci.pio_write()
        ctx = desc.local.ctx
        self.nic.track_pending(ctx)
        self.sim.schedule(
            self.config.nic_cmd_process_us + self.config.nic_dma_issue_us,
            self._start,
            desc,
            ctx,
        )
        return desc.done

    def nic_issue(self, desc: RdmaDescriptor) -> None:
        """Issue from NIC context (chained RDMA, Tport internals): no host
        PIO crossing."""
        desc.validate()
        if desc.done is None:
            desc.done = ElanEvent(self.nic, count=1, name=f"rdma-{desc.op}")
        desc.issued_at = self.sim.now
        ctx = desc.local.ctx
        self.nic.track_pending(ctx)
        self.sim.schedule(self.config.nic_dma_issue_us, self._start, desc, ctx)

    def _start(self, desc: RdmaDescriptor, ctx: int) -> None:
        if desc.op == "write":
            self.writes_issued += 1
            self.sim.spawn(self._run_write(desc, ctx), name="rdma-write")
        else:
            self.reads_issued += 1
            self.sim.spawn(self._run_read_request(desc, ctx), name="rdma-read")

    # -- write path ---------------------------------------------------------
    def _run_write(self, desc: RdmaDescriptor, ctx: int) -> Generator:
        """Source side of RDMA write: fetch chunks over PCI, inject them."""
        yield self.nic.dma_engines.request()
        try:
            space, host_addr = self.nic.mmu.translate(desc.local, desc.nbytes)
            dst = self.nic.resolve_vpid(desc.remote_vpid)
            offset = 0
            injection = None
            while offset < desc.nbytes:
                chunk = min(CHUNK_BYTES, desc.nbytes - offset)
                yield from self.nic.pci.dma(chunk)
                data = space.read(host_addr + offset, chunk)
                last = offset + chunk >= desc.nbytes
                pkt = Packet(
                    src_node=self.nic.node_id,
                    dst_node=dst.node_id,
                    nbytes=chunk,
                    kind="rdma_write",
                    meta={
                        "remote": desc.remote + offset,
                        "last": last,
                    },
                    data=data,
                )
                # Inject asynchronously so the PCI fetch of the next chunk
                # overlaps this chunk's wire time; the FIFO injection link
                # preserves chunk order.
                injection = self.sim.spawn(
                    self.nic.fabric.transmit(pkt), name="rdma-write-inject"
                )
                offset += chunk
            yield injection  # last chunk on the wire => all earlier ones are
            self.bytes_written += desc.nbytes
            # completion at last-chunk injection: chained ops follow in order
            desc.done.fire()
        finally:
            self.nic.dma_engines.release()
            self.nic.untrack_pending(ctx)

    def handle_write_chunk(self, pkt: Packet) -> None:
        """Destination side of RDMA write: land a chunk in host memory."""

        def run() -> Generator:
            space, host_addr = self.nic.mmu.translate(pkt.meta["remote"], pkt.nbytes)
            yield from self.nic.pci.dma(pkt.nbytes)
            if pkt.data is not None:
                space.write(host_addr, pkt.data)

        self.sim.spawn(run(), name="rdma-write-land")

    # -- read path ---------------------------------------------------------
    def _run_read_request(self, desc: RdmaDescriptor, ctx: int) -> Generator:
        """Requester side: send the get request to the data-holding NIC."""
        req_id = next(self._req_ids)
        self._reads[req_id] = [desc, ctx, 0]
        try:
            dst = self.nic.resolve_vpid(desc.remote_vpid)
            pkt = Packet(
                src_node=self.nic.node_id,
                dst_node=dst.node_id,
                nbytes=32,  # request descriptor on the wire
                kind="rdma_read_req",
                meta={
                    "req_id": req_id,
                    "remote": desc.remote,
                    "nbytes": desc.nbytes,
                    "reply_node": self.nic.node_id,
                },
            )
            yield from self.nic.fabric.transmit(pkt)
        except BaseException:
            # failed before the request ever left (peer released, fabric
            # torn down): nothing can complete or cancel this read later,
            # so retire the descriptor and pending slot here
            if self._reads.pop(req_id, None) is not None:
                self.nic.untrack_pending(ctx)
            raise

    def handle_read_request(self, pkt: Packet) -> None:
        """Data-holder side: stream the requested range back, pipelined."""

        def run() -> Generator:
            yield self.nic.dma_engines.request()
            try:
                yield self.sim.timeout(self.config.nic_dma_issue_us)
                remote: E4Addr = pkt.meta["remote"]
                nbytes: int = pkt.meta["nbytes"]
                space, host_addr = self.nic.mmu.translate(remote, nbytes)
                offset = 0
                injection = None
                while offset < nbytes:
                    chunk = min(CHUNK_BYTES, nbytes - offset)
                    yield from self.nic.pci.dma(chunk)
                    data = space.read(host_addr + offset, chunk)
                    reply = Packet(
                        src_node=self.nic.node_id,
                        dst_node=pkt.meta["reply_node"],
                        nbytes=chunk,
                        kind="rdma_read_data",
                        meta={
                            "req_id": pkt.meta["req_id"],
                            "offset": offset,
                            "last": offset + chunk >= nbytes,
                        },
                        data=data,
                    )
                    injection = self.sim.spawn(
                        self.nic.fabric.transmit(reply), name="rdma-read-inject"
                    )
                    offset += chunk
                yield injection
            finally:
                self.nic.dma_engines.release()

        self.sim.spawn(run(), name="rdma-read-serve")

    def handle_read_data(self, pkt: Packet) -> None:
        """Requester side: land a returning chunk; fire done once every
        byte of the range has landed (not on a ``last`` flag — a corrupted
        middle chunk must leave the read visibly incomplete so the
        rendezvous watchdog can detect and re-issue it)."""
        entry = self._reads.get(pkt.meta["req_id"])
        if entry is None:
            self.nic.drop_packet(pkt, reason="read data for unknown request")
            return
        desc, ctx = entry[0], entry[1]

        def run() -> Generator:
            space, host_addr = self.nic.mmu.translate(
                desc.local + pkt.meta["offset"], pkt.nbytes
            )
            yield from self.nic.pci.dma(pkt.nbytes)
            if self._reads.get(pkt.meta["req_id"]) is not entry:
                return  # cancelled while the chunk was landing
            if pkt.data is not None:
                space.write(host_addr, pkt.data)
            entry[2] += pkt.nbytes
            if entry[2] >= desc.nbytes:
                del self._reads[pkt.meta["req_id"]]
                self.bytes_read += desc.nbytes
                desc.done.fire()
                self.nic.untrack_pending(ctx)

        self.sim.spawn(run(), name="rdma-read-land")

    def cancel(self, desc: RdmaDescriptor) -> bool:
        """Abandon an outstanding read (completion watchdog gave up on it).
        Releases the pending-operation slot so finalize can drain; late
        data chunks for the request are dropped as unknown."""
        for req_id, entry in list(self._reads.items()):
            if entry[0] is desc:
                del self._reads[req_id]
                self.nic.untrack_pending(entry[1])
                self.reads_cancelled += 1
                return True
        return False
