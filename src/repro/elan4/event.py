"""Elan events: host notification, count-N aggregation, chaining — and the
Fig. 5 race.

Quadrics completion notification works through *events*: NIC-resident words
that operations "fire" on completion.  An event can

* make itself visible to the host (a host-memory word the process polls or
  blocks on, optionally with an interrupt);
* carry a **count**: it triggers only after ``count`` fires (Fig. 5b);
* **chain** further NIC operations, executed by the NIC's event engine with
  no host involvement (§3.1) — the mechanism behind the PTL's fast FIN /
  FIN_ACK and the shared completion queue.

The paper's Fig. 5c/5d race is modelled honestly: the host cannot atomically
reset the count, only read-then-write it across the PCI bus
(:meth:`ElanEvent.host_reset_count`); any fire landing inside that window is
obliterated by the write, losing a completion.  The property test in
``tests/elan4/test_event_race.py`` provokes exactly this, and the shared
completion queue design (§4.3) exists because of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

from repro.hw.cpu import HostWordEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["ElanEvent", "ChainOp", "EventRaceError"]


class EventRaceError(Exception):
    """Raised by strict-mode checks when a completion was provably lost."""


@dataclass
class ChainOp:
    """An operation the NIC event engine runs when an event triggers.

    ``run`` executes in NIC context (a callback); QDMA and RDMA modules
    provide closures that enqueue follow-on commands.  ``description`` feeds
    traces and tests.
    """

    description: str
    run: Callable[[], None]


class ElanEvent:
    """One Elan event word on a NIC.

    ``fire()`` is called by NIC engines when an operation completes; the
    event triggers when its count reaches zero, at which point it sets its
    host word (if attached), schedules its chained operations on the event
    engine, and optionally raises a host interrupt.
    """

    def __init__(
        self,
        nic,
        count: int = 1,
        name: str = "elan-event",
    ):
        self.nic = nic
        self.sim: "Simulator" = nic.sim
        self.name = name
        self.count = count
        self._armed_count = count
        self.host_word: Optional[HostWordEvent] = None
        self.interrupt_armed = False
        self.chains: List[ChainOp] = []
        # statistics / test hooks
        self.fires = 0
        self.triggers = 0
        self.lost_fires = 0  # fires provably obliterated by a racy reset
        self._reset_in_flight: Optional[int] = None  # value read by host

    # -- wiring ----------------------------------------------------------
    def attach_host_word(self, word: Optional[HostWordEvent] = None) -> HostWordEvent:
        """Attach (or create) the host-visible side of this event."""
        if word is None:
            word = HostWordEvent(self.sim, name=f"hostword:{self.name}")
        self.host_word = word
        return word

    def arm_interrupt(self, armed: bool = True) -> None:
        """Request a hardware interrupt on trigger (blocking-mode waits)."""
        self.interrupt_armed = armed

    def chain(self, op: ChainOp) -> None:
        """Append a chained operation (runs on every trigger)."""
        self.chains.append(op)

    # -- NIC side ----------------------------------------------------------
    def fire(self, value: Any = None) -> None:
        """One completion lands on this event (NIC context)."""
        self.fires += 1
        self.count -= 1
        if self._reset_in_flight is not None:
            # A host read-modify-write is in progress; this decrement will
            # be overwritten when the write lands.  Track it for diagnosis.
            self.lost_fires += 1
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.on_event_reset_race(self)
        if self.count == 0:
            self._trigger(value)

    def _trigger(self, value: Any) -> None:
        self.triggers += 1
        cfg = self.nic.config
        if self.host_word is not None:
            if self.interrupt_armed:
                # Blocking mode: the waiter only runs once the kernel has
                # taken the interrupt, so the word is set on the IRQ path
                # (≈10 µs) rather than the fast event-engine write.
                self.nic.node.raise_interrupt(self.host_word, value)
            else:
                # Polling mode: the NIC writes the host word directly.
                self.sim.schedule(cfg.nic_event_us, self.host_word.set, value)
        for op in self.chains:
            self.nic.run_chain(op)

    # -- host side -----------------------------------------------------------
    def host_read_count(self, thread) -> Generator:
        """Host reads the event count (one PIO-ish crossing)."""
        yield from thread.compute(self.nic.config.pio_write_us)
        return self.count

    def host_reset_count(self, thread, new_count: int) -> Generator:
        """The *non-atomic* reset of Fig. 5c/5d.

        The host reads the count, then writes ``new_count``; fires landing
        between the read and the write are silently overwritten — their
        completions are lost.  There is deliberately no atomic variant:
        "there is no available mechanism over Quadrics to atomically reset
        the event count back to 1 and block the process again" (§4.3).
        """
        cfg = self.nic.config
        yield from thread.compute(cfg.pio_write_us)  # read crossing
        self._reset_in_flight = self.count
        yield from thread.compute(cfg.pio_write_us)  # write crossing
        self._reset_in_flight = None
        self.count = new_count
        self._armed_count = new_count

    def host_wait(self, thread, clear: bool = True) -> Generator:
        """Block the calling thread until the event triggers.

        Requires an attached host word.  In blocking mode the caller should
        also :meth:`arm_interrupt`, else only a poller will ever see it.
        """
        if self.host_word is None:
            raise EventRaceError(f"{self.name}: host_wait without a host word")
        return (yield from thread.block_on(self.host_word, clear=clear))

    def poll(self) -> bool:
        """Host-side cheap check of the attached word."""
        return self.host_word is not None and self.host_word.poll()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ElanEvent {self.name!r} count={self.count} fires={self.fires} "
            f"triggers={self.triggers} lost={self.lost_fires}>"
        )
