"""Elan capabilities, hardware contexts and virtual process IDs.

Under the default Quadrics libraries, "a parallel job first acquires a
job-wise capability. Then each process is allocated a virtual process ID
(VPID); together they form a static pool of processes" (§3.1).  The paper's
design breaks that static coupling: "Processes are allowed to join the
Quadrics Network dynamically and individually by claiming an available
context in a system-wide Elan4 capability" (§5), and the MPI rank is
decoupled from the VPID (§4.1).

This module models the *system-wide* capability: a range of hardware
contexts per node; processes claim and release contexts at any time; a VPID
is allocated per claimed context and resolves to ``(node, context)`` for
network addressing.  Nothing here knows about MPI ranks — that mapping is
owned by the RTE/PML layers, which is exactly the decoupling the paper
proposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.annotations import acquires, releases

__all__ = ["ElanCapability", "CapabilityError", "VpidEntry"]


class CapabilityError(Exception):
    """Context exhaustion, double release, or resolution of a dead VPID."""


@dataclass(frozen=True)
class VpidEntry:
    """Resolution record for one live VPID."""

    vpid: int
    node_id: int
    ctx: int


class ElanCapability:
    """A system-wide capability covering ``nodes`` × ``contexts_per_node``.

    VPIDs are allocated monotonically and never reused, so a stale VPID held
    by a crashed peer can never silently address a new process — resolution
    of a released VPID raises.  (Real Quadrics capabilities are bitmaps of
    fixed context ranges; monotone VPIDs are the honest simulation of the
    paper's requirement that ranks survive migration while network addresses
    do not.)
    """

    def __init__(self, nodes: int, contexts_per_node: int = 64, ctx_base: int = 0x400):
        if nodes < 1 or contexts_per_node < 1:
            raise CapabilityError("capability must cover >= 1 node and context")
        self.nodes = nodes
        self.contexts_per_node = contexts_per_node
        self.ctx_base = ctx_base
        self._free: List[Set[int]] = [
            set(range(ctx_base, ctx_base + contexts_per_node)) for _ in range(nodes)
        ]
        self._next_vpid = 0
        self._by_vpid: Dict[int, VpidEntry] = {}
        self._by_node_ctx: Dict[Tuple[int, int], int] = {}
        self._released_vpids: Set[int] = set()
        self._ever_claimed: Set[Tuple[int, int]] = set()
        self._static_cohort: Set[int] = set()
        self._cohort_sealed = False

    # -- claiming --------------------------------------------------------
    @acquires("nic-context")
    def claim(self, node_id: int, ctx: Optional[int] = None) -> VpidEntry:
        """Claim a context on ``node_id`` (any free one unless ``ctx`` is
        given) and allocate a fresh VPID for it."""
        if not 0 <= node_id < self.nodes:
            raise CapabilityError(f"node {node_id} outside capability")
        free = self._free[node_id]
        if ctx is None:
            if not free:
                raise CapabilityError(f"node {node_id}: no free contexts")
            ctx = min(free)  # deterministic choice
        elif ctx not in free:
            raise CapabilityError(f"node {node_id}: context {ctx:#x} not free")
        free.discard(ctx)
        vpid = self._next_vpid
        self._next_vpid += 1
        entry = VpidEntry(vpid=vpid, node_id=node_id, ctx=ctx)
        self._by_vpid[vpid] = entry
        self._by_node_ctx[(node_id, ctx)] = vpid
        self._ever_claimed.add((node_id, ctx))
        return entry

    @releases("nic-context")
    def release(self, vpid: int) -> None:
        """Return the context behind ``vpid`` to the free pool.  The VPID
        itself is retired forever."""
        entry = self._by_vpid.pop(vpid, None)
        if entry is None:
            raise CapabilityError(f"release of unknown/dead vpid {vpid}")
        del self._by_node_ctx[(entry.node_id, entry.ctx)]
        self._free[entry.node_id].add(entry.ctx)
        self._released_vpids.add(vpid)

    # -- the synchronous (global-address-space) cohort, §4.1 ----------------
    def seal_static_cohort(self) -> Set[int]:
        """Freeze the set of *currently live* VPIDs as the synchronously-
        joined cohort — the processes whose coordinated startup makes a
        global virtual address space (and hence hardware broadcast)
        available.  May be sealed once; every later claim is a dynamic
        joiner outside the cohort (§4.1)."""
        if self._cohort_sealed:
            raise CapabilityError("static cohort already sealed")
        self._cohort_sealed = True
        self._static_cohort = set(self._by_vpid)
        return set(self._static_cohort)

    def in_static_cohort(self, vpid: int) -> bool:
        """True iff ``vpid`` belongs to the sealed synchronous cohort and is
        still alive.  A restarted process (same rank, new VPID) is *not* in
        the cohort — it rejoined later."""
        return vpid in self._static_cohort and vpid in self._by_vpid

    @property
    def cohort_sealed(self) -> bool:
        return self._cohort_sealed

    # -- resolution ------------------------------------------------------
    def resolve(self, vpid: int) -> VpidEntry:
        entry = self._by_vpid.get(vpid)
        if entry is None:
            reason = "released" if vpid in self._released_vpids else "unknown"
            raise CapabilityError(f"vpid {vpid} is {reason}")
        return entry

    def vpid_of(self, node_id: int, ctx: int) -> int:
        key = (node_id, ctx)
        if key not in self._by_node_ctx:
            raise CapabilityError(f"no live vpid for node {node_id} ctx {ctx:#x}")
        return self._by_node_ctx[key]

    def is_live(self, vpid: int) -> bool:
        return vpid in self._by_vpid

    @property
    def live_vpids(self) -> List[int]:
        return sorted(self._by_vpid)

    def free_contexts(self, node_id: int) -> int:
        return len(self._free[node_id])

    def released_ctxs(self, node_id: int) -> List[int]:
        """Contexts on ``node_id`` that were claimed at some point and are
        now back in the free pool — the set a released process *must* have
        cleaned its NIC state (MMU mappings, queues) out of.  The leak
        sanitizer cross-checks these against the NIC MMU at teardown."""
        free = self._free[node_id]
        return sorted(
            ctx for (nid, ctx) in self._ever_claimed if nid == node_id and ctx in free
        )
