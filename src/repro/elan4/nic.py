"""The Elan4 NIC: command processing, engines, events, contexts.

One :class:`Elan4Nic` sits on each node's PCI-X bus and owns:

* the **MMU** translating E4 addresses (:mod:`repro.elan4.addr`);
* the **QDMA engine** (:mod:`repro.elan4.qdma`);
* the **RDMA engine** with ``nic_dma_engines`` concurrent descriptors
  (:mod:`repro.elan4.rdma`);
* the **Tport engine** (:mod:`repro.elan4.tport`);
* the **event engine** executing chained operations
  (:meth:`Elan4Nic.run_chain`);
* per-context **pending-operation tracking**, which is what makes the safe
  connection-finalization of §4.1 possible: "An existing connection can go
  through its finalization stage only when the involving processes have
  completed all the pending messages synchronously ... a leftover DMA
  descriptor might regenerate its traffic indefinitely."

Processes interact with the NIC through an :class:`Elan4Context` — the
handle obtained by claiming a context in the system-wide capability (§5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Set, TYPE_CHECKING

import numpy as np

from repro.annotations import acquires, releases
from repro.elan4.addr import E4Addr, Elan4Mmu
from repro.elan4.capability import ElanCapability, VpidEntry
from repro.elan4.event import ChainOp, ElanEvent
from repro.elan4.network import Fabric, Packet
from repro.elan4.qdma import QdmaEngine, QdmaQueue
from repro.elan4.rdma import RdmaDescriptor, RdmaEngine
from repro.elan4.tport import TportEndpoint, TportEngine
from repro.sim.core import slowpath_enabled
from repro.sim.events import SimEvent
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import MachineConfig
    from repro.hw.memory import AddressSpace, Buffer
    from repro.hw.node import Node
    from repro.sim.core import Simulator

__all__ = ["Elan4Nic", "Elan4Context", "NicError"]


class NicError(Exception):
    """Protocol misuse detected by the NIC model."""


class Elan4Nic:
    """One Elan4 QM-500 card."""

    def __init__(
        self,
        sim: "Simulator",
        config: "MachineConfig",
        node: "Node",
        fabric: Fabric,
        capability: ElanCapability,
    ):
        self.sim = sim
        self.config = config
        self.node = node
        self.node_id = node.node_id
        self.fabric = fabric
        self.capability = capability
        self.mmu = Elan4Mmu(tlb=config.mmu_tlb and not slowpath_enabled())
        #: each card sits behind its own PCI-X bridge segment, so multirail
        #: nodes do not serialise both NICs on one bus (the topology real
        #: multirail servers used — and the reason multirail pays at all)
        from repro.hw.pci import PciBus

        self.pci = PciBus(sim, config, name=f"pci{self.node_id}.elan4")
        self.dma_engines = Resource(sim, config.nic_dma_engines, name=f"dma{self.node_id}")
        self.qdma = QdmaEngine(self)
        self.rdma = RdmaEngine(self)
        self.tport = TportEngine(self)
        self._pending: Dict[int, int] = {}
        self._drain_waiters: Dict[int, List[SimEvent]] = {}
        #: contexts torn down *uncooperatively* (owner died; no drain) —
        #: their leftover pending ops are accounted-for, not leaked
        self.reclaimed_ctxs: Set[int] = set()
        self.dropped: List[tuple] = []
        self.chains_run = 0
        self.stalled = False
        #: observability hook, wired by the Cluster (None → no tracing)
        self.obs = None
        self._stalled_work: List[tuple] = []  # ("pkt"|"chain", item) in order
        fabric.attach(self)
        node.devices.setdefault("elan4", self)
        if sim.sanitizer is not None:
            sim.sanitizer.on_nic(self)

        self._dispatch: Dict[str, Callable[[Packet], None]] = {
            "qdma": self.qdma.handle_packet,
            "rdma_write": self.rdma.handle_write_chunk,
            "rdma_read_req": self.rdma.handle_read_request,
            "rdma_read_data": self.rdma.handle_read_data,
            "tport_eager": self.tport.handle_packet,
            "tport_rts": self.tport.handle_packet,
            "tport_fin": self.tport.handle_fin,
        }

    # -- fault injection: freeze / thaw the card's engines -------------------
    def stall(self) -> None:
        """Freeze the receive path and event engine.  Arriving packets and
        chained operations are parked (the card's input FIFO backs up) and
        replayed in arrival order on :meth:`resume` — a hung firmware /
        PCI-bridge stall, not a crash: no state is lost."""
        self.stalled = True

    def resume(self) -> None:
        if not self.stalled:
            return
        self.stalled = False
        work, self._stalled_work = self._stalled_work, []
        for kind, item in work:
            if kind == "pkt":
                self.receive(item)
            else:
                self.run_chain(item)

    # -- fabric interface ---------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        if self.stalled:
            self._stalled_work.append(("pkt", pkt))
            return
        handler = self._dispatch.get(pkt.kind)
        if handler is None:
            self.drop_packet(pkt, reason=f"unknown kind {pkt.kind!r}")
            return
        handler(pkt)

    def drop_packet(self, pkt: Packet, reason: str) -> None:
        """Record a dropped packet.  Healthy runs never drop; tests assert
        emptiness, and fault-injection tests assert specific reasons."""
        self.dropped.append((self.sim.now, reason, pkt))

    # -- payload DMA (optionally cut-through) --------------------------------
    def stream_dma(self, nbytes: int) -> "Generator":
        """Move a QDMA/Tport payload across the PCI bus.

        With ``config.nic_cutthrough_flit == 0`` (the default, matching the
        paper's testbed: its QDMA and MPICH latency slopes are the *sum* of
        PCI+wire+PCI per-byte costs) the whole payload is on the critical
        path.  A nonzero flit enables cut-through: only the first flit
        gates the pipeline and the rest streams concurrently with the wire
        stage (still consuming bus time for contention accounting) — the
        ablation for "what if the NIC path were fully pipelined".
        """
        flit = self.config.nic_cutthrough_flit
        if flit <= 0 or nbytes <= flit:
            yield from self.pci.dma(nbytes)
            return
        yield from self.pci.dma(flit)
        self.sim.spawn(self.pci.dma(nbytes - flit), name="dma-stream")

    # -- event engine ------------------------------------------------------
    def run_chain(self, op: ChainOp) -> None:
        """Execute a chained operation after the event-engine latency."""
        if self.stalled:
            self._stalled_work.append(("chain", op))
            return
        self.chains_run += 1
        self.sim.schedule(self.config.nic_chain_us, op.run)

    # -- addressing ----------------------------------------------------------
    def resolve_vpid(self, vpid: int) -> VpidEntry:
        return self.capability.resolve(vpid)

    def ctx_of_vpid(self, vpid: int) -> int:
        return self.capability.resolve(vpid).ctx

    # -- pending-operation tracking (drain support, §4.1) ---------------------
    @acquires("pending-op")
    def track_pending(self, ctx: int) -> None:
        self._pending[ctx] = self._pending.get(ctx, 0) + 1

    @releases("pending-op")
    def untrack_pending(self, ctx: int) -> None:
        count = self._pending.get(ctx, 0) - 1
        if count < 0:
            raise NicError(f"pending underflow for ctx {ctx:#x}")
        self._pending[ctx] = count
        if count == 0:
            for ev in self._drain_waiters.pop(ctx, []):
                ev.succeed(None)

    def pending_ops(self, ctx: int) -> int:
        return self._pending.get(ctx, 0)

    def drain_event(self, ctx: int) -> SimEvent:
        """Event completing when the context has no in-flight NIC work."""
        ev = SimEvent(self.sim, name=f"drain:{ctx:#x}")
        if self.pending_ops(ctx) == 0:
            ev.succeed(None)
        else:
            self._drain_waiters.setdefault(ctx, []).append(ev)
        return ev


class Elan4Context:
    """A process's handle on its claimed hardware context (libelan4-like)."""

    def __init__(self, nic: Elan4Nic, entry: VpidEntry, space: "AddressSpace"):
        if entry.node_id != nic.node_id:
            raise NicError(
                f"context claimed on node {entry.node_id} cannot attach to "
                f"NIC of node {nic.node_id}"
            )
        self.nic = nic
        self.sim = nic.sim
        self.config = nic.config
        self.entry = entry
        self.space = space
        self.finalized = False
        self._queues: List[QdmaQueue] = []

    @property
    def ctx(self) -> int:
        return self.entry.ctx

    @property
    def vpid(self) -> int:
        return self.entry.vpid

    # -- memory ------------------------------------------------------------
    @acquires("mmu-registration")
    def map_buffer(self, buf: "Buffer") -> E4Addr:
        """Expose host memory to the NIC; returns its E4 address (the
        "expanded memory descriptor" ingredient of §4.2)."""
        self._check_live()
        return self.nic.mmu.map(self.ctx, buf.space, buf.addr, buf.nbytes)

    @releases("mmu-registration")
    def unmap(self, e4: E4Addr) -> None:
        """Drop one registration made by :meth:`map_buffer`.  Per-transfer
        mappings (rendezvous gets, tport RTS sources) must come back here
        at the transfer's terminal point or the MMU table grows without
        bound until ``unmap_context`` at finalize."""
        self.nic.mmu.unmap(self.ctx, e4)

    # -- queues ----------------------------------------------------------------
    def create_queue(self, queue_id: int, nslots: Optional[int] = None) -> QdmaQueue:
        self._check_live()
        n = self.config.qslots_per_queue if nslots is None else nslots
        q = self.nic.qdma.create_queue(self.ctx, queue_id, n, self.space)
        self._queues.append(q)
        return q

    # -- QDMA ----------------------------------------------------------------
    def qdma_send(
        self,
        thread,
        dst_vpid: int,
        queue_id: int,
        payload,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Generator:
        """Coroutine: post a ≤2 KB message to a remote queue.  Returns the
        source-completion :class:`ElanEvent`."""
        self._check_live()
        return (
            yield from self.nic.qdma.host_send(
                thread, self.vpid, dst_vpid, queue_id, payload, meta
            )
        )

    def chained_qdma(
        self,
        dst_vpid: int,
        queue_id: int,
        payload,
        meta: Optional[Dict[str, Any]] = None,
    ) -> ChainOp:
        """A chained-QDMA operation to attach to any :class:`ElanEvent`."""
        self._check_live()
        return self.nic.qdma.chained_command(self.vpid, dst_vpid, queue_id, payload, meta)

    # -- RDMA ----------------------------------------------------------------
    def rdma_issue(self, thread, desc: RdmaDescriptor) -> Generator:
        """Coroutine: issue an RDMA descriptor; returns its done event."""
        self._check_live()
        return (yield from self.nic.rdma.host_issue(thread, desc))

    def make_event(self, count: int = 1, name: str = "event") -> ElanEvent:
        self._check_live()
        return ElanEvent(self.nic, count=count, name=f"{name}@{self.vpid}")

    # -- Tport ----------------------------------------------------------------
    def tport_endpoint(self) -> TportEndpoint:
        self._check_live()
        return TportEndpoint(self)

    # -- lifecycle ----------------------------------------------------------
    def pending_ops(self) -> int:
        return self.nic.pending_ops(self.ctx)

    def drain(self, thread) -> Generator:
        """Block until every in-flight NIC operation of this context is
        complete — the mandatory step before finalization (§4.1)."""
        yield from thread.wait_sim_event(self.nic.drain_event(self.ctx))

    def finalize(self, thread) -> Generator:
        """Drain, destroy queues, tear down translations, release the VPID.

        After this, any packet addressed to the old VPID resolves to a dead
        VPID (a :class:`~repro.elan4.capability.CapabilityError` at the
        sender) — never to a silent write into recycled memory.
        """
        self._check_live()
        yield from self.drain(thread)
        self.nic.qdma.destroy_context_queues(self.ctx)
        self.nic.mmu.unmap_context(self.ctx)
        self.nic.capability.release(self.vpid)
        self.finalized = True

    def reclaim(self) -> None:
        """Uncooperative teardown for a dead owner (repro.ft): same
        resource release as :meth:`finalize` but with **no drain** — the
        process is gone, nobody can wait.  The VPID retires forever
        (§4.1: stale use raises ``CapabilityError``), and the context is
        recorded so leak probes treat its orphaned pending ops as
        accounted-for rather than leaked."""
        if self.finalized:
            return
        self.nic.qdma.destroy_context_queues(self.ctx)
        self.nic.mmu.unmap_context(self.ctx)
        self.nic.capability.release(self.vpid)
        self.nic.reclaimed_ctxs.add(self.ctx)
        self.finalized = True

    def _check_live(self) -> None:
        if self.finalized:
            raise NicError(f"use of finalized context {self.ctx:#x}")
