"""Elan hardware broadcast — and why dynamic joiners cannot use it (§4.1).

QsNet switches can replicate a packet to every leaf in hardware, which is
what makes Quadrics collectives fast ([32, 33]).  The catch the paper
documents: hardware broadcast "requires the availability of global virtual
address space", which only exists for "processes that initially join
parallel communication synchronously.  Processes that join (or rejoin)
later will not be able to utilize this global address space."

This module models both sides of that trade-off:

* :meth:`repro.elan4.capability.ElanCapability.seal_static_cohort` freezes
  the synchronously-joined set — the processes whose memory allocations
  were coordinated and can form a global virtual address space;
* :class:`HwBroadcastGroup` wires a broadcast destination queue at the
  *same logical address* in every member and refuses any member outside
  the static cohort;
* :meth:`HwBroadcastGroup.bcast` injects once; the fabric replicates to
  every member node in hardware — one injection-link serialisation instead
  of the software tree's ⌈log2 n⌉ sequential sends.

Payloads above one QSLOT are fragmented into successive hardware
broadcasts (in-order per pair, so reassembly is trivial).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.elan4.network import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.elan4.nic import Elan4Context

__all__ = ["HwBroadcastGroup", "HwBcastError", "HWBCAST_QID"]

#: the PTL reserves queues 0-1; hardware broadcast groups use 3 upward
HWBCAST_QID = 3

_group_ids = itertools.count(1)


class HwBcastError(Exception):
    """Late joiner in the group, or misuse of the broadcast engine."""


class HwBroadcastGroup:
    """A set of synchronously-joined contexts sharing a broadcast address."""

    def __init__(self, members: Sequence["Elan4Context"], queue_id: int = HWBCAST_QID):
        if not members:
            raise HwBcastError("empty broadcast group")
        fabric = members[0].nic.fabric
        capability = members[0].nic.capability
        for ctx in members:
            if ctx.nic.fabric is not fabric:
                raise HwBcastError("broadcast group must live on one rail")
            if not capability.in_static_cohort(ctx.vpid):
                raise HwBcastError(
                    f"vpid {ctx.vpid} joined dynamically: no global virtual "
                    "address space, hardware broadcast unavailable (§4.1)"
                )
        self.group_id = next(_group_ids)
        self.members = list(members)
        self.fabric = fabric
        self.queue_id = queue_id
        #: the queue each member receives broadcasts on — the "same global
        #: address" in every address space
        self.queues = {ctx.vpid: ctx.create_queue(queue_id) for ctx in members}
        self.broadcasts = 0

    def queue_of(self, ctx: "Elan4Context"):
        return self.queues[ctx.vpid]

    def bcast(self, thread, root: "Elan4Context", payload, seq: int = 0) -> Generator:
        """Coroutine (root's host thread): hardware-broadcast ``payload`` to
        every member (including the root's own queue).

        ``seq`` is an opaque round number carried in every fragment's meta;
        receivers draining a shared queue use it to separate fragments of
        consecutive broadcasts (different roots may interleave in flight).
        """
        if root.vpid not in self.queues:
            raise HwBcastError(f"root vpid {root.vpid} is not a group member")
        data = np.frombuffer(payload, dtype=np.uint8) if isinstance(
            payload, (bytes, bytearray)
        ) else np.asarray(payload, dtype=np.uint8).ravel()
        self.broadcasts += 1
        cfg = root.config
        nic = root.nic
        slot = cfg.qslot_bytes
        dst_nodes = sorted({ctx.nic.node_id for ctx in self.members})
        total = max(data.nbytes, 1)
        for offset in range(0, total, slot):
            frag = data[offset : offset + slot]
            # host: one command; NIC: one payload fetch; wire: one injection
            yield from nic.pci.pio_write()
            yield thread.sim.timeout(cfg.nic_cmd_process_us)
            if frag.nbytes:
                yield from nic.stream_dma(frag.nbytes)
            pkt = Packet(
                src_node=nic.node_id,
                dst_node=-1,  # filled per destination by the fabric
                nbytes=frag.nbytes,
                kind="hwbcast",
                meta={
                    "group": self.group_id,
                    "queue_id": self.queue_id,
                    "src_vpid": root.vpid,
                    "offset": offset,
                    "total": data.nbytes,
                    "seq": seq,
                },
                data=frag.copy(),
            )
            yield from self.fabric.broadcast(pkt, dst_nodes)

    # -- receive plumbing -------------------------------------------------
    def install_receivers(self) -> None:
        """Register the per-NIC dispatch: a broadcast packet lands in every
        member queue on the receiving node."""
        by_node: Dict[int, List["Elan4Context"]] = {}
        for ctx in self.members:
            by_node.setdefault(ctx.nic.node_id, []).append(ctx)
        for node_id, ctxs in by_node.items():
            nic = ctxs[0].nic
            handlers = nic._dispatch
            if "hwbcast" not in handlers:
                handlers["hwbcast"] = _make_node_handler(nic)
            registry = getattr(nic, "_hwbcast_groups", None)
            if registry is None:
                registry = nic._hwbcast_groups = {}
            registry.setdefault(self.group_id, []).extend(ctxs)


def _make_node_handler(nic):
    def handle(pkt: Packet) -> None:
        ctxs = getattr(nic, "_hwbcast_groups", {}).get(pkt.meta["group"], [])
        if not ctxs:
            nic.drop_packet(pkt, reason=f"hwbcast for unknown group {pkt.meta['group']}")
            return
        for ctx in ctxs:
            # reuse the QDMA delivery machinery: one QSLOT landing per member
            nic.qdma.handle_packet(
                Packet(
                    src_node=pkt.src_node,
                    dst_node=nic.node_id,
                    nbytes=pkt.nbytes,
                    kind="qdma",
                    meta={
                        "src_vpid": pkt.meta["src_vpid"],
                        "dst_ctx": ctx.ctx,
                        "queue_id": pkt.meta["queue_id"],
                        "offset": pkt.meta["offset"],
                        "total": pkt.meta["total"],
                        "seq": pkt.meta.get("seq", 0),
                    },
                    data=pkt.data,
                )
            )

    return handle


def make_group(members: Sequence["Elan4Context"], queue_id: int = HWBCAST_QID) -> HwBroadcastGroup:
    """Create a group and install its receive plumbing in one call."""
    group = HwBroadcastGroup(members, queue_id=queue_id)
    group.install_receivers()
    return group
