"""Quaternary fat-tree topology construction.

Builds the QsNetII interconnect shape: leaves (NIC ports) hang off a tree of
Elite-4 switches where each switch stage has 4 down-links and 4 up-links
(radix 8).  The paper's testbed is "a dimension one quaternary fat-tree
QS-8A switch and eight Elan4 QM-500 cards" — with ≤8 leaves the tree is a
single stage and every NIC pair is one switch hop apart; larger simulated
clusters grow additional stages, and the hop count feeds the fabric's
latency model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

from repro.elan4.switch import Elite4Switch

__all__ = ["Topology", "build_quaternary_fat_tree", "leaf_name"]

DOWN_LINKS = 4  # quaternary: 4 children per switch stage element


def leaf_name(i: int) -> str:
    return f"nic:{i}"


@dataclass
class Topology:
    """The wired fabric: a networkx graph plus switch objects and routes."""

    graph: nx.Graph
    leaves: List[str]
    switches: Dict[str, Elite4Switch]
    #: (leaf_a, leaf_b) -> number of switch elements traversed
    _hops: Dict[tuple, int] = field(default_factory=dict)

    def hops(self, a: int, b: int) -> int:
        """Switch elements on the route between leaves ``a`` and ``b``.

        Loopback (a == b) is zero hops: the Elan4 NIC short-circuits
        self-addressed traffic without entering the fabric.
        """
        if a == b:
            return 0
        key = (min(a, b), max(a, b))
        cached = self._hops.get(key)
        if cached is None:
            path = nx.shortest_path(self.graph, leaf_name(key[0]), leaf_name(key[1]))
            cached = len(path) - 2  # interior vertices are all switches
            self._hops[key] = cached
        return cached

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def stages(self) -> int:
        """Fat-tree depth (1 for the paper's 8-node QS-8A)."""
        return max(1, math.ceil(math.log(max(self.n_leaves, 2), DOWN_LINKS)))


def build_quaternary_fat_tree(n_leaves: int) -> Topology:
    """Wire ``n_leaves`` NICs into a quaternary fat tree.

    Stage 0 switches each take up to 4 leaves on their down-links; each
    higher stage connects groups of 4 lower switches, up to the root stage.
    Up-links are wired one-per-parent (thinned fat tree is enough for a
    latency model; full bisection multiplicity would only matter with
    adaptive routing under congestion, which the point-to-point benchmarks
    never create).
    """
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    g = nx.Graph()
    switches: Dict[str, Elite4Switch] = {}
    leaves = [leaf_name(i) for i in range(n_leaves)]
    for name in leaves:
        g.add_node(name, kind="nic")

    def add_switch(stage: int, idx: int) -> Elite4Switch:
        name = f"sw{stage}.{idx}"
        sw = Elite4Switch(name)
        switches[name] = sw
        g.add_node(name, kind="switch", stage=stage)
        return sw

    if n_leaves <= Elite4Switch.RADIX:
        # The paper's testbed shape: a dimension-one switch (QS-8A) with all
        # ports down — every NIC pair is a single hop apart.
        sw = add_switch(0, 0)
        for port, leaf in enumerate(leaves):
            sw.connect(port, leaf)
            g.add_edge(sw.name, leaf)
        return Topology(graph=g, leaves=leaves, switches=switches)

    # stage 0: leaves onto first-stage switches
    current: List[Elite4Switch] = []
    for idx in range(math.ceil(n_leaves / DOWN_LINKS)):
        sw = add_switch(0, idx)
        current.append(sw)
        for port in range(DOWN_LINKS):
            leaf_idx = idx * DOWN_LINKS + port
            if leaf_idx >= n_leaves:
                break
            sw.connect(port, leaves[leaf_idx])
            g.add_edge(sw.name, leaves[leaf_idx])

    # higher stages until a single root group remains
    stage = 1
    while len(current) > 1:
        parents: List[Elite4Switch] = []
        for idx in range(math.ceil(len(current) / DOWN_LINKS)):
            sw = add_switch(stage, idx)
            parents.append(sw)
            for port in range(DOWN_LINKS):
                child_idx = idx * DOWN_LINKS + port
                if child_idx >= len(current):
                    break
                child = current[child_idx]
                sw.connect(port, child.name)
                child.connect(DOWN_LINKS + (port % DOWN_LINKS), sw.name)
                g.add_edge(sw.name, child.name)
        current = parents
        stage += 1

    return Topology(graph=g, leaves=leaves, switches=switches)
