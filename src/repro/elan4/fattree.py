"""Quaternary fat-tree topology construction and health-aware routing.

Builds the QsNetII interconnect shape: leaves (NIC ports) hang off a tree of
Elite-4 switches where each switch stage has 4 down-links and 4 up-links
(radix 8).  The paper's testbed is "a dimension one quaternary fat-tree
QS-8A switch and eight Elan4 QM-500 cards" — with ≤8 leaves the tree is a
single stage and every NIC pair is one switch hop apart; larger simulated
clusters grow additional stages, and the hop count feeds the fabric's
latency model.

Trees with more than one stage are built with *plane redundancy*: the upper
stages are duplicated into independent routing planes (default two), the way
real QsNetII installations provision multiple top switches.  Killing a
switch or link (``fail_switch`` / ``fail_link``) makes :meth:`Topology.route`
recompute paths around the dead element; only when no healthy path remains
is the destination *partitioned* and :class:`PartitionError` raised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

import networkx as nx

from repro.elan4.switch import Elite4Switch

__all__ = [
    "Topology",
    "PartitionError",
    "build_quaternary_fat_tree",
    "leaf_name",
]

DOWN_LINKS = 4  # quaternary: 4 children per switch stage element


class PartitionError(RuntimeError):
    """No healthy route exists between two leaves."""


def leaf_name(i: int) -> str:
    return f"nic:{i}"


@dataclass
class Topology:
    """The wired fabric: a networkx graph plus switch objects and routes.

    Health state lives here: ``dead_switches`` / ``dead_links`` mask out
    fabric elements, and routes are recomputed lazily against the healthy
    subgraph.  ``reroutes`` counts how many cached routes actually changed
    after a fault or repair — the fabric-level recovery metric.
    """

    graph: nx.Graph
    leaves: List[str]
    switches: Dict[str, Elite4Switch]
    dead_switches: Set[str] = field(default_factory=set)
    #: frozenset({endpoint_a, endpoint_b}) of failed cables
    dead_links: Set[FrozenSet[str]] = field(default_factory=set)
    reroutes: int = 0
    _epoch: int = 0
    #: (a, b) with a <= b  ->  (epoch, interior switch names or None)
    _routes: Dict[tuple, tuple] = field(default_factory=dict)
    _healthy_epoch: int = -1
    _healthy_cache: Optional[nx.Graph] = None
    #: directional (a, b) -> (epoch, (hops, switch objects) or None) — the
    #: fabric's per-packet fast path; same epoch invalidation as ``_routes``
    _fast_routes: Dict[tuple, tuple] = field(default_factory=dict)

    # -- health --------------------------------------------------------------
    def fail_switch(self, name: str) -> None:
        if name not in self.switches:
            raise KeyError(f"unknown switch {name!r}")
        if name not in self.dead_switches:
            self.dead_switches.add(name)
            self.switches[name].alive = False
            self._epoch += 1

    def restore_switch(self, name: str) -> None:
        if name in self.dead_switches:
            self.dead_switches.discard(name)
            self.switches[name].alive = True
            self._epoch += 1

    def fail_link(self, a: str, b: str) -> None:
        link = frozenset((a, b))
        if not self.graph.has_edge(a, b):
            raise KeyError(f"no link between {a!r} and {b!r}")
        if link not in self.dead_links:
            self.dead_links.add(link)
            self._epoch += 1

    def restore_link(self, a: str, b: str) -> None:
        link = frozenset((a, b))
        if link in self.dead_links:
            self.dead_links.discard(link)
            self._epoch += 1

    def fail_leaf(self, i: int) -> None:
        """Sever every cable on leaf ``i`` — the partition primitive."""
        leaf = leaf_name(i)
        for nbr in self.graph.neighbors(leaf):
            self.fail_link(leaf, nbr)

    def restore_leaf(self, i: int) -> None:
        leaf = leaf_name(i)
        for nbr in self.graph.neighbors(leaf):
            self.restore_link(leaf, nbr)

    @property
    def faulty(self) -> bool:
        return bool(self.dead_switches or self.dead_links)

    def _healthy_graph(self) -> nx.Graph:
        if not self.faulty:
            return self.graph
        if self._healthy_epoch != self._epoch:
            g = self.graph.copy()
            g.remove_nodes_from([s for s in self.dead_switches if s in g])
            g.remove_edges_from([tuple(link) for link in self.dead_links])
            self._healthy_cache = g
            self._healthy_epoch = self._epoch
        return self._healthy_cache

    # -- routing -------------------------------------------------------------
    def route(self, a: int, b: int) -> Optional[List[str]]:
        """Interior switch names on the healthy route from leaf ``a`` to
        ``b``, or ``None`` if the pair is partitioned.  Loopback is the
        empty route (the NIC short-circuits self-addressed traffic)."""
        if a == b:
            return []
        key = (min(a, b), max(a, b))
        cached = self._routes.get(key)
        if cached is not None and cached[0] == self._epoch:
            interior = cached[1]
        else:
            g = self._healthy_graph()
            try:
                path = nx.shortest_path(g, leaf_name(key[0]), leaf_name(key[1]))
                interior = path[1:-1]
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                interior = None
            if cached is not None and cached[1] != interior:
                self.reroutes += 1
            self._routes[key] = (self._epoch, interior)
        if interior is None or a <= b:
            return interior
        return list(reversed(interior))

    def route_fast(self, a: int, b: int) -> Optional[tuple]:
        """``(hop_count, switch objects along a→b)`` or ``None`` when the
        pair is partitioned.  A memo over :meth:`route` keyed by the health
        epoch: route computation, name→switch lookups, and the reversed-copy
        allocation all happen once per (pair, epoch) instead of per packet.
        Reroute counting is inherited from :meth:`route` on each miss.
        """
        key = (a, b)
        cached = self._fast_routes.get(key)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        interior = self.route(a, b)
        if interior is None:
            info = None
        else:
            info = (len(interior), tuple(self.switches[name] for name in interior))
        self._fast_routes[key] = (self._epoch, info)
        return info

    def hops(self, a: int, b: int) -> int:
        """Switch elements on the route between leaves ``a`` and ``b``.

        Loopback (a == b) is zero hops: the Elan4 NIC short-circuits
        self-addressed traffic without entering the fabric.
        """
        route = self.route(a, b)
        if route is None:
            raise PartitionError(
                f"leaves {a} and {b} are partitioned "
                f"(dead switches: {sorted(self.dead_switches)}, "
                f"dead links: {len(self.dead_links)})"
            )
        return len(route)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def stages(self) -> int:
        """Fat-tree depth (1 for the paper's 8-node QS-8A)."""
        return max(1, math.ceil(math.log(max(self.n_leaves, 2), DOWN_LINKS)))


def build_quaternary_fat_tree(n_leaves: int, redundancy: int = 2) -> Topology:
    """Wire ``n_leaves`` NICs into a quaternary fat tree.

    Stage 0 switches each take up to 4 leaves on their down-links.  The
    higher stages are built ``redundancy`` times over as independent routing
    planes: every stage-0 switch up-links once into each plane (up-port
    ``DOWN_LINKS + plane``), and within a plane each switch has a single
    parent.  Shortest paths through any plane have identical length, so the
    latency model is unchanged, but a dead upper switch or cable leaves a
    same-length route through a surviving plane.

    The paper's ≤8-node testbed stays a single QS-8A switch — there is no
    redundant plane to fail over to, and killing it partitions everything.
    """
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    if not 1 <= redundancy <= DOWN_LINKS:
        raise ValueError(f"redundancy must be in 1..{DOWN_LINKS}")
    g = nx.Graph()
    switches: Dict[str, Elite4Switch] = {}
    leaves = [leaf_name(i) for i in range(n_leaves)]
    for name in leaves:
        g.add_node(name, kind="nic")

    def add_switch(stage: int, idx: int, plane: int = 0) -> Elite4Switch:
        name = f"sw{stage}.{idx}" if plane == 0 else f"sw{stage}.{idx}p{plane}"
        sw = Elite4Switch(name)
        switches[name] = sw
        g.add_node(name, kind="switch", stage=stage, plane=plane)
        return sw

    if n_leaves <= Elite4Switch.RADIX:
        # The paper's testbed shape: a dimension-one switch (QS-8A) with all
        # ports down — every NIC pair is a single hop apart.
        sw = add_switch(0, 0)
        for port, leaf in enumerate(leaves):
            sw.connect(port, leaf)
            g.add_edge(sw.name, leaf)
        return Topology(graph=g, leaves=leaves, switches=switches)

    # stage 0: leaves onto first-stage switches (shared by all planes)
    stage0: List[Elite4Switch] = []
    for idx in range(math.ceil(n_leaves / DOWN_LINKS)):
        sw = add_switch(0, idx)
        stage0.append(sw)
        for port in range(DOWN_LINKS):
            leaf_idx = idx * DOWN_LINKS + port
            if leaf_idx >= n_leaves:
                break
            sw.connect(port, leaves[leaf_idx])
            g.add_edge(sw.name, leaves[leaf_idx])

    # upper stages, once per redundant plane
    for plane in range(redundancy):
        current = stage0
        stage = 1
        while len(current) > 1:
            parents: List[Elite4Switch] = []
            for idx in range(math.ceil(len(current) / DOWN_LINKS)):
                sw = add_switch(stage, idx, plane)
                parents.append(sw)
                for port in range(DOWN_LINKS):
                    child_idx = idx * DOWN_LINKS + port
                    if child_idx >= len(current):
                        break
                    child = current[child_idx]
                    sw.connect(port, child.name)
                    # stage-0 switches spend one up-port per plane; switches
                    # inside a plane have a single parent
                    up_port = DOWN_LINKS + (plane if child in stage0 else 0)
                    child.connect(up_port, sw.name)
                    g.add_edge(sw.name, child.name)
            current = parents
            stage += 1

    return Topology(graph=g, leaves=leaves, switches=switches)
