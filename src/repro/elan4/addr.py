"""E4 addresses and the Elan4 NIC MMU.

The paper (§4.2): *"Quadrics RDMA descriptors require the source and
destination virtual host memory addresses to be transformed and presented in
a different format (E4 Addr) for the network interface card to carry out
RDMA operations. A specially designed Memory Management Unit (MMU) in the
Elan4 network interface performs address translation from E4 Addr to
physical memory."*

We model this as a per-NIC, per-context translation table: host code maps a
host buffer to obtain an :class:`E4Addr`; NIC engines translate E4 addresses
back to (address-space, host-address) pairs at transfer time.  Untranslatable
accesses raise :class:`MmuTrap` — the event a stale descriptor after a
process restart would provoke, which is why connection finalization must
drain pending DMAs (§4.1).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, NamedTuple, Tuple, TYPE_CHECKING

from repro.annotations import acquires, releases

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.memory import AddressSpace

__all__ = ["E4Addr", "Elan4Mmu", "MmuTrap"]


class MmuTrap(Exception):
    """NIC-side translation fault (no mapping for the accessed range)."""


class E4Addr(NamedTuple):
    """A NIC-virtual address: context id + 64-bit offset in that context's
    Elan address space.  Immutable/hashable so it can ride inside headers
    and memory descriptors (the PTL expands its memory descriptor with one
    of these, §4.2).  A NamedTuple rather than a frozen dataclass: the
    chunked engines construct one per fragment, and tuple construction
    skips the frozen ``__setattr__`` round trips."""

    ctx: int
    offset: int

    def __add__(self, delta: int) -> "E4Addr":
        return E4Addr(self.ctx, self.offset + delta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"E4Addr(ctx={self.ctx}, {self.offset:#x})"


class _CtxTable:
    """Sorted mapping of one context's E4 ranges to host memory."""

    def __init__(self) -> None:
        self.bases: List[int] = []
        #: e4_base -> (space, host_addr, nbytes)
        self.entries: Dict[int, Tuple["AddressSpace", int, int]] = {}
        self.next_base = 0x100000


class Elan4Mmu:
    """The translation unit of one Elan4 NIC.

    ``tlb=True`` (default) adds a look-aside cache over :meth:`translate`:
    the chunked RDMA/QDMA engines resolve the same (ctx, offset) pairs for
    every fragment of a transfer, so repeat lookups skip the bisect walk.
    The cache holds resolved results only — hits and misses return exactly
    what the table walk returns, and any unmap of a context drops that
    context's cached entries wholesale (a registration change must never
    leave a stale translation behind, the §4.1 hazard).
    """

    def __init__(self, tlb: bool = True) -> None:
        self._ctx: Dict[int, _CtxTable] = {}
        self.translations = 0  # total successful lookups (for tests)
        self.traps = 0
        self.tlb_enabled = tlb
        #: ctx -> {e4 offset -> (space, resolved host addr, bytes mapped
        #: beyond the offset)}
        self._tlb: Dict[int, Dict[int, Tuple["AddressSpace", int, int]]] = {}
        self.tlb_hits = 0
        self.tlb_misses = 0

    # -- mapping ---------------------------------------------------------
    @acquires("mmu-registration")
    def map(self, ctx: int, space: "AddressSpace", host_addr: int, nbytes: int) -> E4Addr:
        """Install a translation for ``nbytes`` of host memory; returns the
        E4 address the NIC will use for this range."""
        if nbytes <= 0:
            raise MmuTrap(f"mapping of {nbytes} bytes")
        table = self._ctx.setdefault(ctx, _CtxTable())
        base = table.next_base
        # 8 KB alignment between ranges keeps lookups unambiguous.
        table.next_base += (nbytes + 0x1FFF) & ~0x1FFF
        bisect.insort(table.bases, base)
        table.entries[base] = (space, host_addr, nbytes)
        return E4Addr(ctx, base)

    @acquires("mmu-registration")
    def map_buffer(self, ctx: int, buf) -> E4Addr:
        """Convenience: map a :class:`repro.hw.memory.Buffer`."""
        return self.map(ctx, buf.space, buf.addr, buf.nbytes)

    @releases("mmu-registration")
    def unmap(self, ctx: int, e4: E4Addr) -> None:
        table = self._ctx.get(ctx)
        if table is None or e4.offset not in table.entries:
            raise MmuTrap(f"unmap of unmapped {e4}")
        del table.entries[e4.offset]
        table.bases.remove(e4.offset)
        self._tlb.pop(ctx, None)  # registration change: shoot the whole ctx

    @releases("mmu-registration")
    def unmap_context(self, ctx: int) -> int:
        """Tear down every translation of a context (process finalize /
        restart).  Returns the number of ranges removed."""
        self._tlb.pop(ctx, None)
        table = self._ctx.pop(ctx, None)
        return 0 if table is None else len(table.entries)

    # -- translation -----------------------------------------------------
    def translate(self, e4: E4Addr, nbytes: int) -> Tuple["AddressSpace", int]:
        """Resolve an E4 range to (address space, host address) or trap."""
        ctx_tlb = self._tlb.get(e4.ctx)
        if ctx_tlb is not None:
            hit = ctx_tlb.get(e4.offset)
            if hit is not None and nbytes <= hit[2]:
                self.translations += 1
                self.tlb_hits += 1
                return hit[0], hit[1]
        table = self._ctx.get(e4.ctx)
        if table is not None:
            i = bisect.bisect_right(table.bases, e4.offset) - 1
            if i >= 0:
                base = table.bases[i]
                space, host_addr, size = table.entries[base]
                off = e4.offset - base
                if off + nbytes <= size:
                    self.translations += 1
                    if self.tlb_enabled:
                        self.tlb_misses += 1
                        tlb = self._tlb.get(e4.ctx)
                        if tlb is None:
                            tlb = self._tlb[e4.ctx] = {}
                        tlb[e4.offset] = (space, host_addr + off, size - off)
                    return space, host_addr + off
        self.traps += 1
        raise MmuTrap(f"no translation for {e4} (+{nbytes})")

    def has_context(self, ctx: int) -> bool:
        return ctx in self._ctx and bool(self._ctx[ctx].entries)
