"""Elite-4 switch model.

QsNetII is built from Elan4 NICs and Elite-4 crossbar switches wired as a
quaternary fat tree (§3.1 / [2]).  Each :class:`Elite4Switch` is a radix-8
crossbar (4 down-links + 4 up-links in a fat-tree stage); the topology
builder (:mod:`repro.elan4.fattree`) wires them and precomputes routes.

The fabric charges per-hop routing latency and per-byte serialisation at
the injection link; per-switch output queueing is not modelled (with eight
nodes behind one QS-8A, injection links are the only contended stage for
the paper's point-to-point workloads — multi-switch contention would matter
for the collective/multirail follow-on work the paper defers).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Elite4Switch"]


class Elite4Switch:
    """One crossbar stage element: named ports connected to neighbours."""

    RADIX = 8

    def __init__(self, name: str, radix: int = RADIX):
        self.name = name
        self.radix = radix
        #: port index -> neighbour name (switch or "nic:<i>")
        self.ports: Dict[int, str] = {}
        self.packets_routed = 0
        self.alive = True

    def connect(self, port: int, neighbour: str) -> None:
        if not 0 <= port < self.radix:
            raise ValueError(f"{self.name}: port {port} outside radix {self.radix}")
        if port in self.ports:
            raise ValueError(f"{self.name}: port {port} already wired to {self.ports[port]}")
        self.ports[port] = neighbour

    def port_of(self, neighbour: str) -> Optional[int]:
        for port, name in self.ports.items():
            if name == neighbour:
                return port
        return None

    @property
    def free_ports(self) -> int:
        return self.radix - len(self.ports)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Elite4Switch {self.name} ports={len(self.ports)}/{self.radix}>"
