"""NIC-offloaded barrier driven by chained count-N Elan events.

Reproduces the NIC-based barrier of *Efficient and Scalable Barrier over
Quadrics and Myrinet with a NIC-Based Collective Message Passing Protocol*
(Yu, Buntinas, Graham, Panda — see PAPERS.md): each process arms a
count-N *gather* event on its NIC; arrival tokens from its children in a
radix-``k`` tree fire the event, whose chained operation forwards one
token up the tree — entirely on the NIC event engine, with no host
involvement between the initial doorbell and the final wakeup.  When the
root's gather event triggers, its chain releases everyone with a single
hardware broadcast (the same switch replication :mod:`repro.elan4.hwbcast`
uses), so the release phase costs one injection instead of a software
tree's ⌈log n⌉ serial sends.

Like hardware broadcast, the engine is only available to the
synchronously-joined static cohort (§4.1): tokens are NIC-to-NIC writes at
pre-agreed event addresses, which dynamically-(re)joined processes do not
share.  :class:`HwBarrierGroup` refuses members outside the cohort;
callers (the ``repro.coll`` framework) fall back to software dissemination.

Rounds are disambiguated by a per-member barrier counter carried in every
token, and per-round event state is created lazily on first touch — a
child's token may arrive at a parent NIC before the parent's host has
entered the barrier, which is exactly the case count-N events exist for.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Sequence, Tuple, TYPE_CHECKING

from repro.elan4.event import ChainOp, ElanEvent
from repro.elan4.network import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.elan4.nic import Elan4Context, Elan4Nic

__all__ = ["HwBarrierGroup", "HwBarrierError", "BARRIER_TOKEN_BYTES"]

#: wire footprint of a gather token / release word (one event-write flit)
BARRIER_TOKEN_BYTES = 8

_group_ids = itertools.count(1)


class HwBarrierError(Exception):
    """Late joiner in the group, or misuse of the barrier engine."""


class _RoundState:
    """Per-(member, round) NIC event pair."""

    __slots__ = ("gather", "release")

    def __init__(self, gather: ElanEvent, release: ElanEvent):
        self.gather = gather
        self.release = release


class HwBarrierGroup:
    """A static cohort sharing a NIC-resident barrier tree.

    Member ``i`` (position in the ``members`` sequence) sits at node ``i``
    of a radix-``radix`` tree: parent ``(i - 1) // radix``, children
    ``radix*i + 1 .. radix*i + radix``.  Member 0 is the root.
    """

    def __init__(self, members: Sequence["Elan4Context"], radix: int = 4):
        if not members:
            raise HwBarrierError("empty barrier group")
        if radix < 2:
            raise HwBarrierError(f"barrier tree radix {radix} < 2")
        fabric = members[0].nic.fabric
        capability = members[0].nic.capability
        for ctx in members:
            if ctx.nic.fabric is not fabric:
                raise HwBarrierError("barrier group must live on one rail")
            if not capability.in_static_cohort(ctx.vpid):
                raise HwBarrierError(
                    f"vpid {ctx.vpid} joined dynamically: no pre-agreed NIC "
                    "event addresses, hardware barrier unavailable (§4.1)"
                )
        self.group_id = next(_group_ids)
        self.members = list(members)
        self.fabric = fabric
        self.radix = radix
        self.dst_nodes = sorted({ctx.nic.node_id for ctx in self.members})
        #: (member index, round) -> lazily-created event pair
        self._rounds: Dict[Tuple[int, int], _RoundState] = {}
        #: per-member host-side barrier counter
        self._host_round: List[int] = [0] * len(self.members)
        self._member_of = {ctx.vpid: i for i, ctx in enumerate(self.members)}
        self.barriers_completed = 0

    # -- tree shape --------------------------------------------------------
    def children_of(self, member: int) -> List[int]:
        lo = self.radix * member + 1
        return [c for c in range(lo, lo + self.radix) if c < len(self.members)]

    def parent_of(self, member: int) -> int:
        return (member - 1) // self.radix

    # -- NIC-side state ----------------------------------------------------
    def _round_state(self, member: int, rnd: int) -> _RoundState:
        key = (member, rnd)
        st = self._rounds.get(key)
        if st is not None:
            return st
        ctx = self.members[member]
        nchildren = len(self.children_of(member))
        # count-N: one fire per child token plus the local host arrival
        gather = ctx.make_event(
            count=nchildren + 1,
            name=f"hwbarrier:g{self.group_id}:m{member}:r{rnd}:gather",
        )
        release = ctx.make_event(
            count=1,
            name=f"hwbarrier:g{self.group_id}:m{member}:r{rnd}:release",
        )
        release.attach_host_word()
        if member == 0:
            gather.chain(
                ChainOp(
                    description=f"hwbarrier:g{self.group_id}:r{rnd}:hw-release",
                    run=lambda: self._broadcast_release(rnd),
                )
            )
        else:
            parent = self.parent_of(member)
            gather.chain(
                ChainOp(
                    description=(
                        f"hwbarrier:g{self.group_id}:m{member}:r{rnd}:token-up"
                    ),
                    run=lambda: self._send_token(member, parent, rnd),
                )
            )
        st = _RoundState(gather, release)
        self._rounds[key] = st
        return st

    def _send_token(self, child: int, parent: int, rnd: int) -> None:
        """NIC event-engine callback: forward one arrival token up the tree."""
        src_nic = self.members[child].nic
        dst_nic = self.members[parent].nic
        if dst_nic is src_nic:
            # parent context lives on the same NIC: a local event write,
            # charged at the event-engine write cost
            src_nic.sim.schedule(
                src_nic.config.nic_event_us,
                self._round_state(parent, rnd).gather.fire,
            )
            return
        self.fabric.transmit_from_nic(
            Packet(
                src_node=src_nic.node_id,
                dst_node=dst_nic.node_id,
                nbytes=BARRIER_TOKEN_BYTES,
                kind="hwbarrier",
                meta={
                    "group": self.group_id,
                    "phase": "gather",
                    "member": parent,
                    "round": rnd,
                },
            )
        )

    def _broadcast_release(self, rnd: int) -> None:
        """NIC event-engine callback at the root: one hardware broadcast
        releases every member (the root's own NIC included)."""
        root_nic = self.members[0].nic
        pkt = Packet(
            src_node=root_nic.node_id,
            dst_node=-1,  # filled per destination by the fabric
            nbytes=BARRIER_TOKEN_BYTES,
            kind="hwbarrier",
            meta={"group": self.group_id, "phase": "release", "round": rnd},
        )
        root_nic.sim.spawn(
            self.fabric.broadcast(pkt, self.dst_nodes),
            name=f"hwbarrier:g{self.group_id}:release",
        )

    def _on_packet(self, nic: "Elan4Nic", pkt: Packet) -> None:
        rnd = pkt.meta["round"]
        phase = pkt.meta["phase"]
        if phase == "gather":
            self._round_state(pkt.meta["member"], rnd).gather.fire()
        elif phase == "release":
            for i, ctx in enumerate(self.members):
                if ctx.nic is nic:
                    self._round_state(i, rnd).release.fire()
        else:  # pragma: no cover - defensive
            nic.drop_packet(pkt, reason=f"hwbarrier: unknown phase {phase!r}")

    # -- host side ---------------------------------------------------------
    def barrier(self, thread, ctx: "Elan4Context", guard=None) -> Generator:
        """Coroutine (member's host thread): enter the barrier and block
        until the root's hardware-broadcast release.

        ``guard`` (a ``repro.ft`` communicator state) makes the release
        wait abortable: a member death or revoke raises out of the wait
        instead of sleeping forever on a release that can never arrive.
        """
        member = self._member_of.get(ctx.vpid)
        if member is None:
            raise HwBarrierError(f"vpid {ctx.vpid} is not a group member")
        rnd = self._host_round[member]
        self._host_round[member] += 1
        st = self._round_state(member, rnd)
        nic = ctx.nic
        # one doorbell arms the NIC; everything until the release trigger
        # runs on the event engines
        yield from nic.pci.pio_write()
        yield thread.sim.timeout(nic.config.nic_cmd_process_us)
        st.gather.fire()
        if guard is None:
            yield from st.release.host_wait(thread)
        else:
            yield from guard.block_on_word(thread, st.release.host_word)
        # the round is complete for this member: drop its event pair
        del self._rounds[(member, rnd)]
        if member == 0:
            self.barriers_completed += 1
        return None

    # -- receive plumbing --------------------------------------------------
    def install_receivers(self) -> None:
        """Register the per-NIC dispatch for gather tokens and releases."""
        seen = []
        for ctx in self.members:
            nic = ctx.nic
            if any(nic is n for n in seen):
                continue
            seen.append(nic)
            handlers = nic._dispatch
            if "hwbarrier" not in handlers:
                handlers["hwbarrier"] = _make_node_handler(nic)
            registry = getattr(nic, "_hwbarrier_groups", None)
            if registry is None:
                registry = nic._hwbarrier_groups = {}
            registry[self.group_id] = self


def _make_node_handler(nic: "Elan4Nic"):
    def handle(pkt: Packet) -> None:
        group = getattr(nic, "_hwbarrier_groups", {}).get(pkt.meta["group"])
        if group is None:
            nic.drop_packet(
                pkt, reason=f"hwbarrier for unknown group {pkt.meta['group']}"
            )
            return
        group._on_packet(nic, pkt)

    return handle


def make_group(
    members: Sequence["Elan4Context"], radix: int = 4
) -> HwBarrierGroup:
    """Create a group and install its receive plumbing in one call."""
    group = HwBarrierGroup(members, radix=radix)
    group.install_receivers()
    return group
