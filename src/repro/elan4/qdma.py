"""Queue-based DMA (QDMA).

"QDMA allows processes to post messages (up to 2KB) to a remote queue of
other processes" (§3.1).  A :class:`QdmaQueue` is a ring of host-memory
QSLOTS owned by a receiving process; remote (or local) processes post
messages into it; arrivals set the queue's host event, which the owner polls
or blocks on — "QDMA allows a process to check incoming QDMA messages posted
by any process into its receive queue" (§4.3).

Two producers exist:

* **host-issued sends** (:meth:`QdmaEngine.host_send`) — the normal path:
  PIO command, NIC fetches the payload from host memory over PCI-X, packet
  crosses the fabric, receiving NIC DMAs it into a free QSLOT;
* **NIC-issued chained sends** (:meth:`QdmaEngine.chained_command`) — a
  small message sent *by the event engine* when an RDMA completes, with no
  host involvement and no source-side PCI crossing (the payload lives in
  Elan memory).  This is the mechanism behind both the fast FIN/FIN_ACK and
  the shared completion queue (§4.2–4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, TYPE_CHECKING

import numpy as np

from repro.elan4.event import ChainOp, ElanEvent
from repro.elan4.network import Packet
from repro.hw.cpu import HostWordEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.elan4.nic import Elan4Nic
    from repro.hw.memory import Buffer

__all__ = ["QdmaQueue", "QdmaMessage", "QdmaEngine", "QdmaError"]


class QdmaError(Exception):
    """Oversized message, unknown queue, or use of a destroyed queue."""


def _as_u8(payload) -> np.ndarray:
    """Coerce bytes/bytearray/ndarray payloads to a flat uint8 array."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return np.frombuffer(payload, dtype=np.uint8)
    return np.asarray(payload, dtype=np.uint8).ravel()


@dataclass
class QdmaMessage:
    """One received QDMA message, as the host dequeues it."""

    src_vpid: int
    nbytes: int
    data: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)
    arrived_at: float = 0.0


class QdmaQueue:
    """A receive queue of QSLOTS in one process's host memory."""

    def __init__(
        self,
        nic: "Elan4Nic",
        ctx: int,
        queue_id: int,
        nslots: int,
        slot_buffers: List["Buffer"],
    ):
        self.nic = nic
        self.ctx = ctx
        self.queue_id = queue_id
        self.nslots = nslots
        self.slot_buffers = slot_buffers
        self.slot_bytes = nic.config.qslot_bytes
        self.free_slots = nslots
        #: deliveries that have taken a slot but not yet enqueued their
        #: message (payload DMA in progress) — the leak sanitizer's slot
        #: invariant is ``nslots - free_slots == len(_ready) + inflight``
        self.inflight_deliveries = 0
        self._ready: Deque[QdmaMessage] = deque()
        self._overflow: Deque[Packet] = deque()
        #: set on every arrival; polled or blocked on by the owner
        self.host_event = HostWordEvent(nic.sim, name=f"q{ctx:#x}.{queue_id}")
        self.interrupt_armed = False
        self.destroyed = False
        self.arrivals = 0

    # -- host side ---------------------------------------------------------
    def poll(self) -> Optional[QdmaMessage]:
        """Dequeue the next message, or None.  Frees its QSLOT (admitting a
        buffered overflow packet, if any)."""
        if not self._ready:
            if not self._overflow:
                self.host_event.clear()
            return None
        msg = self._ready.popleft()
        self._free_slot()
        if not self._ready:
            self.host_event.clear()
        return msg

    def arm_interrupt(self, armed: bool = True) -> None:
        """Deliver arrivals via interrupt (blocking progress modes)."""
        self.interrupt_armed = armed

    def pending(self) -> int:
        return len(self._ready)

    def destroy(self) -> None:
        """Tear the queue down: undelivered messages are discarded and
        every QSLOT returns to the pool (messages in ``_ready`` each held
        one; deliveries still in flight see ``destroyed`` and abandon
        theirs without re-touching the accounting)."""
        self.destroyed = True
        self._ready.clear()
        self._overflow.clear()
        self.free_slots = self.nslots
        self.inflight_deliveries = 0

    # -- NIC side ------------------------------------------------------------
    def _free_slot(self) -> None:
        self.free_slots += 1
        if self._overflow:
            pkt = self._overflow.popleft()
            self.nic.qdma._start_delivery(self, pkt)

    def _enqueue(self, msg: QdmaMessage) -> None:
        self._ready.append(msg)
        self.arrivals += 1
        if self.interrupt_armed:
            self.nic.node.raise_interrupt(self.host_event, None)
        else:
            self.host_event.set()


class QdmaEngine:
    """The QDMA machinery of one NIC."""

    def __init__(self, nic: "Elan4Nic"):
        self.nic = nic
        self.sim = nic.sim
        self.config = nic.config
        #: (ctx, queue_id) -> QdmaQueue
        self.queues: Dict[tuple, QdmaQueue] = {}
        self.sends = 0
        self.chained_sends = 0

    # -- queue management ------------------------------------------------
    def create_queue(self, ctx: int, queue_id: int, nslots: int, space) -> QdmaQueue:
        key = (ctx, queue_id)
        if key in self.queues:
            raise QdmaError(f"queue {queue_id} already exists in ctx {ctx:#x}")
        slot_bytes = self.config.qslot_bytes
        slots = [
            space.alloc(slot_bytes, label=f"qslot{queue_id}.{i}") for i in range(nslots)
        ]
        q = QdmaQueue(self.nic, ctx, queue_id, nslots, slots)
        self.queues[key] = q
        return q

    def destroy_queue(self, ctx: int, queue_id: int) -> None:
        q = self.queues.pop((ctx, queue_id), None)
        if q is None:
            raise QdmaError(f"destroy of unknown queue ({ctx:#x}, {queue_id})")
        q.destroy()

    def destroy_context_queues(self, ctx: int) -> int:
        keys = [k for k in self.queues if k[0] == ctx]
        for k in keys:
            self.queues.pop(k).destroy()
        return len(keys)

    # -- host-issued send ----------------------------------------------------
    def host_send(
        self,
        thread,
        src_vpid: int,
        dst_vpid: int,
        queue_id: int,
        payload: np.ndarray,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Generator:
        """Coroutine (host thread context): post ``payload`` to the remote
        queue.  Returns an :class:`ElanEvent` that fires when the source NIC
        has finished fetching the payload — i.e. when the host send buffer
        is reusable."""
        payload = _as_u8(payload)
        nbytes = payload.nbytes
        if nbytes > self.config.qslot_bytes:
            raise QdmaError(
                f"QDMA message of {nbytes} B exceeds the {self.config.qslot_bytes} B "
                "QSLOT limit; use RDMA for longer transfers (paper §3.1)"
            )
        done = ElanEvent(self.nic, count=1, name=f"qdma-send@{src_vpid}")
        # building the command resolves the destination VPID: a released
        # (restarted) peer raises here, at the sender, never silently
        self.nic.resolve_vpid(dst_vpid)
        # host: write the command descriptor (doorbell) across PCI-X
        yield from self.nic.pci.pio_write()
        src_ctx = self.nic.ctx_of_vpid(src_vpid)
        self.nic.track_pending(src_ctx)
        self.sim.schedule(
            self.config.nic_cmd_process_us,
            self._nic_send,
            src_ctx,
            src_vpid,
            dst_vpid,
            queue_id,
            payload,
            dict(meta or {}),
            done,
            True,
        )
        return done

    def chained_command(
        self,
        src_vpid: int,
        dst_vpid: int,
        queue_id: int,
        payload: np.ndarray,
        meta: Optional[Dict[str, Any]] = None,
    ) -> ChainOp:
        """Build a chained-QDMA :class:`ChainOp`: when the event it is
        chained to triggers, the NIC posts ``payload`` (held in Elan memory,
        no host fetch) to the destination queue."""
        payload = _as_u8(payload)
        if payload.nbytes > self.config.qslot_bytes:
            raise QdmaError("chained QDMA payload exceeds QSLOT size")
        frozen_meta = dict(meta or {})

        def run() -> None:
            self.chained_sends += 1
            src_ctx = self.nic.ctx_of_vpid(src_vpid)
            self.nic.track_pending(src_ctx)
            self.sim.schedule(
                self.config.nic_cmd_process_us,
                self._nic_send,
                src_ctx,
                src_vpid,
                dst_vpid,
                queue_id,
                payload,
                frozen_meta,
                None,
                False,
            )

        return ChainOp(description=f"chained-qdma->{dst_vpid}/q{queue_id}", run=run)

    # -- NIC internals ---------------------------------------------------------
    def _nic_send(
        self,
        src_ctx: int,
        src_vpid: int,
        dst_vpid: int,
        queue_id: int,
        payload: np.ndarray,
        meta: Dict[str, Any],
        done: Optional[ElanEvent],
        fetch_host: bool,
    ) -> None:
        def run() -> Generator:
            from repro.elan4.capability import CapabilityError

            self.sends += 1
            obs = self.nic.obs
            obs_t0 = self.sim.now if obs is not None else 0.0
            # The pending slot taken at command issue must come back on
            # *every* exit — including fault-injection aborts (rail down
            # mid-transmit, partitioned fabric), where a stranded slot
            # would wedge the §4.1 finalization drain forever.
            try:
                if fetch_host and payload.nbytes > 0:
                    # cut-through fetch of the payload from host memory
                    yield from self.nic.stream_dma(payload.nbytes)
                try:
                    dst_ctx = self.nic.resolve_vpid(dst_vpid)
                except CapabilityError:
                    # the destination vanished between command issue and NIC
                    # processing: the route no longer exists, so the packet is
                    # discarded here (the host-side API validates loudly; the
                    # end-to-end reliability layer recovers when it matters)
                    self.nic.drop_packet(
                        Packet(self.nic.node_id, -1, payload.nbytes, "qdma",
                               meta=dict(meta)),
                        reason=f"destination vpid {dst_vpid} released",
                    )
                    if done is not None:
                        done.fire()
                    return
                pkt = Packet(
                    src_node=self.nic.node_id,
                    dst_node=dst_ctx.node_id,
                    nbytes=payload.nbytes,
                    kind="qdma",
                    meta={
                        "src_vpid": src_vpid,
                        "dst_ctx": dst_ctx.ctx,
                        "queue_id": queue_id,
                        **meta,
                    },
                    data=payload.copy(),
                )
                if obs is not None and meta.get("obs_tid") is not None:
                    # source-NIC work: command processing + host payload
                    # fetch over PCI, up to fabric injection
                    obs.flight_span(
                        meta["obs_tid"],
                        "nic",
                        "tx",
                        obs_t0,
                        node=self.nic.node_id,
                        nbytes=payload.nbytes,
                    )
                yield from self.nic.fabric.transmit(pkt)
                if done is not None:
                    done.fire()
            finally:
                self.nic.untrack_pending(src_ctx)

        self.sim.spawn(run(), name="qdma-send")

    # -- NIC receive path ----------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        key = (pkt.meta["dst_ctx"], pkt.meta["queue_id"])
        q = self.queues.get(key)
        if q is None or q.destroyed:
            self.nic.drop_packet(pkt, reason=f"no queue {key}")
            return
        if q.free_slots == 0:
            q._overflow.append(pkt)
            return
        self._start_delivery(q, pkt)

    def _start_delivery(self, q: QdmaQueue, pkt: Packet) -> None:
        q.free_slots -= 1
        q.inflight_deliveries += 1
        t_rx0 = self.sim.now if self.nic.obs is not None else 0.0

        def run() -> Generator:
            # cut-through DMA of the payload into the QSLOT host memory
            yield from self.nic.stream_dma(pkt.nbytes)
            if q.destroyed:
                # destroyed mid-delivery (context finalize / fault abort):
                # destroy() already reset the slot accounting, so just drop
                self.nic.drop_packet(pkt, reason="queue destroyed mid-delivery")
                return
            slot = q.slot_buffers[(q.arrivals + len(q._ready)) % q.nslots]
            if pkt.data is not None and pkt.data.nbytes:
                slot.write(pkt.data[: slot.nbytes])
            yield self.sim.timeout(self.config.nic_deliver_us)
            if q.destroyed:
                self.nic.drop_packet(pkt, reason="queue destroyed mid-delivery")
                return
            q.inflight_deliveries -= 1
            obs = self.nic.obs
            if obs is not None and pkt.meta.get("obs_tid") is not None:
                # destination-NIC work: QSLOT DMA + delivery to the queue
                obs.flight_span(
                    pkt.meta["obs_tid"],
                    "nic",
                    "rx",
                    t_rx0,
                    node=self.nic.node_id,
                    nbytes=pkt.nbytes,
                )
            msg = QdmaMessage(
                src_vpid=pkt.meta["src_vpid"],
                nbytes=pkt.nbytes,
                data=pkt.data if pkt.data is not None else np.empty(0, np.uint8),
                meta={
                    k: v
                    for k, v in pkt.meta.items()
                    if k not in ("src_vpid", "dst_ctx", "queue_id")
                },
                arrived_at=self.sim.now,
            )
            q._enqueue(msg)

        self.sim.spawn(run(), name="qdma-deliver")
