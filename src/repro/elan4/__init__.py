"""The Quadrics QsNetII / Elan4 substrate.

Implements, as a deterministic simulation, every Elan4 mechanism the paper's
PTL design uses or contrasts against:

* **E4 addressing and the NIC MMU** (:mod:`repro.elan4.addr`) — RDMA
  descriptors carry addresses "transformed and presented in a different
  format (E4 Addr)" translated by the NIC's MMU (§4.2);
* **capabilities, contexts and VPIDs** (:mod:`repro.elan4.capability`) —
  the system-wide capability from which processes claim contexts, enabling
  dynamic joining (§5);
* **Elan events** (:mod:`repro.elan4.event`) — host/elan events, count-N
  events with their non-atomic reset race (Fig. 5), and chained events that
  trigger one operation on the completion of another (§3.1);
* **QDMA** (:mod:`repro.elan4.qdma`) — queue-based DMA of messages up to
  2 KB into remote receive queues of QSLOTS (§3.1, §5);
* **RDMA read/write** (:mod:`repro.elan4.rdma`) — arbitrary-size remote
  memory access with per-descriptor completion events and chained
  continuations (§4.2);
* **Tport** (:mod:`repro.elan4.tport`) — NIC-based tag matching with
  fragment pipelining, the substrate of MPICH-QsNetII (§6.5);
* **the QsNetII fabric** (:mod:`repro.elan4.switch`,
  :mod:`repro.elan4.fattree`, :mod:`repro.elan4.network`) — Elite-4
  switches in a quaternary fat tree;
* **the Elan4 NIC itself** (:mod:`repro.elan4.nic`) — command queue, DMA
  engines, event engine, interrupt delivery.
"""

from repro.elan4.addr import E4Addr, Elan4Mmu, MmuTrap
from repro.elan4.capability import CapabilityError, ElanCapability
from repro.elan4.event import ChainOp, ElanEvent, EventRaceError
from repro.elan4.network import Fabric, Packet
from repro.elan4.fattree import build_quaternary_fat_tree
from repro.elan4.switch import Elite4Switch
from repro.elan4.hwbcast import HwBcastError, HwBroadcastGroup
from repro.elan4.nic import Elan4Context, Elan4Nic
from repro.elan4.qdma import QdmaMessage, QdmaQueue
from repro.elan4.rdma import RdmaDescriptor
from repro.elan4.tport import TportEndpoint, TportMessage

__all__ = [
    "CapabilityError",
    "ChainOp",
    "E4Addr",
    "Elan4Context",
    "Elan4Mmu",
    "Elan4Nic",
    "ElanCapability",
    "ElanEvent",
    "Elite4Switch",
    "EventRaceError",
    "Fabric",
    "HwBcastError",
    "HwBroadcastGroup",
    "MmuTrap",
    "Packet",
    "QdmaMessage",
    "QdmaQueue",
    "RdmaDescriptor",
    "TportEndpoint",
    "TportMessage",
    "build_quaternary_fat_tree",
]
