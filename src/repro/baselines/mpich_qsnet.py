"""MPICH-QsNetII: the paper's comparator (§6.5).

MPICH for QsNetII "is built on top of Quadrics T-port interface, which does
tag matching in the NIC" and "transmits a shorter header, 32-bytes,
compared to the 64-bytes in Open MPI".  Its strengths in Fig. 10 follow
directly: lower small-message latency (NIC matching + direct deposit into
the user buffer + half the header) and better mid-range bandwidth (Tport's
NIC-side rendezvous pipelines fragments with no per-fragment host work).

Its structural limits are equally faithful here: it is a **static** libelan
job — every process claims its context up front, the VPID↔rank coupling is
fixed, and there is no dynamic join, spawn, or restart ("Change of the
membership and connections among MPI processes usually aborts the parallel
job", §7).  Attempting to add a process raises.

The API mirrors the repro MPI surface closely enough that the benchmark
harness can drive both stacks with the same driver.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from repro.elan4.tport import ANY_SOURCE, ANY_TAG, TportMessage

__all__ = ["MpichQsnetJob", "MpichQsnetApi"]


class MpichQsnetJob:
    """A static MPICH-QsNetII parallel job on a simulated cluster."""

    def __init__(self, cluster, np: Optional[int] = None):
        self.cluster = cluster
        n = cluster.n_nodes if np is None else np
        # static allocation: the whole process pool claims its contexts and
        # builds the VPID table before anything runs — the libelan model
        self.contexts = [
            cluster.claim_context(rank % cluster.n_nodes) for rank in range(n)
        ]
        self.endpoints = [ctx.tport_endpoint() for ctx in self.contexts]
        self.vpids = [ctx.vpid for ctx in self.contexts]
        self.size = n
        self._sealed = True
        self.results: Dict[int, object] = {}
        self._failures: List[BaseException] = []

    def add_process(self) -> None:
        """Dynamic joining is exactly what this implementation cannot do."""
        raise RuntimeError(
            "MPICH-QsNetII is a static libelan job: process membership "
            "cannot change (paper §3.2/§7)"
        )

    def run(self, app: Callable, until: Optional[float] = None) -> Dict[int, object]:
        """Run ``app(api)`` on every rank; returns rank -> result."""
        finished: Dict[int, bool] = {}

        for rank in range(self.size):
            api = MpichQsnetApi(self, rank)
            node = self.cluster.nodes[rank % self.cluster.n_nodes]

            def body(thread, api=api, rank=rank):
                api.thread = thread
                try:
                    self.results[rank] = yield from app(api)
                except BaseException as e:  # noqa: BLE001
                    self._failures.append(e)
                    raise
                finally:
                    finished[rank] = True

            node.spawn_thread(body, name=f"mpich-rank{rank}")

        self.cluster.sim.run(until=until)
        if self._failures:
            raise self._failures[0]
        if len(finished) != self.size:
            missing = [r for r in range(self.size) if r not in finished]
            raise RuntimeError(f"MPICH job deadlock: ranks {missing} unfinished")
        return dict(self.results)


class MpichQsnetApi:
    """Per-rank handle: a thin MPI veneer over Tport."""

    def __init__(self, job: MpichQsnetJob, rank: int):
        self.job = job
        self.rank = rank
        self.size = job.size
        self.endpoint = job.endpoints[rank]
        self.context = job.contexts[rank]
        self.sim = job.cluster.sim
        self.config = job.cluster.config
        self.thread = None  # bound at launch

    @property
    def now(self) -> float:
        return self.sim.now

    def alloc(self, nbytes: int, label: str = "user"):
        return self.context.space.alloc(max(nbytes, 1), label=label)

    # -- point-to-point ------------------------------------------------------
    def isend(self, buf, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> Generator:
        """Coroutine: start a tagged send; returns the Tport done event."""
        n = buf.nbytes if nbytes is None else nbytes
        # the thin MPICH ADI layer above Tport
        yield from self.thread.compute(self.config.pml_sched_us)
        ev = yield from self.endpoint.send(
            self.thread, self.job.vpids[dest], tag, buf, n
        )
        ev.attach_host_word()
        return ev

    def _spin_on(self, word) -> Generator:
        """Polling wait (CPU held), as MPICH-QsNetII progresses by default."""
        while not word.poll():
            yield word.wait_event()
            yield from self.thread.compute(self.config.poll_check_us)
        value = word.value
        word.clear()
        return value

    def send(self, buf, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> Generator:
        ev = yield from self.isend(buf, dest, tag, nbytes)
        yield from self._spin_on(ev.host_word)

    def irecv(self, buf, source: int = -1, tag: int = -1) -> Generator:
        """Coroutine: post a receive into NIC matching; returns the event
        whose value is a :class:`TportMessage`."""
        yield from self.thread.compute(self.config.pml_sched_us)
        src_vpid = ANY_SOURCE if source == -1 else self.job.vpids[source]
        ev = yield from self.endpoint.post_recv(self.thread, src_vpid, tag, buf)
        return ev

    def recv(self, buf, source: int = -1, tag: int = -1) -> Generator:
        """Coroutine: blocking receive; returns the TportMessage (source
        reported as a rank)."""
        ev = yield from self.irecv(buf, source, tag)
        msg: TportMessage = yield from self._spin_on(ev.host_word)
        return TportMessage(
            src_vpid=self.job.vpids.index(msg.src_vpid),  # vpid -> rank
            tag=msg.tag,
            nbytes=msg.nbytes,
        )

    def wait(self, ev) -> Generator:
        """Wait (polling) on an event returned by isend/irecv."""
        value = yield from self._spin_on(ev.host_word)
        return value

    def barrier_pair(self, other: int, tag: int = 0x7FF0) -> Generator:
        """Two-rank synchronisation used by the benchmark drivers."""
        token = self.alloc(1)
        if self.rank < other:
            yield from self.send(token, other, tag, nbytes=0)
            yield from self.recv(token, source=other, tag=tag)
        else:
            yield from self.recv(token, source=other, tag=tag)
            yield from self.send(token, other, tag, nbytes=0)
