"""Baseline systems the paper compares against."""

from repro.baselines.mpich_qsnet import MpichQsnetJob, MpichQsnetApi

__all__ = ["MpichQsnetApi", "MpichQsnetJob"]
