"""Benchmark harness regenerating every figure and table of §6.

One module per experiment:

* :mod:`repro.bench.harness`   — ping-pong / streaming-bandwidth drivers for
  the Open MPI stack, the MPICH-QsNetII baseline, and native QDMA;
* :mod:`repro.bench.fig7`      — RDMA read/write, DTP, inline ablations;
* :mod:`repro.bench.fig8`      — chained DMA + shared completion queues;
* :mod:`repro.bench.fig9`      — layer-cost decomposition (§6.3);
* :mod:`repro.bench.table1`    — thread-based asynchronous progress (§6.4);
* :mod:`repro.bench.fig10`     — overall latency/bandwidth vs MPICH-QsNetII;
* :mod:`repro.bench.reporting` — ASCII tables with paper-vs-measured columns.

Each experiment module exposes ``run()`` returning a result dict and
``report(results)`` rendering the same rows/series the paper plots.
"""

from repro.bench.harness import (
    mpich_bandwidth,
    mpich_pingpong,
    openmpi_bandwidth,
    openmpi_pingpong,
    qdma_native_pingpong,
)
from repro.bench.reporting import format_series_table, format_table

__all__ = [
    "format_series_table",
    "format_table",
    "mpich_bandwidth",
    "mpich_pingpong",
    "openmpi_bandwidth",
    "openmpi_pingpong",
    "qdma_native_pingpong",
]
