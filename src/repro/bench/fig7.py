"""Fig. 7 — Performance analysis of basic RDMA read and write (§6.1).

Six variants over two size panels (a: 0–512 B, b: 512 B–4 KB):

* ``RDMA-Read`` / ``RDMA-Write`` — the two rendezvous schemes with inlined
  first-fragment data and the plain-memcpy datatype path;
* ``Read-NoInline`` / ``Write-NoInline`` — the paper's optimisation:
  rendezvous without inlined data;
* ``Read-DTP`` / ``Write-DTP`` — with the datatype copy engine.

Below the 1984 B rendezvous threshold every message is eager, so the
scheme/inline variants coincide there and the DTP overhead (~0.4 µs) is the
visible split — exactly the structure of the paper's panel (a).  Above the
threshold the schemes separate: read beats write (one control packet saved)
and no-inline beats inline (no pack copy).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.harness import openmpi_pingpong
from repro.bench.reporting import format_series_table
from repro.core.ptl.elan4.module import Elan4PtlOptions

__all__ = ["run", "report", "SMALL_SIZES", "MEDIUM_SIZES", "VARIANTS", "PAPER_REFERENCE"]

SMALL_SIZES = [0, 2, 4, 8, 16, 32, 64, 128, 256, 512]
MEDIUM_SIZES = [512, 1024, 1984, 2048, 4096]

#: variant name -> (rdma_scheme, inline_rndv_data, datatype_mode)
VARIANTS = {
    "RDMA-Read": ("read", True, "memcpy"),
    "Read-NoInline": ("read", False, "memcpy"),
    "Read-DTP": ("read", True, "dtp"),
    "RDMA-Write": ("write", True, "memcpy"),
    "Write-NoInline": ("write", False, "memcpy"),
    "Write-DTP": ("write", True, "dtp"),
}

#: values read off the paper's plots (±0.3 µs digitisation error)
PAPER_REFERENCE = {
    "RDMA-Read": {0: 3.6, 64: 3.9, 512: 4.8, 4096: 14.0},
    "Read-DTP": {0: 4.0, 64: 4.3, 512: 5.2, 4096: 14.5},
    "RDMA-Write": {4096: 15.5},
}


def run(sizes: Optional[Iterable[int]] = None, iters: int = 8) -> Dict[str, Dict[int, float]]:
    """Measure every variant at every size; returns {variant: {size: µs}}."""
    sizes = list(sizes) if sizes is not None else sorted(set(SMALL_SIZES + MEDIUM_SIZES))
    results: Dict[str, Dict[int, float]] = {}
    for name, (scheme, inline, dtmode) in VARIANTS.items():
        opts = Elan4PtlOptions(
            rdma_scheme=scheme, inline_rndv_data=inline, chained_fin=True,
            completion_queue="none",
        )
        results[name] = {
            n: openmpi_pingpong(n, iters=iters, elan4_options=opts, datatype_mode=dtmode)
            for n in sizes
        }
    return results


def report(results: Dict[str, Dict[int, float]]) -> str:
    small = {k: {s: v for s, v in vals.items() if s <= 512} for k, vals in results.items()}
    med = {k: {s: v for s, v in vals.items() if s >= 512} for k, vals in results.items()}
    return "\n\n".join(
        [
            format_series_table(
                "Fig. 7(a) — very small messages (one-way latency)",
                small,
                reference=PAPER_REFERENCE,
                note="below the 1984 B threshold all traffic is eager: scheme/"
                "inline variants coincide; DTP adds ~0.4 us",
            ),
            format_series_table(
                "Fig. 7(b) — small messages (one-way latency)",
                med,
                reference=PAPER_REFERENCE,
                note="above 1984 B: read < write (saves a control packet); "
                "no-inline < inline (saves the pack copy)",
            ),
        ]
    )


def check_shape(results: Dict[str, Dict[int, float]]) -> None:
    """Assert the paper's qualitative findings hold."""
    available = set(results["RDMA-Read"])
    # DTP overhead ≈ 0.4 µs on eager messages
    for n in sorted(available & {0, 64, 512}):
        delta = results["Read-DTP"][n] - results["RDMA-Read"][n]
        assert 0.2 < delta < 0.7, (n, delta)
    # read beats write above the threshold
    for n in sorted(available & {2048, 4096}):
        assert results["RDMA-Read"][n] < results["RDMA-Write"][n], n
    # no-inline beats inline above the threshold
    for n in sorted(available & {2048, 4096}):
        assert results["Read-NoInline"][n] < results["RDMA-Read"][n], n
        assert results["Write-NoInline"][n] < results["RDMA-Write"][n], n
