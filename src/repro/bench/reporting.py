"""ASCII reporting: the same rows/series the paper prints, with optional
paper-reference columns for at-a-glance shape checking."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series_table", "human_size"]


def human_size(n: int) -> str:
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}M"
    if n >= 1024 and n % 1024 == 0:
        return f"{n >> 10}K"
    return str(n)


def format_table(
    title: str,
    col_names: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """A fixed-width table with a title rule."""
    rows = [list(map(_fmt, r)) for r in rows]
    widths = [
        max(len(str(col_names[i])), max((len(r[i]) for r in rows), default=0))
        for i in range(len(col_names))
    ]
    sep = "  "
    header = sep.join(str(c).rjust(w) for c, w in zip(col_names, widths))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for r in rows:
        lines.append(sep.join(v.rjust(w) for v, w in zip(r, widths)))
    lines.append(rule)
    if note:
        lines.append(note)
    return "\n".join(lines)


def format_series_table(
    title: str,
    series: Mapping[str, Mapping[int, float]],
    unit: str = "us",
    reference: Optional[Mapping[str, Mapping[int, float]]] = None,
    note: str = "",
) -> str:
    """Render ``{series_name: {size: value}}`` with sizes as rows.

    When ``reference`` (the paper's reported values) is given, its columns
    are interleaved as ``name (paper)``.
    """
    sizes = sorted({s for vals in series.values() for s in vals})
    cols = ["size"]
    for name in series:
        cols.append(f"{name} [{unit}]")
        if reference and name in reference:
            cols.append(f"{name} (paper)")
    rows = []
    for size in sizes:
        row: List = [human_size(size)]
        for name, vals in series.items():
            row.append(vals.get(size, ""))
            if reference and name in reference:
                row.append(reference[name].get(size, ""))
        rows.append(row)
    return format_table(title, cols, rows, note=note)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
