"""Fig. 10 — overall performance of Open MPI over Quadrics/Elan4 vs
MPICH-QsNetII (§6.5).

Four panels: small/large message latency, small/large message bandwidth.
The Open MPI stack runs with the paper's "best options": chained
completion, polling progress, no shared completion queue, rendezvous
without inlined data.  Series: MPICH-QsNetII, PTL/Elan4-RDMA-Read,
PTL/Elan4-RDMA-Write.

Expected shape (paper): MPICH-QsNetII wins small messages (32 B header +
NIC tag matching); Open MPI is "slightly lower but comparable", worst in
the middle range of bandwidth (Tport pipelining), converging at 1 MB near
the PCI-X ceiling (~900 MB/s).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.harness import (
    mpich_bandwidth,
    mpich_pingpong,
    openmpi_bandwidth,
    openmpi_pingpong,
)
from repro.bench.reporting import format_series_table
from repro.core.ptl.elan4.module import Elan4PtlOptions

__all__ = ["run_latency", "run_bandwidth", "report", "SMALL_SIZES", "LARGE_SIZES"]

SMALL_SIZES = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
LARGE_SIZES = [2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576]

READ = Elan4PtlOptions(rdma_scheme="read", inline_rndv_data=False,
                       chained_fin=True, completion_queue="none")
WRITE = Elan4PtlOptions(rdma_scheme="write", inline_rndv_data=False,
                        chained_fin=True, completion_queue="none")

#: values read off the paper's plots (± digitisation error)
PAPER_LATENCY = {
    "MPICH-QsNetII": {0: 1.8, 1024: 5.0, 1048576: 1150.0},
    "PTL/Elan4-RDMA-Read": {0: 3.0, 1024: 6.0, 1048576: 1200.0},
}
PAPER_BANDWIDTH = {
    "MPICH-QsNetII": {1024: 450.0, 65536: 800.0, 1048576: 905.0},
    "PTL/Elan4-RDMA-Read": {1024: 330.0, 65536: 550.0, 1048576: 880.0},
}


def run_latency(
    sizes: Optional[Iterable[int]] = None, iters: int = 6
) -> Dict[str, Dict[int, float]]:
    sizes = list(sizes) if sizes is not None else SMALL_SIZES + LARGE_SIZES
    return {
        "MPICH-QsNetII": {n: mpich_pingpong(n, iters=iters) for n in sizes},
        "PTL/Elan4-RDMA-Read": {
            n: openmpi_pingpong(n, iters=iters, elan4_options=READ) for n in sizes
        },
        "PTL/Elan4-RDMA-Write": {
            n: openmpi_pingpong(n, iters=iters, elan4_options=WRITE) for n in sizes
        },
    }


def run_bandwidth(
    sizes: Optional[Iterable[int]] = None, messages: int = 24, window: int = 8
) -> Dict[str, Dict[int, float]]:
    sizes = [n for n in (sizes if sizes is not None else SMALL_SIZES + LARGE_SIZES) if n > 0]
    return {
        "MPICH-QsNetII": {
            n: mpich_bandwidth(n, messages=messages, window=window) for n in sizes
        },
        "PTL/Elan4-RDMA-Read": {
            n: openmpi_bandwidth(n, messages=messages, window=window, elan4_options=READ)
            for n in sizes
        },
        "PTL/Elan4-RDMA-Write": {
            n: openmpi_bandwidth(n, messages=messages, window=window, elan4_options=WRITE)
            for n in sizes
        },
    }


def report(latency: Dict[str, Dict[int, float]], bandwidth: Dict[str, Dict[int, float]]) -> str:
    def split(series, small):
        keep = (lambda s: s <= 1024) if small else (lambda s: s > 1024)
        return {k: {s: v for s, v in vals.items() if keep(s)} for k, vals in series.items()}

    return "\n\n".join(
        [
            format_series_table(
                "Fig. 10(a) — small message latency", split(latency, True),
                reference=PAPER_LATENCY,
            ),
            format_series_table(
                "Fig. 10(b) — large message latency", split(latency, False),
                reference=PAPER_LATENCY,
            ),
            format_series_table(
                "Fig. 10(c) — small message bandwidth", split(bandwidth, True),
                unit="MB/s", reference=PAPER_BANDWIDTH,
            ),
            format_series_table(
                "Fig. 10(d) — large message bandwidth", split(bandwidth, False),
                unit="MB/s", reference=PAPER_BANDWIDTH,
                note="expected: MPICH wins small latency (+NIC matching, 32 B "
                "header) and the mid-range; both converge ~900 MB/s at 1 MB",
            ),
        ]
    )


def check_shape(
    latency: Dict[str, Dict[int, float]], bandwidth: Dict[str, Dict[int, float]]
) -> None:
    mpich_l = latency["MPICH-QsNetII"]
    read_l = latency["PTL/Elan4-RDMA-Read"]
    write_l = latency["PTL/Elan4-RDMA-Write"]
    sizes = set(mpich_l)
    # (a) MPICH wins small messages, but Open MPI stays comparable (<2.2x)
    for n in sorted(sizes & {0, 64, 1024}):
        assert mpich_l[n] < read_l[n], n
        assert read_l[n] / mpich_l[n] < 2.2, n
    # (b) comparable at large messages (within 15%)
    for n in sorted(sizes & {262144, 1048576}):
        assert read_l[n] / mpich_l[n] < 1.15, n
    # read <= write everywhere above the threshold
    for n in sorted(sizes & {4096, 65536}):
        assert read_l[n] < write_l[n], n
    # (c,d) MPICH bandwidth >= Open MPI through the middle range...
    for n in sorted(set(bandwidth["MPICH-QsNetII"]) & {4096, 16384, 65536}):
        assert bandwidth["MPICH-QsNetII"][n] >= bandwidth["PTL/Elan4-RDMA-Read"][n], n
    # ...and both converge near the PCI-X ceiling at 1 MB
    for name in ("MPICH-QsNetII", "PTL/Elan4-RDMA-Read"):
        bw = bandwidth[name][1048576]
        assert 750.0 < bw < 1064.0, (name, bw)
    ratio = (
        bandwidth["PTL/Elan4-RDMA-Read"][1048576] / bandwidth["MPICH-QsNetII"][1048576]
    )
    assert ratio > 0.9, ratio
