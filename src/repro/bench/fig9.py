"""Fig. 9 / §6.3 — communication cost by layer.

Three series over the eager range (0–1984 B):

* ``QDMA latency``   — native Quadrics QDMA ping-pong of *64+N* bytes (the
  Open MPI header rides every fragment, so the apples-to-apples native
  comparison adds the 64 bytes — §6.3);
* ``PTL latency``    — the Open MPI one-way latency minus the measured
  PML-layer cost ("which also includes the communication time across the
  network");
* ``PML Layer Cost`` — the token-passing measurement of §6.3: from the PTL
  handing a fragment to the PML for matching until the next packet enters
  the PTL.

Expected: PML cost ≈ 0.5 µs, flat; PTL latency tracks native QDMA of the
same wire footprint.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.harness import openmpi_pml_cost, qdma_native_pingpong
from repro.bench.reporting import format_series_table

__all__ = ["run", "report", "SIZES", "PAPER_REFERENCE"]

SIZES = [0, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1984]

PAPER_REFERENCE = {
    "PML Layer Cost": {0: 0.5, 512: 0.5, 1984: 0.5},
}


def run(sizes: Optional[Iterable[int]] = None, iters: int = 12) -> Dict[str, Dict[int, float]]:
    sizes = list(sizes) if sizes is not None else SIZES
    qdma = {}
    ptl = {}
    pml = {}
    total = {}
    for n in sizes:
        qdma[n] = qdma_native_pingpong(n + 64, iters=iters)
        decomp = openmpi_pml_cost(n, iters=iters)
        total[n] = decomp["total"]
        ptl[n] = decomp["ptl_latency"]
        pml[n] = decomp["pml_cost"]
    return {
        "QDMA latency": qdma,
        "PTL latency": ptl,
        "PML Layer Cost": pml,
        "Total": total,
    }


def report(results: Dict[str, Dict[int, float]]) -> str:
    return format_series_table(
        "Fig. 9 — communication overhead by layer (one-way, eager range)",
        results,
        reference=PAPER_REFERENCE,
        note="QDMA latency measured at 64+N bytes (the Open MPI header); "
        "PTL latency = total - PML cost; expected PML cost ~0.5 us flat",
    )


def check_shape(results: Dict[str, Dict[int, float]]) -> None:
    pml = results["PML Layer Cost"]
    # ≈0.5 µs, flat across the eager range
    for n, v in pml.items():
        assert 0.3 < v < 1.0, (n, v)
    spread = max(pml.values()) - min(pml.values())
    assert spread < 0.4, spread
    # PTL latency is comparable to native QDMA of the same wire footprint:
    # within ~25% (the PTL adds send-buffer packing the native test lacks)
    for n in pml:
        ratio = results["PTL latency"][n] / results["QDMA latency"][n]
        assert 0.75 < ratio < 1.4, (n, ratio)
