"""Fig. 8 — chained DMA and shared completion queues (§6.2).

Four variants of the RDMA-read rendezvous:

* ``RDMA-Read``   — chained FIN_ACK, no shared completion queue (baseline);
* ``Read-NoChain``— the FIN_ACK is issued by the host after it observes the
  local completion (one extra I/O-bus crossing on the critical path);
* ``One-Queue``   — local completions funnel through a chained QDMA into
  the *receive* queue;
* ``Two-Queue``   — same, into a separate completion queue.

Expected shape (paper): chaining gives a marginal win for ≥2 KB; both
queue variants cost extra (the additional chained QDMA); One-Queue ≈
Two-Queue under polling.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.harness import openmpi_pingpong
from repro.bench.reporting import format_series_table
from repro.core.ptl.elan4.module import Elan4PtlOptions

__all__ = ["run", "report", "SIZES", "VARIANTS", "PAPER_REFERENCE"]

SIZES = [0, 16, 64, 256, 1024, 2048, 4096, 8192, 16384]

VARIANTS = {
    "RDMA-Read": Elan4PtlOptions(chained_fin=True, completion_queue="none"),
    "Read-NoChain": Elan4PtlOptions(chained_fin=False, completion_queue="none"),
    "One-Queue": Elan4PtlOptions(chained_fin=True, completion_queue="one-queue"),
    "Two-Queue": Elan4PtlOptions(chained_fin=True, completion_queue="two-queue"),
}

#: approximate values from the paper's plot (axis 0–32 µs over 0–16 K)
PAPER_REFERENCE = {
    "RDMA-Read": {0: 3.6, 4096: 14.0, 16384: 24.0},
    "One-Queue": {4096: 15.5, 16384: 26.0},
}


def run(sizes: Optional[Iterable[int]] = None, iters: int = 8) -> Dict[str, Dict[int, float]]:
    sizes = list(sizes) if sizes is not None else SIZES
    return {
        name: {n: openmpi_pingpong(n, iters=iters, elan4_options=opts) for n in sizes}
        for name, opts in VARIANTS.items()
    }


def report(results: Dict[str, Dict[int, float]]) -> str:
    return format_series_table(
        "Fig. 8 — chained DMA and shared completion queue (one-way latency)",
        results,
        reference=PAPER_REFERENCE,
        note="chained FIN_ACK: marginal win >=2 KB; completion queues cost an "
        "extra chained QDMA; One-Queue ~= Two-Queue under polling (§6.2)",
    )


def check_shape(results: Dict[str, Dict[int, float]]) -> None:
    available = set(results["RDMA-Read"])
    for n in sorted(available & {2048, 4096, 8192, 16384}):
        # chaining helps (marginally) for long messages
        assert results["RDMA-Read"][n] < results["Read-NoChain"][n], n
        # the shared completion queue costs something
        assert results["RDMA-Read"][n] < results["One-Queue"][n], n
        assert results["RDMA-Read"][n] < results["Two-Queue"][n], n
        # ...but the two queue layouts are equivalent when polling
        assert abs(results["One-Queue"][n] - results["Two-Queue"][n]) < 1.0, n
    # the chaining benefit is *marginal*: well under 2 µs
    for n in sorted(available & {4096, 16384}):
        assert results["Read-NoChain"][n] - results["RDMA-Read"][n] < 2.0, n
