"""Table 1 — thread-based asynchronous progress (§6.4).

Four ways to observe completion, measured at 4 B and 4 KB with the
RDMA-read rendezvous:

* ``Basic``      — polling progress;
* ``Interrupt``  — the process blocks inside the PTL with interrupts armed
  (not workable in general — measured to isolate the interrupt cost);
* ``One Thread`` — a progress thread blocks on the combined queue;
* ``Two Threads``— two progress threads, separate completion queue.

Paper values (µs):       Basic  Interrupt  One Thread  Two Threads
    RDMA-Read 4 B         3.87      14.70       22.76        27.50
    RDMA-Read 4 KB       15.25      27.16       32.80        47.72
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import openmpi_pingpong
from repro.bench.reporting import format_table
from repro.core.ptl.elan4.module import Elan4PtlOptions

__all__ = ["run", "report", "MODES", "PAPER"]

MODES = {
    "Basic": ("polling", "none"),
    "Interrupt": ("interrupt", "none"),
    "One Thread": ("one-thread", "one-queue"),
    "Two Threads": ("two-thread", "two-queue"),
}

PAPER = {
    ("Basic", 4): 3.87,
    ("Interrupt", 4): 14.70,
    ("One Thread", 4): 22.76,
    ("Two Threads", 4): 27.50,
    ("Basic", 4096): 15.25,
    ("Interrupt", 4096): 27.16,
    ("One Thread", 4096): 32.80,
    ("Two Threads", 4096): 47.72,
}

SIZES = (4, 4096)


def run(iters: int = 8) -> Dict[str, Dict[int, float]]:
    results: Dict[str, Dict[int, float]] = {}
    for name, (mode, cq) in MODES.items():
        opts = Elan4PtlOptions(completion_queue=cq)
        results[name] = {
            n: openmpi_pingpong(n, iters=iters, progress_mode=mode, elan4_options=opts)
            for n in SIZES
        }
    return results


def report(results: Dict[str, Dict[int, float]]) -> str:
    rows = []
    for n in SIZES:
        label = "RDMA-Read 4B" if n == 4 else "RDMA-Read 4KB"
        row = [label]
        for name in MODES:
            row.append(results[name][n])
            row.append(PAPER[(name, n)])
        rows.append(row)
    cols = ["Mesg Length"]
    for name in MODES:
        cols += [name, f"{name} (paper)"]
    return format_table(
        "Table 1 — thread-based asynchronous progress (one-way latency, us)",
        cols,
        rows,
        note="expected ordering: Basic < Interrupt < One Thread < Two Threads; "
        "interrupt ~10 us, threading total ~18 us (§6.4)",
    )


def check_shape(results: Dict[str, Dict[int, float]]) -> None:
    for n in SIZES:
        vals = [results[name][n] for name in MODES]
        assert vals == sorted(vals), (n, vals)
    # §6.4 decomposition at 4 B: ~10 µs interrupt, ~18 µs total threading
    intr_delta = results["Interrupt"][4] - results["Basic"][4]
    assert 9.0 < intr_delta < 17.0, intr_delta
    thread_delta = results["One Thread"][4] - results["Basic"][4]
    assert 13.0 < thread_delta < 24.0, thread_delta
    # two threads pay for the contention, and more so at 4 KB
    gap_small = results["Two Threads"][4] - results["One Thread"][4]
    gap_large = results["Two Threads"][4096] - results["One Thread"][4096]
    assert gap_small > 1.0 and gap_large >= gap_small * 0.9
